"""Pytest bootstrap.

Ensures the ``src`` layout is importable even when the package has not been
installed (useful in fully offline environments where ``pip install -e .``
cannot build an editable wheel), and registers the ``slow`` marker.

Tests marked ``slow`` (timing-sensitive speedup/throughput asserts) are
deselected from default runs — the tier-1 command behaves as if
``-m "not slow"`` were passed.  Opt in with ``-m slow`` (or any ``-m``
expression naming the marker).  Benchmarks under ``benchmarks/`` are only
ever collected by explicit path, so they always run as invoked.
"""

import re
import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: timing-sensitive speedup/throughput assert; deselected by "
        "default, run with -m slow")


_BENCHMARKS_DIR = Path(__file__).parent / "benchmarks"


def pytest_collection_modifyitems(config, items):
    if re.search(r"\bslow\b", config.option.markexpr or ""):
        return  # an explicit -m expression naming the marker decides what runs
    skip_slow = pytest.mark.skip(reason="slow: run with -m slow")
    for item in items:
        if ("slow" in item.keywords
                and not Path(str(item.fspath)).is_relative_to(_BENCHMARKS_DIR)):
            item.add_marker(skip_slow)
