"""Tests for the trainer, callbacks and grid search."""

import numpy as np
import pytest

from repro.baselines import CML
from repro.core import MARS
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.training import EarlyStopping, GridSearch, History, Trainer


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=60, n_items=80, interactions_per_user=12.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


class TestCallbacks:
    def test_history_records_rounds(self):
        history = History()
        history.on_round_end(0, {"ndcg@10": 0.1})
        history.on_round_end(1, {"ndcg@10": 0.2})
        assert history.series("ndcg@10") == [0.1, 0.2]

    def test_early_stopping_triggers_after_patience(self):
        stopper = EarlyStopping(monitor="ndcg@10", patience=2)
        assert not stopper.on_round_end(0, {"ndcg@10": 0.30})
        assert not stopper.on_round_end(1, {"ndcg@10": 0.29})
        assert stopper.on_round_end(2, {"ndcg@10": 0.28})

    def test_early_stopping_resets_on_improvement(self):
        stopper = EarlyStopping(monitor="ndcg@10", patience=2)
        stopper.on_round_end(0, {"ndcg@10": 0.30})
        stopper.on_round_end(1, {"ndcg@10": 0.29})
        assert not stopper.on_round_end(2, {"ndcg@10": 0.40})
        assert stopper.rounds_without_improvement == 0

    def test_early_stopping_missing_metric_raises(self):
        stopper = EarlyStopping(monitor="ndcg@10")
        with pytest.raises(KeyError):
            stopper.on_round_end(0, {"hr@10": 0.1})

    def test_early_stopping_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestTrainer:
    def test_trainer_returns_report_with_history(self, dataset):
        trainer = Trainer(
            model_factory=lambda: CML(embedding_dim=8, n_epochs=2, batch_size=64,
                                      random_state=0),
            dataset=dataset, n_rounds=2, epochs_per_round=2, n_negatives=30,
        )
        report = trainer.train()
        assert report.model.is_fitted
        assert len(report.history) == 2
        assert report.best_round in (0, 1)
        assert "ndcg@10" in report.best_metrics
        assert len(report.validation_curve()) == 2

    def test_trainer_early_stopping(self, dataset):
        trainer = Trainer(
            model_factory=lambda: CML(embedding_dim=8, n_epochs=2, batch_size=64,
                                      random_state=0),
            dataset=dataset, n_rounds=4, epochs_per_round=1, n_negatives=30,
            callbacks=[EarlyStopping(monitor="ndcg@10", patience=1, min_delta=10.0)],
        )
        report = trainer.train()
        assert report.stopped_early
        assert len(report.history) < 4

    def test_trainer_warm_starts_rounds_with_linear_budget(self, dataset):
        captured = []

        def factory():
            model = MARS(n_facets=2, embedding_dim=8, n_epochs=1, batch_size=64,
                         random_state=0)
            captured.append(model)
            return model

        Trainer(model_factory=factory, dataset=dataset, n_rounds=2,
                epochs_per_round=3, n_negatives=20).train()
        # Warm start: one model, resumed each round — the total budget is
        # n_rounds × epochs_per_round epochs, not the quadratic schedule.
        assert len(captured) == 1
        assert captured[0].config.n_epochs == 3
        assert len(captured[0].loss_history_) == 6

    def test_trainer_retrain_from_scratch_escape_hatch(self, dataset):
        captured = []

        def factory():
            model = MARS(n_facets=2, embedding_dim=8, n_epochs=1, batch_size=64,
                         random_state=0)
            captured.append(model)
            return model

        Trainer(model_factory=factory, dataset=dataset, n_rounds=2,
                epochs_per_round=3, n_negatives=20,
                retrain_from_scratch=True).train()
        # Old behaviour: a fresh model per round, round r trained from
        # scratch for epochs_per_round × (r + 1) epochs.
        assert len(captured) == 2
        assert captured[0].config.n_epochs == 3
        assert captured[1].config.n_epochs == 6

    def test_trainer_warm_start_matches_retrain_from_scratch(self, dataset):
        def factory():
            return CML(embedding_dim=8, n_epochs=2, batch_size=64,
                       random_state=0)

        warm = Trainer(model_factory=factory, dataset=dataset, n_rounds=3,
                       epochs_per_round=2, n_negatives=30).train()
        scratch = Trainer(model_factory=factory, dataset=dataset, n_rounds=3,
                          epochs_per_round=2, n_negatives=30,
                          retrain_from_scratch=True).train()
        # Resuming continues the seeded batcher and optimizer streams, so
        # each warm-started round reaches exactly the state the quadratic
        # from-scratch schedule retrains its way back to.
        np.testing.assert_array_equal(warm.model.loss_history_,
                                      scratch.model.loss_history_)
        assert warm.best_round == scratch.best_round
        for key, value in scratch.best_metrics.items():
            assert warm.best_metrics[key] == value
        warm_params = warm.model.get_parameters()
        for key, value in scratch.model.get_parameters().items():
            np.testing.assert_array_equal(warm_params[key], value)

    def test_trainer_drops_resume_surface_when_best_round_is_not_last(self, dataset):
        class _ScriptedEvaluator:
            def __init__(self, values):
                self.values = list(values)

            def evaluate(self, model):
                result = type("Result", (), {})()
                result.metrics = {"ndcg@10": self.values.pop(0)}
                return result

        def factory():
            return CML(embedding_dim=8, n_epochs=1, batch_size=64, random_state=0)

        # Best round comes first: the restored parameters no longer match
        # the runtime's optimizer/stream state, so fit_more must fail
        # loudly instead of resuming from a mismatched state.
        trainer = Trainer(model_factory=factory, dataset=dataset, n_rounds=3,
                          epochs_per_round=1, n_negatives=20)
        trainer.evaluator = _ScriptedEvaluator([0.9, 0.5, 0.4])
        report = trainer.train()
        assert report.best_round == 0
        assert report.model.runtime_ is None
        with pytest.raises(RuntimeError):
            report.model.fit_more(1)

        # Best round is the last one: parameters and runtime state agree,
        # so the resumable surface stays usable.
        trainer = Trainer(model_factory=factory, dataset=dataset, n_rounds=3,
                          epochs_per_round=1, n_negatives=20)
        trainer.evaluator = _ScriptedEvaluator([0.1, 0.2, 0.9])
        report = trainer.train()
        assert report.best_round == 2
        assert report.model.runtime_ is not None
        report.model.fit_more(1)
        assert len(report.model.loss_history_) == 4

    def test_trainer_falls_back_to_retrain_for_non_runtime_models(self, dataset):
        from repro.baselines import NMF

        captured = []

        def factory():
            model = NMF(n_factors=4, n_iterations=3, random_state=0)
            captured.append(model)
            return model

        report = Trainer(model_factory=factory, dataset=dataset, n_rounds=2,
                         epochs_per_round=2, n_negatives=20).train()
        # NMF has no resumable runtime, so every round rebuilds it.
        assert len(captured) == 2
        assert report.model.is_fitted


class TestGridSearch:
    def test_grid_enumerates_all_candidates(self):
        grid = GridSearch(CML, {"embedding_dim": [4, 8], "margin": [0.3, 0.5, 0.7]})
        assert grid.n_candidates() == 6
        assert len(list(grid.candidates())) == 6

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridSearch(CML, {})
        with pytest.raises(ValueError):
            GridSearch(CML, {"embedding_dim": []})

    def test_grid_search_selects_best_by_validation(self, dataset):
        grid = GridSearch(
            lambda **kw: CML(n_epochs=3, batch_size=64, random_state=0, **kw),
            {"embedding_dim": [4, 16]},
            n_negatives=30,
        )
        result = grid.run(dataset)
        assert result.best_params["embedding_dim"] in (4, 16)
        assert len(result.results) == 2
        assert result.best_model.is_fitted
        table = result.as_table()
        assert table[0]["score"] >= table[-1]["score"]
        assert result.best_score == pytest.approx(table[0]["score"])
