"""Tests for the trainer, callbacks and grid search."""

import numpy as np
import pytest

from repro.baselines import CML
from repro.core import MARS
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.training import EarlyStopping, GridSearch, History, Trainer


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=60, n_items=80, interactions_per_user=12.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


class TestCallbacks:
    def test_history_records_rounds(self):
        history = History()
        history.on_round_end(0, {"ndcg@10": 0.1})
        history.on_round_end(1, {"ndcg@10": 0.2})
        assert history.series("ndcg@10") == [0.1, 0.2]

    def test_early_stopping_triggers_after_patience(self):
        stopper = EarlyStopping(monitor="ndcg@10", patience=2)
        assert not stopper.on_round_end(0, {"ndcg@10": 0.30})
        assert not stopper.on_round_end(1, {"ndcg@10": 0.29})
        assert stopper.on_round_end(2, {"ndcg@10": 0.28})

    def test_early_stopping_resets_on_improvement(self):
        stopper = EarlyStopping(monitor="ndcg@10", patience=2)
        stopper.on_round_end(0, {"ndcg@10": 0.30})
        stopper.on_round_end(1, {"ndcg@10": 0.29})
        assert not stopper.on_round_end(2, {"ndcg@10": 0.40})
        assert stopper.rounds_without_improvement == 0

    def test_early_stopping_missing_metric_raises(self):
        stopper = EarlyStopping(monitor="ndcg@10")
        with pytest.raises(KeyError):
            stopper.on_round_end(0, {"hr@10": 0.1})

    def test_early_stopping_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestTrainer:
    def test_trainer_returns_report_with_history(self, dataset):
        trainer = Trainer(
            model_factory=lambda: CML(embedding_dim=8, n_epochs=2, batch_size=64,
                                      random_state=0),
            dataset=dataset, n_rounds=2, epochs_per_round=2, n_negatives=30,
        )
        report = trainer.train()
        assert report.model.is_fitted
        assert len(report.history) == 2
        assert report.best_round in (0, 1)
        assert "ndcg@10" in report.best_metrics
        assert len(report.validation_curve()) == 2

    def test_trainer_early_stopping(self, dataset):
        trainer = Trainer(
            model_factory=lambda: CML(embedding_dim=8, n_epochs=2, batch_size=64,
                                      random_state=0),
            dataset=dataset, n_rounds=4, epochs_per_round=1, n_negatives=30,
            callbacks=[EarlyStopping(monitor="ndcg@10", patience=1, min_delta=10.0)],
        )
        report = trainer.train()
        assert report.stopped_early
        assert len(report.history) < 4

    def test_trainer_sets_epoch_budget_on_config_models(self, dataset):
        captured = []

        def factory():
            model = MARS(n_facets=2, embedding_dim=8, n_epochs=1, batch_size=64,
                         random_state=0)
            captured.append(model)
            return model

        Trainer(model_factory=factory, dataset=dataset, n_rounds=2,
                epochs_per_round=3, n_negatives=20).train()
        assert captured[0].config.n_epochs == 3
        assert captured[1].config.n_epochs == 6


class TestGridSearch:
    def test_grid_enumerates_all_candidates(self):
        grid = GridSearch(CML, {"embedding_dim": [4, 8], "margin": [0.3, 0.5, 0.7]})
        assert grid.n_candidates() == 6
        assert len(list(grid.candidates())) == 6

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridSearch(CML, {})
        with pytest.raises(ValueError):
            GridSearch(CML, {"embedding_dim": []})

    def test_grid_search_selects_best_by_validation(self, dataset):
        grid = GridSearch(
            lambda **kw: CML(n_epochs=3, batch_size=64, random_state=0, **kw),
            {"embedding_dim": [4, 16]},
            n_negatives=30,
        )
        result = grid.run(dataset)
        assert result.best_params["embedding_dim"] in (4, 16)
        assert len(result.results) == 2
        assert result.best_model.is_fitted
        table = result.as_table()
        assert table[0]["score"] >= table[-1]["score"]
        assert result.best_score == pytest.approx(table[0]["score"])
