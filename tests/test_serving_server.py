"""End-to-end tests for the multi-process serving tier.

Covers the three layers added by the server work:

* the pickle-free frame codec (:mod:`repro.serving.wire`) — query/result/
  error round trips, malformed-frame rejection, dtype safelisting and the
  oversized-frame guard;
* memory-mapped artifact loading — ``save_arrays(compressed=False)``
  bundles map via ``load_arrays(mmap_mode="r")`` (one page-cache copy for
  N processes), compressed bundles fall back to an eager load, and digest
  verification still reads through the map;
* :class:`RecommenderServer` + :class:`ServingClient` — ≥2 worker
  processes answering concurrent queries **bitwise identical** to the
  in-process read path on the same artifact, surviving a worker kill,
  completing a hot swap under load without a failed request, enforcing
  deadlines and shedding load, and reporting registry-style errors.

Worker-side perturbation uses the ``serving.worker`` fault site through
the ``REPRO_FAULTS`` environment variable, which the forked workers
inherit.
"""

import threading
import time
import zipfile

import numpy as np
import pytest

from repro.reliability.errors import (
    ArtifactIntegrityError,
    DeadlineExceededError,
    ServiceOverloadedError,
)
from repro.serving import wire
from repro.serving.artifact import ServingArtifact
from repro.serving.client import ServingClient, run_closed_loop
from repro.serving.query import Query, QueryResult
from repro.serving.server import RecommenderServer
from repro.serving.service import RecommenderService
from repro.utils.io import is_memory_mapped, load_arrays, save_arrays

N_USERS, N_ITEMS, DIM = 40, 60, 6


def _euclidean_artifact(seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    tensors = {
        "user_embeddings": scale * rng.normal(size=(N_USERS, DIM)),
        "item_embeddings": scale * rng.normal(size=(N_ITEMS, DIM)),
    }
    indptr = np.arange(0, 3 * N_USERS + 1, 3, dtype=np.int64)
    indices = np.concatenate([
        np.sort(rng.choice(N_ITEMS, size=3, replace=False))
        for _ in range(N_USERS)
    ]).astype(np.int64)
    return ServingArtifact("euclidean", tensors, N_USERS, N_ITEMS,
                           seen=(indptr, indices), model_name=f"e{seed}")


@pytest.fixture(scope="module")
def artifact():
    return _euclidean_artifact(seed=0)


@pytest.fixture(scope="module")
def artifact_path(artifact, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "model.artifact.npz"
    return artifact.save(path, compressed=False)


# --------------------------------------------------------------------------- #
# wire codec
# --------------------------------------------------------------------------- #
class TestWireCodec:
    def test_query_round_trip(self):
        query = Query(users=[3, 1, 4], k=7, exclude_seen=False,
                      candidates=[[1, 2, 3], [4, 5, 6], [7, 8, 9]],
                      exclude_items=[2, 9], deadline_ms=125.0)
        kind, meta, tensors = wire.decode_frame(
            wire.encode_query(query, model="mars"))
        assert kind == "query"
        decoded, model = wire.decode_query(meta, tensors)
        assert model == "mars"
        assert decoded.k == 7 and decoded.exclude_seen is False
        assert decoded.deadline_ms == 125.0
        np.testing.assert_array_equal(decoded.users, query.users)
        np.testing.assert_array_equal(decoded.candidates, query.candidates)
        np.testing.assert_array_equal(decoded.exclude_items,
                                      query.exclude_items)

    def test_result_round_trip_is_bitwise(self):
        rng = np.random.default_rng(3)
        result = QueryResult(items=rng.integers(0, 50, size=(4, 5)),
                             scores=rng.normal(size=(4, 5)), degraded=True)
        kind, meta, tensors = wire.decode_frame(wire.encode_result(result))
        assert kind == "result"
        decoded = wire.decode_result(meta, tensors)
        assert decoded.degraded is True
        assert decoded.items.tobytes() == result.items.tobytes()
        assert decoded.scores.tobytes() == result.scores.tobytes()

    def test_query_validation_runs_on_decode(self):
        blob = wire.encode_frame(
            "query", {"k": 5, "exclude_seen": False},
            {"users": np.array([-4], dtype=np.int64)})
        _, meta, tensors = wire.decode_frame(blob)
        with pytest.raises(ValueError, match="non-negative"):
            wire.decode_query(meta, tensors)

    def test_known_errors_cross_the_wire_by_type(self):
        for error in (DeadlineExceededError("late"),
                      ServiceOverloadedError("full"),
                      KeyError("no model named 'x'"),
                      ValueError("bad users")):
            kind, meta, _ = wire.decode_frame(wire.encode_error(error))
            assert kind == "error"
            with pytest.raises(type(error)):
                wire.raise_remote_error(meta)

    def test_unknown_error_degrades_to_remote_serving_error(self):
        class WeirdError(Exception):
            pass

        _, meta, _ = wire.decode_frame(wire.encode_error(WeirdError("boom")))
        with pytest.raises(wire.RemoteServingError, match="WeirdError: boom"):
            wire.raise_remote_error(meta)

    def test_bad_magic_rejected(self):
        blob = bytearray(wire.encode_frame("ping", {}))
        blob[:4] = b"XXXX"
        with pytest.raises(wire.ProtocolError, match="magic"):
            wire.decode_frame(bytes(blob))

    def test_truncated_and_trailing_bytes_rejected(self):
        blob = wire.encode_frame("ping", {},
                                 {"x": np.arange(4, dtype=np.int64)})
        with pytest.raises(wire.ProtocolError):
            wire.decode_frame(blob[:-3])
        with pytest.raises(wire.ProtocolError):
            wire.decode_frame(blob + b"\x00\x00")

    def test_object_dtype_rejected_on_encode(self):
        with pytest.raises(TypeError, match="dtype"):
            wire.encode_frame("query", {},
                              {"users": np.array(["a", "b"], dtype=object)})

    def test_unsafe_dtype_rejected_on_decode(self):
        blob = wire.encode_frame("result", {
            "forged": True}, {"x": np.arange(2, dtype=np.int64)})
        tampered = blob.replace(b'"dtype": "<i8"', b'"dtype": "<U2"')
        with pytest.raises(wire.ProtocolError):
            wire.decode_frame(tampered)

    def test_oversized_frame_rejected(self):
        with pytest.raises(ValueError, match="MAX_FRAME_BYTES"):
            wire.encode_frame("result", {}, {
                "x": np.zeros(wire.MAX_FRAME_BYTES // 8 + 16,
                              dtype=np.float64)})


# --------------------------------------------------------------------------- #
# memory-mapped artifact loading
# --------------------------------------------------------------------------- #
class TestMmapLoading:
    def test_uncompressed_bundle_memory_maps(self, tmp_path):
        arrays = {"a": np.arange(12, dtype=np.float64).reshape(3, 4),
                  "b": np.arange(5, dtype=np.int64)}
        path = save_arrays(tmp_path / "m.npz", arrays, digests=True,
                           compressed=False)
        loaded = load_arrays(path, mmap_mode="r")
        for name, reference in arrays.items():
            assert is_memory_mapped(loaded[name]), name
            np.testing.assert_array_equal(loaded[name], reference)

    def test_compressed_bundle_falls_back_to_eager(self, tmp_path):
        arrays = {"a": np.arange(12, dtype=np.float64)}
        path = save_arrays(tmp_path / "c.npz", arrays, digests=True,
                           compressed=True)
        loaded = load_arrays(path, mmap_mode="r")
        assert not is_memory_mapped(loaded["a"])
        np.testing.assert_array_equal(loaded["a"], arrays["a"])

    def test_scalar_members_load_eagerly_alongside_maps(self, tmp_path):
        arrays = {"tensor": np.ones((2, 2)), "scalar": np.asarray(7)}
        path = save_arrays(tmp_path / "s.npz", arrays, compressed=False)
        loaded = load_arrays(path, mmap_mode="r")
        assert is_memory_mapped(loaded["tensor"])
        assert not is_memory_mapped(loaded["scalar"])
        assert int(loaded["scalar"]) == 7

    def test_digest_verification_reads_through_the_map(self, tmp_path):
        arrays = {"a": np.arange(64, dtype=np.float64)}
        path = save_arrays(tmp_path / "d.npz", arrays, digests=True,
                           compressed=False)
        # Flip one byte inside the stored tensor's data region.  The zip
        # CRC is not consulted on the mmap path, so only the embedded
        # SHA-256 digests stand between the corruption and the scorer.
        with zipfile.ZipFile(path) as archive:
            info = next(i for i in archive.infolist()
                        if i.filename == "a.npy")
        raw = bytearray(path.read_bytes())
        base = info.header_offset
        name_len = int.from_bytes(raw[base + 26:base + 28], "little")
        extra_len = int.from_bytes(raw[base + 28:base + 30], "little")
        npy = base + 30 + name_len + extra_len  # start of the .npy member
        npy_header_len = int.from_bytes(raw[npy + 8:npy + 10], "little")
        data = npy + 10 + npy_header_len  # first tensor byte
        raw[data + 100] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactIntegrityError, match="integrity"):
            load_arrays(path, mmap_mode="r")

    def test_mapped_artifact_answers_identically(self, artifact,
                                                 artifact_path):
        mapped = ServingArtifact.load(artifact_path, mmap_mode="r")
        assert mapped.memory_mapped
        eager = ServingArtifact.load(artifact_path)
        assert not eager.memory_mapped
        query = Query(users=np.arange(10), k=8)
        for reference in (artifact, eager):
            expected = reference.query(query)
            got = mapped.query(query)
            np.testing.assert_array_equal(got.items, expected.items)
            np.testing.assert_array_equal(got.scores, expected.scores)

    def test_mapped_tensors_are_read_only(self, artifact_path):
        mapped = ServingArtifact.load(artifact_path, mmap_mode="r")
        tensor = mapped.tensors["user_embeddings"]
        assert is_memory_mapped(tensor)
        with pytest.raises((ValueError, RuntimeError)):
            tensor[0, 0] = 1.0


# --------------------------------------------------------------------------- #
# the server end-to-end
# --------------------------------------------------------------------------- #
class TestServerEndToEnd:
    def test_concurrent_queries_bitwise_identical_to_in_process(
            self, artifact, artifact_path):
        service = RecommenderService(ServingArtifact.load(artifact_path))
        queries = [Query(users=np.arange(i, i + 5), k=4 + (i % 3))
                   for i in range(8)]
        expected = [service.query(query) for query in queries]

        with RecommenderServer(artifact_path, n_workers=2) as server:
            failures = []

            def client_thread(offset):
                try:
                    with ServingClient(server.address) as client:
                        for index, query in enumerate(queries):
                            got = client.query(query)
                            want = expected[index]
                            assert got.items.tobytes() == want.items.tobytes()
                            assert (got.scores.tobytes()
                                    == want.scores.tobytes())
                except BaseException as error:  # noqa: BLE001
                    failures.append(error)

            threads = [threading.Thread(target=client_thread, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
            assert server.stats["answered"] == 4 * len(queries)

    def test_survives_worker_kill(self, artifact, artifact_path):
        reference = artifact.query(Query(users=[7], k=5))
        with RecommenderServer(artifact_path, n_workers=2) as server:
            with ServingClient(server.address) as client:
                client.query(Query(users=[7], k=5))
                victim = next(iter(server._workers.values()))
                victim.process.kill()
                victim.process.join()
                # Every request after the kill must still be answered.
                for turn in range(12):
                    got = client.query(Query(users=[7], k=5))
                    assert got.items.tobytes() == reference.items.tobytes()
                assert server.stats["worker_deaths"] >= 1
                # The pool heals: a replacement worker is forked.
                for _ in range(200):
                    if client.ping()["workers"] >= 2:
                        break
                    time.sleep(0.05)
                assert client.ping()["workers"] >= 2

    def test_hot_swap_under_load_without_failed_requests(
            self, artifact, artifact_path, tmp_path):
        new_artifact = _euclidean_artifact(seed=9, scale=2.0)
        new_path = new_artifact.save(tmp_path / "v2.artifact.npz",
                                     compressed=False)
        old_expected = {
            user: artifact.query(Query(users=[user], k=5)).items.tobytes()
            for user in range(N_USERS)}
        new_expected = {
            user: new_artifact.query(Query(users=[user], k=5)).items.tobytes()
            for user in range(N_USERS)}

        with RecommenderServer(artifact_path, n_workers=2) as server:
            stop = threading.Event()
            failures = []
            answered = [0]

            def load_thread(offset):
                try:
                    with ServingClient(server.address) as client:
                        turn = 0
                        while not stop.is_set():
                            user = (offset * 11 + turn) % N_USERS
                            turn += 1
                            got = client.query(Query(users=[user], k=5))
                            answer = got.items.tobytes()
                            # During the rolling swap an answer may come
                            # from either version, but never from neither.
                            assert answer in (old_expected[user],
                                              new_expected[user])
                            answered[0] += 1
                except BaseException as error:  # noqa: BLE001
                    failures.append(error)

            threads = [threading.Thread(target=load_thread, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            version = server.publish("default", new_path)
            stop.set()
            for thread in threads:
                thread.join()

            assert not failures
            assert version == 2
            assert answered[0] > 0
            with ServingClient(server.address) as client:
                assert client.ping()["models"] == {"default": 2}
                got = client.query(Query(users=[3], k=5))
                assert got.items.tobytes() == new_expected[3]

    def test_registry_style_errors_cross_the_wire(self, artifact_path):
        with RecommenderServer(artifact_path, n_workers=1) as server:
            with ServingClient(server.address) as client:
                with pytest.raises(KeyError,
                                   match="no model named 'nope'"):
                    client.query(Query(users=[0], k=3), model="nope")
                with pytest.raises(ValueError, match="out of range"):
                    client.query(Query(users=[N_USERS + 5], k=3))
                with pytest.raises(ValueError, match="non-negative"):
                    client.query([-2], k=3)
                # The connection stays usable after every error.
                assert client.query(Query(users=[0], k=3)).k == 3

    def test_deadline_enforced_against_a_slow_worker(self, artifact_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "serving.worker=delay:0.3")
        with RecommenderServer(artifact_path, n_workers=1) as server:
            with ServingClient(server.address) as client:
                with pytest.raises(DeadlineExceededError):
                    client.query(Query(users=[1], k=3, deadline_ms=40.0))
                # The drained worker is re-admitted and keeps serving.
                assert client.query(Query(users=[1], k=3)).n_users == 1
                assert server.stats["deadline_exceeded"] == 1

    def test_admission_queue_sheds_when_full(self, artifact_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "serving.worker=delay:0.5")
        with RecommenderServer(artifact_path, n_workers=1,
                               max_pending=1) as server:
            first_done = threading.Event()

            def slow_request():
                with ServingClient(server.address) as client:
                    client.query(Query(users=[0], k=3))
                first_done.set()

            thread = threading.Thread(target=slow_request)
            thread.start()
            for _ in range(400):  # wait until the slow request is admitted
                if server._in_flight >= 1:
                    break
                time.sleep(0.005)
            assert server._in_flight >= 1
            with ServingClient(server.address) as client:
                with pytest.raises(ServiceOverloadedError):
                    client.query(Query(users=[1], k=3))
            thread.join()
            assert first_done.is_set()
            assert server.stats["shed"] >= 1

    def test_closed_loop_reports_throughput_and_latency(self, artifact_path):
        with RecommenderServer(artifact_path, n_workers=2) as server:
            report = run_closed_loop(
                server.address,
                lambda client_index, turn: Query(
                    users=[(client_index * 13 + turn) % N_USERS], k=5),
                clients=2, duration_s=0.4)
        assert report["errors"] == 0
        assert report["requests"] > 0
        assert report["qps"] > 0
        assert report["p50_ms"] <= report["p99_ms"]

    def test_validation(self, artifact_path):
        with pytest.raises(ValueError, match="n_workers"):
            RecommenderServer(artifact_path, n_workers=0)
        with pytest.raises(ValueError, match="at least one model"):
            RecommenderServer({})
