"""Tests for the approximate retrieval subsystem (IVF index + exact re-rank).

The contracts under test:

* seeded k-means is a pure function of ``(vectors, n_cells, seed)`` and
  its cells partition the catalogue — every item in exactly one cell;
* ``IVFIndex.probe`` returns exactly the union of the top-``n_probe``
  cells' item lists, ``-1``-padded, with true per-user counts;
* ``Query(mode="approx")`` achieves recall@10 ≥ 0.95 vs the exact kernel
  for every supported family while scoring strictly fewer than
  ``n_items`` candidates per user (the sub-linearity probe), and probing
  *all* cells reproduces the exact ranking identically;
* the index rides inside the artifact ``.npz`` — mmap-shared,
  digest-verified, format-versioned with v1 backward compat — and a
  corrupt or inconsistent index raises :class:`ArtifactIntegrityError`;
* :class:`RecommenderService` cache keys cover the full query identity
  (mode / n_probe / candidate list) — the PR's cache-collision bugfix;
* the mode knob works end-to-end over the socket tier, and concurrent
  single-user queries coalesce into batched worker frames
  (``coalesced_queries``).

No wall-clock assertions anywhere: approximation quality and candidate
counts are the observables, so the tests are timing-independent.
"""

import threading
import zipfile

import numpy as np
import pytest

from repro.reliability.errors import ArtifactIntegrityError
from repro.serving import wire
from repro.serving.artifact import ServingArtifact
from repro.serving.client import ServingClient
from repro.serving.kernel import run_query
from repro.serving.query import Query
from repro.serving.retrieval import (
    APPROX_FAMILIES,
    IVFIndex,
    build_ivf_index,
    kmeans_cells,
)
from repro.serving.server import RecommenderServer
from repro.serving.service import RecommenderService

#: Clustered synthetic catalogue: well-separated item clusters are the
#: regime IVF exists for, and make the recall gates deterministic.
N_USERS, N_ITEMS, DIM, N_CLUSTERS = 120, 2500, 12, 20
N_CELLS, N_PROBE = 40, 8


def _clustered_tensors(seed=0):
    rng = np.random.default_rng(seed)
    centers = 4.0 * rng.normal(size=(N_CLUSTERS, DIM))
    items = (centers[rng.integers(0, N_CLUSTERS, N_ITEMS)]
             + 0.5 * rng.normal(size=(N_ITEMS, DIM)))
    users = (centers[rng.integers(0, N_CLUSTERS, N_USERS)]
             + 0.5 * rng.normal(size=(N_USERS, DIM)))
    return {"user_embeddings": users, "item_embeddings": items,
            "item_bias": 0.3 * rng.normal(size=N_ITEMS)}


def _seen_csr(seed=0, per_user=3):
    rng = np.random.default_rng(seed + 1000)
    indptr = np.arange(0, per_user * N_USERS + 1, per_user, dtype=np.int64)
    indices = np.concatenate([
        np.sort(rng.choice(N_ITEMS, size=per_user, replace=False))
        for _ in range(N_USERS)]).astype(np.int64)
    return indptr, indices


def _artifact(family="euclidean", seed=0, with_seen=True, with_index=True):
    tensors = _clustered_tensors(seed)
    if family == "euclidean":
        tensors = {key: tensors[key]
                   for key in ("user_embeddings", "item_embeddings")}
    artifact = ServingArtifact(
        family, tensors, N_USERS, N_ITEMS,
        seen=_seen_csr(seed) if with_seen else None, model_name=family)
    if with_index:
        artifact = artifact.build_index(N_CELLS, random_state=7)
    return artifact


@pytest.fixture(scope="module", params=sorted(APPROX_FAMILIES))
def family_artifact(request):
    return _artifact(family=request.param)


def _recall_at_k(approx_items, exact_items):
    hits = sum(np.isin(approx_items[row], exact_items[row]).sum()
               for row in range(exact_items.shape[0]))
    return hits / exact_items.size


# --------------------------------------------------------------------------- #
# seeded k-means properties
# --------------------------------------------------------------------------- #
class TestKMeans:
    def test_seed_stable(self):
        vectors = _clustered_tensors(3)["item_embeddings"]
        first = kmeans_cells(vectors, 32, random_state=11)
        second = kmeans_cells(vectors, 32, random_state=11)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_different_seeds_differ(self):
        vectors = _clustered_tensors(3)["item_embeddings"]
        _, one = kmeans_cells(vectors, 32, random_state=1)
        _, two = kmeans_cells(vectors, 32, random_state=2)
        assert not np.array_equal(one, two)

    def test_every_item_in_exactly_one_cell(self):
        vectors = _clustered_tensors(4)["item_embeddings"]
        centroids, assignments = kmeans_cells(vectors, 32, random_state=5)
        assert assignments.shape == (N_ITEMS,)
        assert assignments.min() >= 0
        assert assignments.max() < centroids.shape[0]
        # Partition property via the CSR the index builds from it.
        index = build_ivf_index(
            "euclidean", {"item_embeddings": vectors}, 32, random_state=5)
        counts = np.bincount(index.cell_items, minlength=N_ITEMS)
        assert (counts == 1).all()

    def test_no_empty_cells_even_when_cells_rival_points(self):
        vectors = np.asarray(np.random.default_rng(0).normal(size=(20, 3)))
        centroids, assignments = kmeans_cells(vectors, 18, random_state=0)
        occupancy = np.bincount(assignments, minlength=centroids.shape[0])
        assert (occupancy >= 1).all()

    def test_n_cells_clipped_to_catalogue(self):
        vectors = np.asarray(np.random.default_rng(1).normal(size=(5, 2)))
        centroids, assignments = kmeans_cells(vectors, 64, random_state=0)
        assert centroids.shape[0] == 5
        assert sorted(assignments.tolist()) == [0, 1, 2, 3, 4]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="n_cells"):
            kmeans_cells(np.zeros((4, 2)), 0)
        with pytest.raises(ValueError, match="non-empty"):
            kmeans_cells(np.zeros((0, 2)), 4)


# --------------------------------------------------------------------------- #
# the IVF index
# --------------------------------------------------------------------------- #
class TestIVFIndex:
    def test_probe_matches_brute_force_union(self):
        artifact = _artifact()
        index = artifact.index
        users = np.arange(25)
        candidates, counts = artifact.probe_candidates(users, n_probe=3)
        spec = APPROX_FAMILIES["euclidean"]
        cell_scores = spec.coarse_scores(
            spec.user_vectors(artifact.tensors, users), index.centroids)
        for row in range(users.size):
            best_cells = np.argsort(-cell_scores[row], kind="stable")[:3]
            expected = np.concatenate([
                index.cell_items[index.cell_indptr[cell]:
                                 index.cell_indptr[cell + 1]]
                for cell in best_cells])
            got = candidates[row]
            assert counts[row] == expected.size
            np.testing.assert_array_equal(got[:counts[row]], expected)
            assert (got[counts[row]:] == -1).all()

    def test_probe_all_cells_covers_catalogue(self):
        artifact = _artifact()
        candidates, counts = artifact.probe_candidates(
            np.arange(5), n_probe=N_CELLS)
        assert (counts == N_ITEMS).all()
        for row in range(5):
            np.testing.assert_array_equal(np.sort(candidates[row]),
                                          np.arange(N_ITEMS))

    def test_rejects_inconsistent_construction(self):
        centroids = np.zeros((3, 2))
        with pytest.raises(ValueError, match="CSR"):
            IVFIndex(centroids, np.array([0, 1, 2, 5]), np.arange(4))
        with pytest.raises(ValueError, match="permutation"):
            IVFIndex(centroids, np.array([0, 2, 3, 4]),
                     np.array([0, 0, 1, 2]))
        with pytest.raises(ValueError, match="cell_indptr"):
            IVFIndex(centroids, np.array([0, 4]), np.arange(4))

    def test_frozen(self):
        index = _artifact().index
        with pytest.raises(AttributeError, match="frozen"):
            index.centroids = np.zeros((1, 1))
        assert not index.centroids.flags.writeable

    def test_unsupported_family_rejected(self):
        with pytest.raises(ValueError, match="does not support"):
            build_ivf_index("popularity", {"item_counts": np.ones(4)}, 2)


# --------------------------------------------------------------------------- #
# Query schema + kernel guard rails
# --------------------------------------------------------------------------- #
class TestQueryMode:
    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            Query(users=[0], mode="fuzzy")

    def test_approx_forbids_explicit_candidates(self):
        with pytest.raises(ValueError, match="candidates"):
            Query(users=[0], mode="approx", candidates=[1, 2, 3])

    def test_n_probe_requires_approx(self):
        with pytest.raises(ValueError, match="n_probe"):
            Query(users=[0], n_probe=4)
        with pytest.raises(ValueError, match="n_probe"):
            Query(users=[0], mode="approx", n_probe=0)
        assert Query(users=[0], mode="approx", n_probe=4).n_probe == 4

    def test_kernel_rejects_approx_queries(self):
        query = Query(users=[0], k=3, exclude_seen=False, mode="approx")
        with pytest.raises(ValueError, match="exact"):
            run_query(query, lambda users, items: np.zeros(items.shape), 10)

    def test_kernel_pads_never_surface(self):
        # Padded rows: user 1's union is shorter; pad slots must come back
        # as the -1/-inf sentinel, never as item 0 (which scores them).
        candidates = np.array([[0, 1, 2], [3, -1, -1]], dtype=np.int64)
        result = run_query(
            Query(users=[0, 1], k=3, exclude_seen=False,
                  candidates=candidates),
            lambda users, items: np.ones(items.shape), 5)
        np.testing.assert_array_equal(result.items[1], [3, -1, -1])
        assert np.isneginf(result.scores[1, 1:]).all()

    def test_pad_key_does_not_alias_previous_users_seen_item(self):
        # The encoded key of a pad (-1) for user u is u*n_items - 1 ==
        # user (u-1)'s item (n_items-1).  The pad must still be -inf and
        # user (u-1)'s genuine candidate must be masked independently.
        n_items = 5
        seen = (np.array([0, 1, 1], dtype=np.int64),
                np.array([4], dtype=np.int64))  # user 0 has seen item 4
        candidates = np.array([[4, 0], [1, -1]], dtype=np.int64)
        result = run_query(
            Query(users=[0, 1], k=2, candidates=candidates),
            lambda users, items: np.ones(items.shape), n_items, seen=seen)
        np.testing.assert_array_equal(result.items[0], [0, -1])  # 4 masked
        np.testing.assert_array_equal(result.items[1], [1, -1])  # pad -inf


# --------------------------------------------------------------------------- #
# recall gates (per supported family)
# --------------------------------------------------------------------------- #
class TestRecallGates:
    def test_recall_at_10_with_sublinear_candidates(self, family_artifact):
        artifact = family_artifact
        users = np.arange(N_USERS)
        exact = artifact.query(Query(users=users, k=10))
        approx = artifact.query(
            Query(users=users, k=10, mode="approx", n_probe=N_PROBE))
        recall = _recall_at_k(approx.items, exact.items)
        assert recall >= 0.95, (
            f"{artifact.family}: recall@10 {recall:.3f} < 0.95 at "
            f"n_probe={N_PROBE}/{N_CELLS}")
        # The sub-linearity probe: strictly fewer than n_items candidates
        # were scored for every user.
        _, counts = artifact.probe_candidates(users, n_probe=N_PROBE)
        assert int(counts.max()) < N_ITEMS
        assert approx.items.shape == exact.items.shape

    def test_full_probe_reproduces_exact_ranking(self, family_artifact):
        artifact = family_artifact
        users = np.arange(0, N_USERS, 3)
        exact = artifact.query(Query(users=users, k=10))
        approx = artifact.query(
            Query(users=users, k=10, mode="approx", n_probe=N_CELLS))
        np.testing.assert_array_equal(approx.items, exact.items)
        # Same scorer, but gathered (U, C) candidate blocks vs the full
        # catalogue GEMM — BLAS summation order differs at the ulp level.
        np.testing.assert_allclose(approx.scores, exact.scores,
                                   rtol=1e-10, atol=1e-12)

    def test_approx_excludes_seen(self, family_artifact):
        artifact = family_artifact
        indptr, indices = _seen_csr()
        result = artifact.query(
            Query(users=np.arange(N_USERS), k=10, mode="approx",
                  n_probe=N_PROBE))
        for user in range(N_USERS):
            seen = indices[indptr[user]:indptr[user + 1]]
            assert not set(result.items[user]) & set(seen.tolist())

    def test_default_n_probe_used_when_unpinned(self, family_artifact):
        result = family_artifact.query(
            Query(users=np.arange(10), k=10, mode="approx"))
        assert result.items.shape == (10, 10)

    def test_approx_without_index_fails_cleanly(self):
        artifact = _artifact(with_index=False)
        with pytest.raises(RuntimeError, match="no IVF index"):
            artifact.query(Query(users=[0], k=5, mode="approx"))

    def test_narrow_union_pads_to_k(self):
        # n_probe=1 on the smallest cell can union fewer than k items.
        artifact = _artifact()
        index = artifact.index
        smallest = int(np.diff(index.cell_indptr).min())
        k = N_ITEMS  # force k far beyond any single cell
        result = artifact.query(
            Query(users=[0], k=k, exclude_seen=False, mode="approx",
                  n_probe=1))
        assert result.items.shape == (1, k)
        assert (result.items[0] != -1).sum() <= max(
            smallest, int(np.diff(index.cell_indptr).max()))
        assert np.isneginf(result.scores[0, -1])


# --------------------------------------------------------------------------- #
# artifact persistence: round trip, mmap, corruption, versioning
# --------------------------------------------------------------------------- #
class TestIndexPersistence:
    def test_round_trip_bitwise_and_mmap_shared(self, tmp_path):
        artifact = _artifact()
        path = artifact.save(tmp_path / "ivf.artifact.npz", compressed=False)
        loaded = ServingArtifact.load(path, mmap_mode="r")
        assert loaded.has_index
        assert loaded.index.memory_mapped
        np.testing.assert_array_equal(loaded.index.centroids,
                                      artifact.index.centroids)
        np.testing.assert_array_equal(loaded.index.cell_items,
                                      artifact.index.cell_items)
        query = Query(users=np.arange(N_USERS), k=10, mode="approx",
                      n_probe=N_PROBE)
        original = artifact.query(query)
        reloaded = loaded.query(query)
        assert original.items.tobytes() == reloaded.items.tobytes()
        assert original.scores.tobytes() == reloaded.scores.tobytes()

    def test_corrupt_index_bytes_fail_digest_verification(self, tmp_path):
        path = _artifact().save(tmp_path / "corrupt.artifact.npz",
                                compressed=False)
        blob = bytearray(path.read_bytes())
        with zipfile.ZipFile(path) as archive:
            info = archive.getinfo("ivf.cell_items.npy")
            start = blob.index(b"ivf.cell_items.npy",
                               info.header_offset)
        # Flip a bit well past the member's npy header, inside its data.
        blob[start + 256] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactIntegrityError):
            ServingArtifact.load(path, mmap_mode="r")

    def test_missing_index_entries_are_integrity_errors(self, tmp_path):
        # meta.has_ivf promises an index the bundle does not carry.
        artifact = _artifact(with_index=False)
        path = artifact.save(tmp_path / "liar.artifact.npz")
        import repro.utils.io as io_mod
        arrays = io_mod.load_arrays(path)
        arrays["meta.has_ivf"] = io_mod.pack_scalar(True)
        io_mod.save_arrays(path, arrays, digests=True)
        with pytest.raises(ArtifactIntegrityError, match="IVF"):
            ServingArtifact.load(path)

    def test_version_1_bundles_still_load(self, tmp_path):
        # A v1 writer: today's layout minus the ivf entries and flag,
        # stamped format_version=1.
        artifact = _artifact(with_index=False)
        path = artifact.save(tmp_path / "v1.artifact.npz")
        import repro.utils.io as io_mod
        arrays = io_mod.load_arrays(path)
        arrays["meta.format_version"] = io_mod.pack_scalar(1)
        del arrays["meta.has_ivf"]
        io_mod.save_arrays(path, arrays, digests=True)
        loaded = ServingArtifact.load(path)
        assert not loaded.has_index
        query = Query(users=np.arange(12), k=8)
        assert (loaded.query(query).items.tobytes()
                == artifact.query(query).items.tobytes())

    def test_unknown_version_rejected(self, tmp_path):
        artifact = _artifact(with_index=False)
        path = artifact.save(tmp_path / "v99.artifact.npz")
        import repro.utils.io as io_mod
        arrays = io_mod.load_arrays(path)
        arrays["meta.format_version"] = io_mod.pack_scalar(99)
        io_mod.save_arrays(path, arrays, digests=True)
        with pytest.raises(ArtifactIntegrityError, match="version"):
            ServingArtifact.load(path)


# --------------------------------------------------------------------------- #
# service: mode plumbing + the cache-identity bugfix
# --------------------------------------------------------------------------- #
class TestServiceQueryIdentity:
    def test_mode_and_candidates_do_not_collide_in_cache(self):
        artifact = _artifact()
        service = RecommenderService(artifact, max_wait_ms=0.0)
        exact = service.recommend(3, k=10)
        approx = service.recommend(3, k=10, mode="approx", n_probe=1)
        restricted = service.recommend(3, k=10,
                                       candidates=np.arange(40, 60))
        # Distinct query identities — none may serve another's cached row.
        assert not np.array_equal(exact, restricted)
        assert set(restricted.tolist()) <= set(range(40, 60)) | {-1}
        again = service.recommend(3, k=10, mode="approx", n_probe=1)
        np.testing.assert_array_equal(again, approx)
        stats = service.stats
        assert stats["cache_hits"] == 1  # only the repeated approx call

    def test_candidate_lists_hash_into_the_key(self):
        service = RecommenderService(_artifact(), max_wait_ms=0.0)
        first = service.recommend(5, k=5, candidates=np.arange(0, 50))
        second = service.recommend(5, k=5, candidates=np.arange(50, 100))
        assert not np.array_equal(first, second)
        assert service.stats["cache_hits"] == 0

    def test_approx_matches_artifact_path(self):
        artifact = _artifact()
        service = RecommenderService(artifact, max_wait_ms=0.0)
        expected = artifact.query(
            Query(users=[9], k=10, mode="approx", n_probe=N_PROBE)).items[0]
        got = service.recommend(9, k=10, mode="approx", n_probe=N_PROBE)
        np.testing.assert_array_equal(got, expected)

    def test_validation(self):
        service = RecommenderService(_artifact(), max_wait_ms=0.0)
        with pytest.raises(ValueError, match="mode"):
            service.recommend(0, mode="fuzzy")
        with pytest.raises(ValueError, match="n_probe"):
            service.recommend(0, n_probe=4)
        with pytest.raises(ValueError, match="candidates"):
            service.recommend(0, mode="approx", candidates=[1, 2])


# --------------------------------------------------------------------------- #
# end-to-end over the socket tier
# --------------------------------------------------------------------------- #
class TestSocketTier:
    @pytest.fixture(scope="class")
    def indexed_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("retrieval") / "ivf.artifact.npz"
        return _artifact().save(path, compressed=False)

    def test_wire_round_trip_carries_mode(self):
        query = Query(users=[3], k=7, mode="approx", n_probe=5)
        kind, meta, tensors = wire.decode_frame(wire.encode_query(query))
        decoded, _ = wire.decode_query(meta, tensors)
        assert decoded.mode == "approx"
        assert decoded.n_probe == 5

    def test_legacy_frames_default_to_exact(self):
        blob = wire.encode_frame("query", {"k": 5},
                                 {"users": np.array([1], dtype=np.int64)})
        _, meta, tensors = wire.decode_frame(blob)
        decoded, _ = wire.decode_query(meta, tensors)
        assert decoded.mode == "exact"
        assert decoded.n_probe is None

    def test_approx_recall_gate_end_to_end(self, indexed_path):
        artifact = ServingArtifact.load(indexed_path)
        users = np.arange(N_USERS)
        _, counts = artifact.probe_candidates(users, n_probe=N_PROBE)
        assert int(counts.max()) < N_ITEMS  # sub-linear candidate sets
        with RecommenderServer(indexed_path, n_workers=2) as server:
            with ServingClient(server.address) as client:
                assert client.ping()["stats"]["coalesced_queries"] == 0
                exact = client.query(Query(users=users, k=10))
                approx = client.query(
                    Query(users=users, k=10, mode="approx", n_probe=N_PROBE))
        recall = _recall_at_k(approx.items, exact.items)
        assert recall >= 0.95, f"socket-tier recall@10 {recall:.3f} < 0.95"

    def test_concurrent_singles_coalesce(self, indexed_path, monkeypatch):
        # One deliberately slow worker: the first query holds it while the
        # rest pile into the coalescing bucket, so the next worker trip
        # must carry a merged batch.
        monkeypatch.setenv("REPRO_FAULTS", "serving.worker=delay:0.25@1")
        artifact = ServingArtifact.load(indexed_path)
        expected = artifact.query(Query(users=np.arange(16), k=10))
        results = {}
        failures = []

        def one(user):
            try:
                with ServingClient(server.address) as client:
                    results[user] = client.query(Query(users=[user], k=10))
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        with RecommenderServer(indexed_path, n_workers=1) as server:
            threads = [threading.Thread(target=one, args=(user,))
                       for user in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = server.stats
        assert not failures
        for user, result in results.items():
            np.testing.assert_array_equal(result.items[0],
                                          expected.items[user])
        # At least one merged frame: strictly fewer worker trips than
        # queries, and the merged queries are counted.
        assert stats["coalesced_queries"] >= 2
        assert stats["answered"] < 16

    def test_multi_user_and_deadline_queries_bypass_coalescing(
            self, indexed_path):
        with RecommenderServer(indexed_path, n_workers=1) as server:
            with ServingClient(server.address) as client:
                client.query(Query(users=[1, 2], k=5))
                client.query(Query(users=[3], k=5, deadline_ms=5000.0))
                client.query(Query(users=[4], k=5,
                                   candidates=np.arange(100)))
                stats = client.ping()["stats"]
        assert stats["coalesced_queries"] == 0
        assert stats["answered"] == 3
