"""Fused training engines of the metric baselines vs. the autograd reference.

The same three layers of evidence as ``tests/test_fused_engine.py`` gives for
MAR/MARS, extended over the whole baseline family and the multi-negative
batch shapes:

* gradient parity — for every fused baseline (CML, MetricF, SML, TransCF,
  BPR) × ``n_negatives ∈ {1, 4}`` × push reduction, one engine step from an
  identical parameter state applies updates matching the autograd engine to
  ~1e-10 (SGD and Adagrad updates are invertible in the gradients, so equal
  parameters ⇒ equal analytic gradients);
* trajectory equivalence — seeded end-to-end ``fit`` produces identical loss
  curves and final parameters for both engines;
* closed-form losses — the new multi-negative NumPy losses
  (``push_loss_numpy``, ``bpr_loss_numpy``) are certified against central
  finite differences, including the hardest-negative subgradient convention
  at ties;

plus regression coverage for the ``(B, N)`` negative blocks of
``TripletBatcher`` and for the engine/optimizer metadata the baselines now
persist through ``save``/``load``.
"""

import time

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.gradcheck import numeric_gradient
from repro.autograd.optim import Adagrad
from repro.autograd import Parameter
from repro.baselines import BPR, CML, LRML, MetricF, NeuMF, SML, TransCF
from repro.core.losses import bpr_loss_numpy, push_loss_numpy
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.data.batching import TripletBatch, TripletBatcher

FUSED_BASELINES = [CML, MetricF, SML, TransCF, BPR]


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=40, n_items=60, n_facets=2,
                             interactions_per_user=8.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


def _prepared_model(model_cls, dataset, engine, n_negatives, reduction,
                    seed=3, **overrides):
    """Model with a freshly built (untrained) network, ready for one step."""
    model = model_cls(embedding_dim=8, n_epochs=1, batch_size=24,
                      engine=engine, n_negatives=n_negatives,
                      negative_reduction=reduction, random_state=seed,
                      **overrides)
    model._train_interactions = dataset.train
    model.network = model._build(dataset.train)
    model._post_step()
    model._on_epoch_start(0, dataset.train)
    return model


def _duplicate_heavy_batch(rng, n_users, n_items, batch_size, n_negatives):
    """Random batch with forced duplicate rows to exercise the scatter paths."""
    users = rng.integers(0, n_users, size=batch_size)
    positives = rng.integers(0, n_items, size=batch_size)
    if n_negatives == 1:
        negatives = rng.integers(0, n_items, size=batch_size)
        negatives[2] = positives[3]
    else:
        negatives = rng.integers(0, n_items, size=(batch_size, n_negatives))
        negatives[2, 1] = positives[3]
        negatives[4, 0] = negatives[4, 1]
    users[0] = users[1]
    positives[5] = positives[6]
    return TripletBatch(users=users, positives=positives, negatives=negatives)


class TestGradientParityMatrix:
    """One engine step from identical states must apply identical updates."""

    @pytest.mark.parametrize("model_cls", FUSED_BASELINES)
    @pytest.mark.parametrize("n_negatives", [1, 4])
    @pytest.mark.parametrize("reduction", ["sum", "hardest"])
    def test_one_step_parameter_parity(self, dataset, model_cls, n_negatives,
                                       reduction):
        rng = np.random.default_rng(11)
        batch = _duplicate_heavy_batch(rng, dataset.train.n_users,
                                       dataset.train.n_items, 24, n_negatives)
        results = {}
        for engine in ("fused", "autograd"):
            model = _prepared_model(model_cls, dataset, engine, n_negatives,
                                    reduction)
            optimizer = model._make_optimizer()
            loss = model._train_step(batch, optimizer)
            results[engine] = (loss, model.network.state_dict())

        fused_loss, fused_state = results["fused"]
        autograd_loss, autograd_state = results["autograd"]
        assert fused_loss == pytest.approx(autograd_loss, abs=1e-10)
        assert fused_state.keys() == autograd_state.keys()
        for name in fused_state:
            np.testing.assert_allclose(
                fused_state[name], autograd_state[name], rtol=1e-9, atol=1e-11,
                err_msg=f"{model_cls.name} {name} n_negatives={n_negatives} "
                        f"reduction={reduction}")

    @pytest.mark.parametrize("model_cls", FUSED_BASELINES)
    def test_multi_step_parity_with_optimizer_state(self, dataset, model_cls):
        """Several steps, so stateful optimizers (Adagrad) stay in lockstep."""
        rng = np.random.default_rng(5)
        batches = [_duplicate_heavy_batch(rng, dataset.train.n_users,
                                          dataset.train.n_items, 24, 4)
                   for _ in range(4)]
        states = {}
        for engine in ("fused", "autograd"):
            model = _prepared_model(model_cls, dataset, engine, 4, "sum")
            optimizer = model._make_optimizer()
            losses = [model._train_step(batch, optimizer) for batch in batches]
            states[engine] = (losses, model.network.state_dict())
        np.testing.assert_allclose(states["fused"][0], states["autograd"][0],
                                   rtol=1e-9, atol=1e-10)
        for name, value in states["fused"][1].items():
            np.testing.assert_allclose(value, states["autograd"][1][name],
                                       rtol=1e-8, atol=1e-10, err_msg=name)


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("model_cls", FUSED_BASELINES)
    @pytest.mark.parametrize("n_negatives,reduction",
                             [(1, "sum"), (4, "sum"), (4, "hardest")])
    def test_identical_seeded_loss_curves(self, dataset, model_cls,
                                          n_negatives, reduction):
        kwargs = dict(embedding_dim=10, n_epochs=2, batch_size=32,
                      n_negatives=n_negatives, negative_reduction=reduction,
                      random_state=5)
        fused = model_cls(engine="fused", **kwargs).fit(dataset)
        autograd = model_cls(engine="autograd", **kwargs).fit(dataset)
        np.testing.assert_allclose(fused.loss_history_, autograd.loss_history_,
                                   rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            fused.network.user_embeddings.weight.data,
            autograd.network.user_embeddings.weight.data,
            rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(
            fused.network.item_embeddings.weight.data,
            autograd.network.item_embeddings.weight.data,
            rtol=1e-8, atol=1e-10)

    def test_sml_margins_follow_identical_trajectories(self, dataset):
        kwargs = dict(embedding_dim=8, n_epochs=2, batch_size=32,
                      n_negatives=2, random_state=1)
        fused = SML(engine="fused", **kwargs).fit(dataset)
        autograd = SML(engine="autograd", **kwargs).fit(dataset)
        np.testing.assert_allclose(fused.network.user_margins.data,
                                   autograd.network.user_margins.data,
                                   rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(fused.network.item_margins.data,
                                   autograd.network.item_margins.data,
                                   rtol=1e-8, atol=1e-10)

    @pytest.mark.parametrize("model_cls", FUSED_BASELINES)
    def test_constraints_hold_under_fused_training(self, dataset, model_cls):
        model = model_cls(embedding_dim=8, n_epochs=2, batch_size=32,
                          engine="fused", random_state=0).fit(dataset)
        if model_cls is BPR:            # no norm constraint on BPR
            return
        for table in (model.network.user_embeddings, model.network.item_embeddings):
            norms = np.linalg.norm(table.weight.data, axis=1)
            assert np.all(norms <= 1.0 + 1e-8)


class TestEngineKnob:
    @pytest.mark.parametrize("model_cls", FUSED_BASELINES)
    def test_fused_is_the_default_engine(self, model_cls):
        assert model_cls().engine == "fused"

    @pytest.mark.parametrize("model_cls", [NeuMF, LRML])
    def test_models_without_kernels_reject_fused(self, model_cls):
        assert model_cls().engine == "autograd"
        with pytest.raises(ValueError, match="fused"):
            model_cls(engine="fused")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            CML(engine="bogus")

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError):
            CML(negative_reduction="median")


class TestMultiNegativeLossesGradcheck:
    """Finite-difference certification of the new NumPy loss closed forms."""

    def _check(self, analytic_fn, value_fn, inputs, atol=1e-7):
        grads = analytic_fn(*inputs)
        for index in range(len(inputs)):
            numeric = numeric_gradient(value_fn, inputs, index, epsilon=1e-6)
            np.testing.assert_allclose(grads[index], numeric, rtol=1e-6,
                                       atol=atol, err_msg=f"input {index}")

    @pytest.mark.parametrize("reduction", ["sum", "hardest"])
    def test_push_loss_numpy_matches_finite_differences(self, reduction):
        rng = np.random.default_rng(7)
        pos = rng.normal(size=12)
        neg = rng.normal(size=(12, 5))
        margins = rng.uniform(0.3, 0.8, size=12)

        def value_fn(p, n):
            return Tensor(push_loss_numpy(p.data, n.data, margins,
                                          reduction=reduction)[0])

        def analytic_fn(p, n):
            _, grad_pos, grad_neg = push_loss_numpy(p, n, margins,
                                                    reduction=reduction)
            return grad_pos, grad_neg

        self._check(analytic_fn, value_fn, [pos, neg])

    @pytest.mark.parametrize("reduction", ["sum", "hardest"])
    def test_bpr_loss_numpy_matches_finite_differences(self, reduction):
        rng = np.random.default_rng(8)
        pos = rng.normal(size=10)
        neg = rng.normal(size=(10, 4))

        def value_fn(p, n):
            return Tensor(bpr_loss_numpy(p.data, n.data,
                                         reduction=reduction)[0])

        def analytic_fn(p, n):
            _, grad_pos, grad_neg = bpr_loss_numpy(p, n, reduction=reduction)
            return grad_pos, grad_neg

        self._check(analytic_fn, value_fn, [pos, neg])

    def test_hardest_subgradient_routes_to_first_tie(self):
        """At exact ties the whole gradient goes to the first maximum, in both
        the NumPy closed form and the autograd reference (``Tensor.max``)."""
        pos = np.array([0.1, 0.2])
        neg = np.array([[0.5, 0.5, 0.3],       # tie between columns 0 and 1
                        [0.1, 0.4, 0.4]])      # tie between columns 1 and 2
        margins = 0.5
        _, grad_pos, grad_neg = push_loss_numpy(pos, neg, margins,
                                                reduction="hardest")
        expected = np.array([[0.5, 0.0, 0.0],
                             [0.0, 0.5, 0.0]])
        np.testing.assert_array_equal(grad_neg, expected)
        np.testing.assert_array_equal(grad_pos, [-0.5, -0.5])

        neg_tensor = Tensor(neg, requires_grad=True)
        violations = Tensor(margins - pos).reshape(2, 1) + neg_tensor
        loss = violations.max(axis=1).clip_min(0.0).mean()
        loss.backward()
        np.testing.assert_array_equal(neg_tensor.grad, expected)

    def test_hardest_loss_value_uses_single_negative(self):
        pos = np.array([0.0])
        neg = np.array([[1.0, 3.0, 2.0]])
        loss, _, grad_neg = push_loss_numpy(pos, neg, 0.5, reduction="hardest")
        assert loss == pytest.approx(3.5)
        np.testing.assert_array_equal(grad_neg, [[0.0, 1.0, 0.0]])

    def test_single_negative_column_matches_classic_vector(self):
        rng = np.random.default_rng(9)
        pos = rng.normal(size=16)
        neg = rng.normal(size=16)
        margins = rng.uniform(0.1, 0.9, size=16)
        loss_vec, gp_vec, gn_vec = push_loss_numpy(pos, neg, margins)
        for reduction in ("sum", "hardest"):
            loss, gp, gn = push_loss_numpy(pos, neg[:, None], margins,
                                           reduction=reduction)
            assert loss == pytest.approx(loss_vec, abs=1e-14)
            np.testing.assert_allclose(gp, gp_vec, atol=1e-15)
            np.testing.assert_allclose(gn[:, 0], gn_vec, atol=1e-15)

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError):
            push_loss_numpy(np.zeros(2), np.zeros((2, 3)), 0.5, reduction="avg")
        with pytest.raises(ValueError):
            bpr_loss_numpy(np.zeros(2), np.zeros((2, 3)), reduction="avg")


class TestAdagradRowUpdates:
    def test_step_rows_matches_dense_step(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(10, 4))
        rows = np.array([1, 4, 7])
        row_grads = rng.normal(size=(3, 4))

        dense = Parameter(data.copy())
        dense_opt = Adagrad([dense], lr=0.1)
        sparse = Parameter(data.copy())
        sparse_opt = Adagrad([sparse], lr=0.1)
        for _ in range(3):                       # accumulator state matters
            dense.grad = np.zeros_like(data)
            dense.grad[rows] = row_grads
            dense_opt.step()
            sparse_opt.step_rows(sparse, rows, row_grads)
        np.testing.assert_array_equal(sparse.data, dense.data)

    def test_step_rows_rejects_weight_decay(self):
        parameter = Parameter(np.ones((4, 2)))
        optimizer = Adagrad([parameter], lr=0.1, weight_decay=0.1)
        with pytest.raises(ValueError):
            optimizer.step_rows(parameter, np.array([0]), np.ones((1, 2)))


class TestMultiNegativeBatcher:
    def test_negative_blocks_never_contain_positives(self, dataset):
        interactions = dataset.train
        batcher = TripletBatcher(interactions, batch_size=48, n_negatives=5,
                                 random_state=0)
        for _ in range(25):
            batch = batcher.sample_batch()
            assert batch.negatives.shape == (48, 5)
            for user, block in zip(batch.users, batch.negatives):
                for item in block:
                    assert (int(user), int(item)) not in interactions

    def test_shapes_and_dtypes_stable_across_seeds(self, dataset):
        for seed in (0, 1, 17, 123):
            batcher = TripletBatcher(dataset.train, batch_size=32,
                                     n_negatives=3, random_state=seed)
            batch = batcher.sample_batch()
            assert batch.users.shape == (32,)
            assert batch.positives.shape == (32,)
            assert batch.negatives.shape == (32, 3)
            assert batch.users.dtype == np.int64
            assert batch.positives.dtype == np.int64
            assert batch.negatives.dtype == np.int64
            assert batch.n_negatives == 3
            override = batcher.sample_batch(batch_size=7)
            assert override.negatives.shape == (7, 3)

    def test_single_negative_keeps_flat_shape(self, dataset):
        batcher = TripletBatcher(dataset.train, batch_size=16, random_state=0)
        batch = batcher.sample_batch()
        assert batch.negatives.shape == (16,)
        assert batch.n_negatives == 1

    def test_epoch_length_independent_of_negative_width(self, dataset):
        narrow = TripletBatcher(dataset.train, batch_size=50, n_negatives=1,
                                random_state=0)
        wide = TripletBatcher(dataset.train, batch_size=50, n_negatives=6,
                              random_state=0)
        assert narrow.n_batches_per_epoch() == wide.n_batches_per_epoch()


class TestSaveLoadRoundTrip:
    def test_engine_and_optimizer_hyperparameters_persist(self, dataset, tmp_path):
        model = CML(embedding_dim=8, n_epochs=2, batch_size=32,
                    engine="autograd", learning_rate=0.07, n_negatives=3,
                    negative_reduction="hardest", random_state=0).fit(dataset)
        path = model.save(tmp_path / "cml.npz")

        clone = CML(embedding_dim=8, n_epochs=1, batch_size=32,
                    engine="fused", learning_rate=0.5, random_state=0).fit(dataset)
        clone.load(path)
        assert clone.engine == "autograd"
        assert clone.optimizer == "sgd"
        assert clone.learning_rate == pytest.approx(0.07)
        assert clone.n_negatives == 3
        assert clone.negative_reduction == "hardest"
        np.testing.assert_array_equal(clone.network.user_embeddings.weight.data,
                                      model.network.user_embeddings.weight.data)

    @pytest.mark.parametrize("model_cls", [CML, BPR])
    def test_reloaded_model_resumes_identically(self, dataset, model_cls, tmp_path):
        """A reloaded baseline takes the exact same next training step."""
        model = model_cls(embedding_dim=8, n_epochs=1, batch_size=32,
                          engine="fused", n_negatives=2, random_state=0).fit(dataset)
        path = model.save(tmp_path / "model.npz")
        clone = model_cls(embedding_dim=8, n_epochs=1, batch_size=32,
                          engine="autograd", learning_rate=0.01,
                          random_state=0).fit(dataset)
        clone.load(path)

        rng = np.random.default_rng(3)
        batch = _duplicate_heavy_batch(rng, dataset.train.n_users,
                                       dataset.train.n_items, 24, 2)
        losses = []
        for instance in (model, clone):
            optimizer = instance._make_optimizer()
            losses.append(instance._train_step(batch, optimizer))
        assert losses[0] == pytest.approx(losses[1], abs=1e-12)
        for name, value in model.network.state_dict().items():
            np.testing.assert_array_equal(value, clone.network.state_dict()[name],
                                          err_msg=name)

    def test_legacy_checkpoints_without_metadata_still_load(self, dataset, tmp_path):
        model = CML(embedding_dim=8, n_epochs=1, batch_size=32,
                    random_state=0).fit(dataset)
        legacy = {key: value for key, value in model.get_parameters().items()
                  if not key.startswith("_meta.")}
        from repro.utils.io import save_arrays
        path = save_arrays(tmp_path / "legacy.npz", legacy)
        clone = CML(embedding_dim=8, n_epochs=1, batch_size=32,
                    engine="autograd", random_state=0).fit(dataset)
        clone.load(path)
        assert clone.engine == "autograd"     # untouched by a legacy file
        np.testing.assert_array_equal(clone.network.user_embeddings.weight.data,
                                      model.network.user_embeddings.weight.data)


class TestBaselineFusedSpeedup:
    @pytest.mark.slow
    def test_fused_step_at_least_3x_faster_at_catalogue_scale(self):
        """Per-step speedup for CML/MetricF/SML at a production-sized
        catalogue (8k users × 12k items, D=32, B=256), where the autograd
        engine's dense gradient buffers and full-table optimizer/censoring
        passes dominate.  Interleaved best-of rounds so load skews both
        engines alike."""
        from repro.data.interactions import InteractionMatrix

        n_users, n_items, steps = 8000, 12000, 10
        rng = np.random.default_rng(0)
        users = np.repeat(np.arange(n_users), 3)
        items = rng.integers(0, n_items, users.size)
        train = InteractionMatrix(n_users, n_items, users, items)
        batches = [TripletBatch(users=rng.integers(0, n_users, 256),
                                positives=rng.integers(0, n_items, 256),
                                negatives=rng.integers(0, n_items, 256))
                   for _ in range(steps)]

        for model_cls in (CML, MetricF, SML):
            runners = {}
            for engine in ("fused", "autograd"):
                model = model_cls(embedding_dim=32, n_epochs=1, batch_size=256,
                                  engine=engine, random_state=0)
                model._train_interactions = train
                model.network = model._build(train)
                model._post_step()
                model._on_epoch_start(0, train)
                optimizer = model._make_optimizer()
                model._train_step(batches[0], optimizer)       # warm-up
                runners[engine] = (model, optimizer)
            best = {"fused": np.inf, "autograd": np.inf}
            for _ in range(3):
                for engine, (model, optimizer) in runners.items():
                    start = time.perf_counter()
                    for batch in batches:
                        model._train_step(batch, optimizer)
                    best[engine] = min(best[engine],
                                       time.perf_counter() - start)
            speedup = best["autograd"] / best["fused"]
            assert speedup >= 3.0, (
                f"fused {model_cls.name} step only {speedup:.2f}x faster")
