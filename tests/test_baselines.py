"""Tests for all baseline recommenders.

Every learned baseline is trained briefly on a small synthetic dataset and
must (a) expose the shared BaseRecommender interface correctly and (b) rank
better than chance, which is the minimal bar for "the implementation learns".
"""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BASELINES,
    BPR,
    CML,
    LRML,
    SML,
    ItemKNN,
    MetricF,
    NMF,
    NeuMF,
    Popularity,
    TransCF,
)
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.eval import LeaveOneOutEvaluator


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=70, n_items=90, n_facets=3,
                             interactions_per_user=14.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


@pytest.fixture(scope="module")
def evaluator(dataset):
    return LeaveOneOutEvaluator(dataset, n_negatives=50, random_state=0)


RANDOM_HR10 = 10.0 / 51.0

LEARNED_FAST = {
    "BPR": lambda: BPR(embedding_dim=16, n_epochs=15, batch_size=128, random_state=0),
    "NeuMF": lambda: NeuMF(embedding_dim=8, n_epochs=10, batch_size=128, random_state=0),
    "CML": lambda: CML(embedding_dim=16, n_epochs=15, batch_size=128, random_state=0),
    "MetricF": lambda: MetricF(embedding_dim=16, n_epochs=15, batch_size=128, random_state=0),
    "TransCF": lambda: TransCF(embedding_dim=16, n_epochs=15, batch_size=128, random_state=0),
    "LRML": lambda: LRML(embedding_dim=16, n_epochs=15, batch_size=128, random_state=0),
    "SML": lambda: SML(embedding_dim=16, n_epochs=15, batch_size=128, random_state=0),
}


class TestRegistry:
    def test_all_paper_baselines_registered(self):
        expected = {"BPR", "NMF", "NeuMF", "CML", "MetricF", "TransCF", "LRML", "SML"}
        assert expected.issubset(set(ALL_BASELINES))

    def test_registry_classes_have_unique_names(self):
        names = [cls.name for cls in ALL_BASELINES.values()]
        assert len(names) == len(set(names))


class TestPopularity:
    def test_scores_follow_item_degree(self, dataset):
        model = Popularity().fit(dataset)
        degrees = dataset.train.item_degrees()
        most = int(np.argmax(degrees))
        least = int(np.argmin(degrees))
        scores = model.score_items(0, [most, least])
        assert scores[0] >= scores[1]

    def test_recommend_is_user_independent(self, dataset):
        model = Popularity().fit(dataset)
        scores_a = model.score_items(0, np.arange(10))
        scores_b = model.score_items(5, np.arange(10))
        assert np.allclose(scores_a, scores_b)

    def test_save_load_roundtrip(self, dataset, tmp_path):
        model = Popularity().fit(dataset)
        path = model.save(tmp_path / "pop.npz")
        clone = Popularity().fit(dataset)
        clone.load(path)
        assert np.allclose(clone.item_scores_, model.item_scores_)


class TestItemKNN:
    def test_beats_random(self, dataset, evaluator):
        model = ItemKNN(k_neighbours=30).fit(dataset)
        assert evaluator.evaluate(model)["hr@10"] > RANDOM_HR10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ItemKNN(k_neighbours=0)
        with pytest.raises(ValueError):
            ItemKNN(shrinkage=-1.0)

    def test_scores_higher_for_co_consumed_items(self, dataset):
        model = ItemKNN(k_neighbours=30).fit(dataset)
        user = int(dataset.evaluable_users()[0])
        seen = dataset.train.items_of_user(user)
        unseen = np.setdiff1d(np.arange(dataset.n_items), seen)
        scores = model.score_items(user, unseen)
        assert np.any(scores > 0)


class TestNMF:
    def test_factors_are_non_negative(self, dataset):
        model = NMF(n_factors=8, n_iterations=30, random_state=0).fit(dataset)
        assert np.all(model.user_factors_ >= 0)
        assert np.all(model.item_factors_ >= 0)

    def test_reconstruction_error_decreases(self, dataset):
        model = NMF(n_factors=8, n_iterations=30, random_state=0).fit(dataset)
        errors = model.reconstruction_errors_
        assert errors[-1] < errors[0]

    def test_beats_random(self, dataset, evaluator):
        model = NMF(n_factors=16, n_iterations=60, random_state=0).fit(dataset)
        assert evaluator.evaluate(model)["hr@10"] > RANDOM_HR10

    def test_invalid_factors(self):
        with pytest.raises(ValueError):
            NMF(n_factors=0)


@pytest.mark.parametrize("name", sorted(LEARNED_FAST))
class TestLearnedBaselines:
    def test_training_reduces_loss(self, name, dataset):
        model = LEARNED_FAST[name]()
        model.fit(dataset)
        assert len(model.loss_history_) == model.n_epochs
        assert model.loss_history_[-1] <= model.loss_history_[0]

    def test_beats_random_ranking(self, name, dataset, evaluator):
        model = LEARNED_FAST[name]().fit(dataset)
        result = evaluator.evaluate(model)
        assert result["hr@10"] > RANDOM_HR10, f"{name} did not beat random"

    def test_score_items_interface(self, name, dataset):
        model = LEARNED_FAST[name]().fit(dataset)
        scores = model.score_items(0, [0, 1, 2, 3, 4])
        assert scores.shape == (5,)
        assert np.all(np.isfinite(scores))

    def test_recommend_excludes_seen(self, name, dataset):
        model = LEARNED_FAST[name]().fit(dataset)
        user = int(dataset.evaluable_users()[0])
        seen = set(dataset.train.items_of_user(user).tolist())
        recs = model.recommend(user, k=10)
        assert not seen.intersection(recs.tolist())

    def test_unfitted_scoring_raises(self, name):
        with pytest.raises(RuntimeError):
            LEARNED_FAST[name]().score_items(0, [0])


class TestMetricLearningConstraints:
    def test_cml_embeddings_in_unit_ball(self, dataset):
        model = CML(embedding_dim=16, n_epochs=5, batch_size=128, random_state=0).fit(dataset)
        users = model.network.user_embeddings.weight.data
        items = model.network.item_embeddings.weight.data
        assert np.all(np.linalg.norm(users, axis=1) <= 1.0 + 1e-8)
        assert np.all(np.linalg.norm(items, axis=1) <= 1.0 + 1e-8)

    def test_sml_margins_stay_in_range(self, dataset):
        model = SML(embedding_dim=16, n_epochs=5, batch_size=128,
                    max_margin=1.0, random_state=0).fit(dataset)
        assert np.all(model.network.user_margins.data <= 1.0)
        assert np.all(model.network.user_margins.data >= 0.01)

    def test_sml_invalid_margins(self):
        with pytest.raises(ValueError):
            SML(init_margin=2.0, max_margin=1.0)

    def test_cml_invalid_margin(self):
        with pytest.raises(ValueError):
            CML(margin=0.0)

    def test_lrml_invalid_memories(self):
        with pytest.raises(ValueError):
            LRML(n_memories=0)

    def test_transcf_relation_uses_neighbourhoods(self, dataset):
        model = TransCF(embedding_dim=16, n_epochs=3, batch_size=128,
                        random_state=0).fit(dataset)
        # contexts must have been refreshed and have matching shapes
        assert model._user_context.shape == (dataset.n_users, 16)
        assert model._item_context.shape == (dataset.n_items, 16)

    def test_bpr_weight_decay_accepts_zero(self, dataset):
        model = BPR(embedding_dim=8, n_epochs=2, batch_size=128,
                    weight_decay=0.0, random_state=0).fit(dataset)
        assert model.is_fitted

    def test_state_dict_roundtrip(self, dataset, tmp_path):
        model = CML(embedding_dim=8, n_epochs=2, batch_size=128, random_state=0).fit(dataset)
        path = model.save(tmp_path / "cml.npz")
        clone = CML(embedding_dim=8, n_epochs=1, batch_size=128, random_state=0).fit(dataset)
        clone.load(path)
        assert np.allclose(clone.score_items(0, [1, 2, 3]),
                           model.score_items(0, [1, 2, 3]))
