"""Tests for the unified training runtime (:mod:`repro.training.loop`).

Four layers of evidence that the runtime is a faithful replacement for the
hand-rolled epoch loops it absorbed, and that the sharded executor honours
the determinism contract:

* **serial parity** — seeded MAR/MARS/CML training through the runtime is
  *bit-identical* (loss curves and every parameter) to a reference
  reimplementation of the pre-runtime ``_fit`` loops;
* **shard determinism** — ``executor="sharded", n_shards=1`` is bit-identical
  to serial, while ``n_shards=4`` matches serial loss curves and evaluation
  metrics statistically on the delicious preset;
* **shard disjointness** — :func:`~repro.training.loop.partition_users`
  produces a disjoint cover of the active users, and a ``user_subset``
  batcher only ever samples its own users;
* **scatter equality** — the two segment-sum strategies inside
  :func:`~repro.core.fused.scatter_rows` agree bitwise, so training runs
  whose batches straddle the strategy threshold never change numerics.
"""

import numpy as np
import pytest

from repro.autograd.optim import Optimizer
from repro.baselines import CML
from repro.core import MAR, MARS
from repro.core._multifacet import _MultiFacetNetwork
from repro.core.fused import _DENSE_SCATTER_MAX_ROWS, scatter_rows
from repro.core.margins import adaptive_margins
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig, load_benchmark
from repro.data.batching import TripletBatcher
from repro.eval.protocol import LeaveOneOutEvaluator
from repro.training import EpochReport, TrainingLoop, partition_users


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=60, n_items=80, interactions_per_user=12.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


@pytest.fixture(scope="module")
def delicious():
    return load_benchmark("delicious", random_state=0)


def _assert_same_model(left, right):
    np.testing.assert_array_equal(left.loss_history_, right.loss_history_)
    right_params = right.get_parameters()
    for key, value in left.get_parameters().items():
        if key.startswith("_meta."):
            # Persisted hyperparameters legitimately differ between the
            # executor configurations under comparison; the parity claim is
            # about the learned state.
            continue
        np.testing.assert_array_equal(value, right_params[key], err_msg=key)


# --------------------------------------------------------------------- #
# reference implementations of the pre-runtime loops (the parity oracle)
# --------------------------------------------------------------------- #
def _reference_multifacet_fit(model, interactions):
    """The epoch loop MultiFacetRecommender._fit owned before the runtime."""
    config = model.config
    model._train_interactions = interactions
    model.network = _MultiFacetNetwork(
        n_users=interactions.n_users, n_items=interactions.n_items,
        n_facets=config.n_facets, dim=config.embedding_dim,
        spherical=model._spherical(),
        projection_noise=config.projection_noise,
        random_state=config.random_state,
    )
    model._apply_constraints(model.network)
    if config.adaptive_margin:
        model.margins_ = adaptive_margins(interactions,
                                          min_margin=config.min_margin)
    else:
        model.margins_ = np.full(interactions.n_users, config.margin)
    batcher = TripletBatcher(
        interactions, batch_size=config.batch_size,
        n_negatives=config.n_negatives, user_sampling=config.user_sampling,
        beta=config.beta, random_state=config.random_state,
    )
    optimizer = model._make_optimizer(model.network)
    model.loss_history_ = []
    for _ in range(config.n_epochs):
        epoch_loss, n_batches = 0.0, 0
        for batch in batcher.epoch():
            epoch_loss += model._train_step(batch, optimizer)
            n_batches += 1
        model.loss_history_.append(epoch_loss / max(n_batches, 1))
    return model


def _reference_embedding_fit(model, interactions):
    """The epoch loop EmbeddingRecommender._fit owned before the runtime."""
    model._train_interactions = interactions
    model.network = model._build(interactions)
    model._post_step()
    batcher = TripletBatcher(
        interactions, batch_size=model.batch_size,
        n_negatives=model.n_negatives, user_sampling=model.user_sampling,
        random_state=model.random_state,
    )
    optimizer = model._make_optimizer()
    model.loss_history_ = []
    for epoch in range(model.n_epochs):
        model._on_epoch_start(epoch, interactions)
        epoch_loss, n_batches = 0.0, 0
        for batch in batcher.epoch():
            epoch_loss += model._train_step(batch, optimizer)
            n_batches += 1
        model.loss_history_.append(epoch_loss / max(n_batches, 1))
    return model


class TestSerialParity:
    """Runtime-trained models are bit-identical to the pre-runtime loops."""

    @pytest.mark.parametrize("model_cls", [MAR, MARS])
    @pytest.mark.parametrize("engine", ["fused", "autograd"])
    def test_multifacet_matches_reference_loop(self, dataset, model_cls, engine):
        kwargs = dict(n_facets=2, embedding_dim=8, n_epochs=3, batch_size=64,
                      engine=engine, random_state=0)
        reference = _reference_multifacet_fit(model_cls(**kwargs), dataset.train)
        trained = model_cls(**kwargs).fit(dataset)
        _assert_same_model(reference, trained)

    @pytest.mark.parametrize("engine", ["fused", "autograd"])
    def test_embedding_baseline_matches_reference_loop(self, dataset, engine):
        kwargs = dict(embedding_dim=8, n_epochs=3, batch_size=64,
                      engine=engine, random_state=0)
        reference = _reference_embedding_fit(CML(**kwargs), dataset.train)
        trained = CML(**kwargs).fit(dataset)
        _assert_same_model(reference, trained)

    def test_runtime_reports_and_resume(self, dataset):
        model = MAR(n_facets=2, embedding_dim=8, n_epochs=3, batch_size=64,
                    random_state=0).fit(dataset)
        runtime = model.runtime_
        assert runtime is not None and runtime.epoch_ == 3
        assert [report.epoch for report in runtime.reports] == [0, 1, 2]
        for report in runtime.reports:
            assert isinstance(report, EpochReport)
            assert report.n_batches >= 1
            assert report.duration >= 0.0
            assert report.shard_losses is None
        assert [report.mean_loss for report in runtime.reports] == model.loss_history_

        # fit_more continues the same streams: identical to a longer fresh fit.
        model.fit_more(2)
        assert len(model.loss_history_) == 5
        longer = MAR(n_facets=2, embedding_dim=8, n_epochs=5, batch_size=64,
                     random_state=0).fit(dataset)
        _assert_same_model(model, longer)

    def test_fit_more_requires_fitted_model(self, dataset):
        with pytest.raises(RuntimeError):
            MAR(n_facets=2, embedding_dim=8).fit_more(1)

    def test_released_runtime_refuses_to_resume(self, dataset):
        model = CML(embedding_dim=8, n_epochs=1, batch_size=64,
                    random_state=0).fit(dataset)
        model.runtime_.release()
        # Scoring still works; only further training is off the table.
        assert model.recommend(0, k=3).shape == (3,)
        with pytest.raises(RuntimeError):
            model.fit_more(1)

    def test_save_load_round_trips_executor_metadata(self, dataset, tmp_path):
        model = CML(embedding_dim=8, n_epochs=1, batch_size=64,
                    executor="sharded", n_shards=4, random_state=0).fit(dataset)
        path = model.save(tmp_path / "cml_sharded.npz")
        restored = CML(embedding_dim=8, n_epochs=1, batch_size=64,
                       random_state=0)
        restored.fit(dataset)          # build the network, then overwrite
        restored.load(path)
        assert restored.executor == "sharded"
        assert restored.n_shards == 4

    def test_shard_batchers_share_negative_index(self, dataset):
        interactions = dataset.train
        model = CML(embedding_dim=8, n_epochs=1, batch_size=64,
                    executor="sharded", n_shards=4, random_state=0).fit(dataset)
        keys = interactions.encoded_positive_keys()
        for batcher in model.runtime_._batchers:
            assert batcher._negative_sampler._pair_keys is keys

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            MAR(n_facets=2, embedding_dim=8, executor="process-pool")
        with pytest.raises(ValueError):
            CML(embedding_dim=8, executor="process-pool")
        with pytest.raises(ValueError):
            MAR(n_facets=2, embedding_dim=8, n_shards=0)

    def test_sharded_requires_fused_engine(self):
        with pytest.raises(ValueError):
            MAR(n_facets=2, embedding_dim=8, engine="autograd",
                executor="sharded", n_shards=2)
        with pytest.raises(ValueError):
            CML(embedding_dim=8, engine="autograd",
                executor="sharded", n_shards=2)
        # n_shards=1 sharding degenerates to serial and stays allowed.
        assert MAR(n_facets=2, embedding_dim=8, engine="autograd",
                   executor="sharded", n_shards=1).config.n_shards == 1


class TestShardedExecutor:
    @pytest.mark.parametrize("model_cls,kwargs", [
        (MAR, dict(n_facets=2, embedding_dim=8, n_epochs=3, batch_size=64)),
        (MARS, dict(n_facets=2, embedding_dim=8, n_epochs=3, batch_size=64)),
        (CML, dict(embedding_dim=8, n_epochs=3, batch_size=64)),
    ])
    def test_single_shard_is_bit_identical_to_serial(self, dataset, model_cls,
                                                     kwargs):
        serial = model_cls(random_state=0, **kwargs).fit(dataset)
        sharded = model_cls(random_state=0, executor="sharded", n_shards=1,
                            **kwargs).fit(dataset)
        _assert_same_model(serial, sharded)

    def test_sharded_epoch_covers_serial_batch_count(self, dataset):
        serial = CML(embedding_dim=8, n_epochs=1, batch_size=64,
                     random_state=0).fit(dataset)
        sharded = CML(embedding_dim=8, n_epochs=1, batch_size=64,
                      executor="sharded", n_shards=4, random_state=0).fit(dataset)
        serial_batches = serial.runtime_.reports[0].n_batches
        shard_report = sharded.runtime_.reports[0]
        # Per-shard ceil rounding can only add batches, never drop work.
        assert shard_report.n_batches >= serial_batches
        assert shard_report.n_batches <= serial_batches + 4
        assert len(shard_report.shard_losses) == 4

    @pytest.mark.parametrize("model_cls,kwargs", [
        (MARS, dict(n_facets=2, embedding_dim=16, n_epochs=8, batch_size=128)),
        (CML, dict(embedding_dim=16, n_epochs=8, batch_size=128)),
    ])
    def test_four_shards_match_serial_statistically(self, delicious, model_cls,
                                                    kwargs):
        """Hogwild sharding must track the serial trajectory, not equal it.

        Disjoint user shards only race on item rows, so epoch-mean losses
        should agree to a few percent and paired evaluation metrics to well
        under the model-to-model differences of Table II.
        """
        serial = model_cls(random_state=0, **kwargs).fit(delicious)
        sharded = model_cls(random_state=0, executor="sharded", n_shards=4,
                            **kwargs).fit(delicious)
        serial_curve = np.asarray(serial.loss_history_)
        sharded_curve = np.asarray(sharded.loss_history_)
        np.testing.assert_allclose(sharded_curve, serial_curve, rtol=0.25)
        # The second half of training (past the fast initial descent) should
        # agree tightly.
        np.testing.assert_allclose(sharded_curve[-4:], serial_curve[-4:],
                                   rtol=0.15)

        evaluator = LeaveOneOutEvaluator(delicious, n_negatives=50,
                                         random_state=0)
        serial_metrics = evaluator.evaluate(serial).metrics
        sharded_metrics = evaluator.evaluate(sharded).metrics
        for key in ("hr@10", "ndcg@10"):
            assert abs(serial_metrics[key] - sharded_metrics[key]) < 0.1, (
                key, serial_metrics[key], sharded_metrics[key])

    def test_too_many_shards_rejected(self, dataset):
        with pytest.raises(ValueError):
            CML(embedding_dim=8, n_epochs=1, batch_size=64, executor="sharded",
                n_shards=10_000, random_state=0).fit(dataset)


class TestPartitionUsers:
    def test_disjoint_cover_of_active_users(self, dataset):
        interactions = dataset.train
        shards = partition_users(interactions, 4)
        stacked = np.concatenate(shards)
        assert stacked.size == np.unique(stacked).size  # pairwise disjoint
        active = np.flatnonzero(interactions.user_degrees() > 0)
        np.testing.assert_array_equal(np.sort(stacked), active)

    def test_degree_balanced(self, dataset):
        interactions = dataset.train
        degrees = interactions.user_degrees()
        shards = partition_users(interactions, 4)
        loads = np.array([degrees[shard].sum() for shard in shards])
        # Round-robin over degree-sorted users keeps loads within the
        # heaviest single user of each other.
        assert loads.max() - loads.min() <= degrees.max()

    def test_deterministic(self, dataset):
        first = partition_users(dataset.train, 3)
        second = partition_users(dataset.train, 3)
        for left, right in zip(first, second):
            np.testing.assert_array_equal(left, right)

    def test_more_shards_than_active_users_rejected(self, dataset):
        with pytest.raises(ValueError):
            partition_users(dataset.train, 10_000)


class TestBatcherUserSubset:
    def test_batches_only_draw_subset_users(self, dataset):
        interactions = dataset.train
        shards = partition_users(interactions, 3)
        for sampling in ("frequency", "uniform"):
            for shard in shards:
                batcher = TripletBatcher(interactions, batch_size=32,
                                         user_sampling=sampling,
                                         user_subset=shard, random_state=0)
                members = set(shard.tolist())
                for batch in batcher.epoch():
                    assert set(batch.users.tolist()) <= members
                    # The per-user negative guarantee still holds.
                    for user, negative in zip(batch.users, batch.negatives):
                        assert (int(user), int(negative)) not in interactions

    def test_epoch_lengths_sum_to_about_serial(self, dataset):
        interactions = dataset.train
        full = TripletBatcher(interactions, batch_size=32, random_state=0)
        shards = partition_users(interactions, 4)
        shard_batches = sum(
            TripletBatcher(interactions, batch_size=32, user_subset=shard,
                           random_state=0).n_batches_per_epoch()
            for shard in shards)
        assert full.n_batches_per_epoch() <= shard_batches
        assert shard_batches <= full.n_batches_per_epoch() + 4

    def test_empty_and_out_of_range_subsets_rejected(self, dataset):
        with pytest.raises(ValueError):
            TripletBatcher(dataset.train, user_subset=np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            TripletBatcher(dataset.train, user_subset=np.array([-1]))
        with pytest.raises(ValueError):
            TripletBatcher(dataset.train,
                           user_subset=np.array([dataset.train.n_users]))

    def test_subset_of_inactive_users_rejected(self, dataset):
        degrees = dataset.train.user_degrees()
        inactive = np.flatnonzero(degrees == 0)
        if inactive.size == 0:
            pytest.skip("synthetic dataset has no inactive users")
        with pytest.raises(ValueError):
            TripletBatcher(dataset.train, user_subset=inactive[:1])


class TestScatterRowsStrategies:
    """The dense span-space and compact unique-row strategies agree bitwise."""

    def _both_strategies(self, indices, grads):
        span_result = scatter_rows(indices, *grads)
        # Shift the ids far past the dense threshold: same duplicate
        # structure and input order, so the compact strategy must produce
        # the same sums for the shifted rows.
        shifted = indices + _DENSE_SCATTER_MAX_ROWS + 1
        unique_result = scatter_rows(shifted, *grads)
        return span_result, unique_result

    @pytest.mark.parametrize("seed", range(5))
    def test_bitwise_equal_across_threshold(self, seed):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, 700))
        span = int(rng.integers(1, 400))
        indices = rng.integers(0, span, size=size).astype(np.int64)
        grads = [rng.standard_normal((size, 32)) * 10.0 ** rng.integers(-6, 6),
                 rng.standard_normal((size, 3)),
                 rng.standard_normal(size)]
        (rows_a, *sums_a), (rows_b, *sums_b) = self._both_strategies(indices, grads)
        np.testing.assert_array_equal(rows_b - (_DENSE_SCATTER_MAX_ROWS + 1),
                                      rows_a)
        for left, right in zip(sums_a, sums_b):
            np.testing.assert_array_equal(left, right)

    @pytest.mark.parametrize("span", [7, 2048, 2049, 60_000])
    def test_matches_add_at_reference(self, span):
        rng = np.random.default_rng(span)
        indices = rng.integers(0, span, size=500).astype(np.int64)
        grad = rng.standard_normal((500, 16))
        rows, summed = scatter_rows(indices, grad)
        dense = np.zeros((span, 16))
        np.add.at(dense, indices, grad)
        np.testing.assert_array_equal(rows, np.unique(indices))
        np.testing.assert_allclose(summed, dense[rows], rtol=1e-12, atol=1e-12)

    def test_preserves_grad_trailing_shape(self):
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 10, size=40).astype(np.int64)
        grad3d = rng.standard_normal((40, 4, 5))
        rows, summed = scatter_rows(indices, grad3d)
        assert summed.shape == (rows.size, 4, 5)
        dense = np.zeros((10, 4, 5))
        np.add.at(dense, indices, grad3d)
        np.testing.assert_allclose(summed, dense[rows], rtol=1e-12, atol=1e-12)


class TestRuntimeLogging:
    def test_verbose_baseline_fit_restores_logger_level(self, dataset):
        import logging

        logger = logging.getLogger("repro.baselines")
        assert logger.level == logging.NOTSET
        CML(embedding_dim=8, n_epochs=1, batch_size=64, random_state=0,
            verbose=True).fit(dataset)
        assert logger.level == logging.NOTSET
        assert logger.getEffectiveLevel() == logging.WARNING
