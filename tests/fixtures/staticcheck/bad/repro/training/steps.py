"""Fixture: Hogwild-unsafe mutation inside a fused training step."""


def _fused_step(network, optimizer, grads, rows):
    # Rebinding the table loses concurrent shard writes: line 6
    network.user_embeddings.weight.data = (
        network.user_embeddings.weight.data - 0.1 * grads)
    optimizer.step()  # whole-table dense pass in a fused step: line 8
