"""Fixture: dtype-less allocations in a hot-kernel module path."""

import numpy as np


def accumulate(n_rows, dim):
    buffer = np.zeros((n_rows, dim))       # missing dtype=: line 7
    offsets = np.arange(n_rows)            # missing dtype=: line 8
    return buffer, offsets
