"""Fixture: pickle-capable IO inside the serving package."""

import pickle  # pickle import: line 3

import numpy as np


def load_artifact(path):
    return np.load(path)  # np.load without allow_pickle=False: line 9


def load_sidecar(path):
    with open(path, "rb") as handle:
        return pickle.load(handle)
