"""Fixture: non-atomic writes inside the serving package."""

import json

import numpy as np


def save_manifest(path, payload):
    with open(path, "w", encoding="utf-8") as handle:  # bare write: line 9
        handle.write(json.dumps(payload))


def save_tensors(path, arrays):
    np.savez_compressed(path, **arrays)  # direct np writer: line 14


def save_note(path, text):
    path.write_text(text)  # pathlib in-place write: line 18
