"""Fixture: every RNG-DISCIPLINE violation shape in one library module."""

import numpy as np


def shuffle_interactions(items):
    np.random.seed(0)          # global-state seeding: line 7
    np.random.shuffle(items)   # global-state draw: line 8
    return items


def make_stream():
    return np.random.default_rng(0)  # raw default_rng in library code: line 13
