"""Fixture: a timing gate without the slow marker (not collected by pytest:
the filename deliberately avoids the ``test_*.py`` pattern)."""

import time


def test_speedup():
    start = time.perf_counter()
    do_work = sum(range(100))
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0 and do_work >= 0
