"""Fixture: violations waived by per-line suppression comments."""

import numpy as np


def legacy_shuffle(items):
    np.random.shuffle(items)  # repro: ignore[RNG-DISCIPLINE]
    return items


def legacy_seed():
    np.random.seed(0)  # repro: ignore
