"""Fixture: the same timing gate, properly slow-marked."""

import time

import pytest


@pytest.mark.slow
def test_speedup():
    start = time.perf_counter()
    do_work = sum(range(100))
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0 and do_work >= 0
