"""Fixture: serving writes staged through the atomic writer."""

import json

import numpy as np

from repro.utils.io import atomic_write


def save_manifest(path, payload):
    with atomic_write(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload))


def save_tensors(path, arrays):
    with atomic_write(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_manifest(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.loads(handle.read())
