"""Fixture: pickle-free serving IO."""

import numpy as np


def load_artifact(path):
    return np.load(path, allow_pickle=False)
