"""Fixture: RNG handled through the blessed repro.utils.rng surface."""

from repro.utils.rng import ensure_rng, spawn_generators


def shuffle_interactions(items, random_state=None):
    rng = ensure_rng(random_state)
    rng.shuffle(items)
    return items


def make_streams(random_state, n_children):
    return spawn_generators(random_state, n_children)
