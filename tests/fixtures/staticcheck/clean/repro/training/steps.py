"""Fixture: Hogwild-safe in-place row updates in a fused training step."""


def _fused_step(network, optimizer, grads, rows):
    optimizer.step_rows(network.user_embeddings.weight, rows, grads)
