"""Fixture: hot-kernel allocations with explicit dtypes."""

import numpy as np


def accumulate(n_rows, dim):
    buffer = np.zeros((n_rows, dim), dtype=np.float64)
    offsets = np.arange(n_rows, dtype=np.int64)
    return buffer, offsets
