"""Tests for the experiment runners and registry.

Runners are exercised with deliberately tiny parameter sets (one dataset, few
models) so the whole suite stays fast; the benchmark harness runs them at the
"quick"/"full" scales.
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    ModelZoo,
    experiment_scale,
    format_table,
    get_experiment,
    list_experiments,
)
from repro.experiments import table1_stats, table2_overall, table3_dimensions
from repro.experiments import table4_ablation, hyperparams, case_study


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "metric"], [["x", 0.12345], ["longer", 1.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.1234" in text or "0.1235" in text

    def test_result_helpers(self):
        result = ExperimentResult(
            experiment_id="tX", title="demo", headers=["model", "score"],
            rows=[["A", 0.5], ["B", 0.7]],
        )
        assert result.column("score") == [0.5, 0.7]
        assert result.row_by("model", "B") == ["B", 0.7]
        with pytest.raises(KeyError):
            result.row_by("model", "C")
        assert "tX" in result.to_text()


class TestRegistryAndZoo:
    def test_every_paper_artifact_registered(self):
        assert set(list_experiments()) == {
            "table1", "table2", "table3", "table4", "fig5", "fig6", "fig7", "tables5-6"
        }

    def test_get_experiment_returns_callable(self):
        for experiment_id in list_experiments():
            assert callable(get_experiment(experiment_id))
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_scale_presets(self):
        quick = experiment_scale("quick")
        full = experiment_scale("full")
        assert quick.n_epochs_multifacet < full.n_epochs_multifacet
        with pytest.raises(KeyError):
            experiment_scale("huge")

    def test_zoo_creates_all_table2_models(self):
        zoo = ModelZoo(scale="quick", random_state=0)
        for name in ModelZoo.TABLE2_MODELS:
            model = zoo.create(name)
            assert model.name == name

    def test_zoo_rejects_unknown_model_and_bad_overrides(self):
        zoo = ModelZoo(scale="quick")
        with pytest.raises(KeyError):
            zoo.create("SVD++")
        with pytest.raises(ValueError):
            zoo.create("BPR", n_facets=2)

    def test_zoo_overrides_apply_to_mars(self):
        zoo = ModelZoo(scale="quick")
        model = zoo.create("MARS", n_facets=5, lambda_facet=0.1)
        assert model.config.n_facets == 5
        assert model.config.lambda_facet == 0.1


class TestTable1:
    def test_reports_all_six_datasets(self):
        result = table1_stats.run()
        assert result.experiment_id == "table1"
        assert len(result.rows) == 6
        assert result.row_by("dataset", "ciao")[1] == 7_000  # paper user count

    def test_density_ordering_matches_paper(self):
        result = table1_stats.run()
        density = {row[0]: row[-1] for row in result.rows}
        assert density["ml-1m"] > density["bookx"]


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2_overall.run(scale="quick", datasets=["delicious"],
                                  models=["Popularity", "CML", "MARS"], random_state=0)

    def test_row_per_dataset_model_pair(self, result):
        assert len(result.rows) == 3
        assert set(result.column("model")) == {"Popularity", "CML", "MARS"}

    def test_metrics_in_unit_interval(self, result):
        for metric in ["hr@10", "hr@20", "ndcg@10", "ndcg@20"]:
            assert all(0.0 <= value <= 1.0 for value in result.column(metric))

    def test_hr20_not_lower_than_hr10(self, result):
        for row in result.rows:
            hr10 = row[result.headers.index("hr@10")]
            hr20 = row[result.headers.index("hr@20")]
            assert hr20 >= hr10 - 1e-9

    def test_improvements_metadata_present(self, result):
        improvements = result.metadata["improvements_over_best_baseline"]
        assert "delicious" in improvements
        assert "MARS_hr@10_improvement" in improvements["delicious"]

    def test_multifacet_model_beats_single_space_cml(self, result):
        mars = result.row_by("model", "MARS")
        cml = result.row_by("model", "CML")
        ndcg_index = result.headers.index("ndcg@10")
        assert mars[ndcg_index] > cml[ndcg_index]


class TestTable3:
    def test_dimension_sweep_structure(self):
        result = table3_dimensions.run(scale="quick", dataset_name="delicious",
                                       dimensions=[8], n_facets=2, random_state=0)
        models = result.column("model")
        assert models.count("MARS") == 1
        assert models.count("TransCF") == 1
        assert models.count("SML") == 1
        mars_row = result.row_by("model", "MARS")
        assert mars_row[result.headers.index("k")] == 2


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4_ablation.run(scale="quick", datasets=["delicious"],
                                   facet_counts=[1, 2], random_state=0)

    def test_rows_cover_all_facet_counts(self, result):
        assert result.column("K") == [1, 2]

    def test_cml_reference_constant_across_k(self, result):
        cml_values = result.column("CML")
        assert cml_values[0] == pytest.approx(cml_values[1])

    def test_improvement_columns_consistent(self, result):
        for row in result.rows:
            cml = row[result.headers.index("CML")]
            mar = row[result.headers.index("MAR")]
            imp1 = row[result.headers.index("Imp1_%")]
            assert imp1 == pytest.approx(100.0 * (mar / cml - 1.0), abs=0.01)


class TestHyperparameterSweeps:
    def test_lambda_pull_sweep(self):
        result = hyperparams.run_lambda_pull(scale="quick", datasets=["delicious"],
                                             lambdas=[0.0, 0.1], random_state=0)
        assert result.experiment_id == "fig5"
        assert result.column("lambda_pull") == [0.0, 0.1]
        assert all(0.0 <= v <= 1.0 for v in result.column("mars_ndcg@10"))

    def test_lambda_facet_sweep(self):
        result = hyperparams.run_lambda_facet(scale="quick", datasets=["delicious"],
                                              lambdas=[0.01], random_state=0)
        assert result.experiment_id == "fig6"
        assert len(result.rows) == 1
        baseline = result.column("best_baseline_ndcg@10")[0]
        assert 0.0 <= baseline <= 1.0


class TestCaseStudy:
    def test_fig7_separation_scores(self):
        result = case_study.run_case_study(scale="quick", dataset_name="delicious",
                                           random_state=0)
        models = result.column("model")
        assert models == ["CML", "MAR", "MARS"]
        n_spaces = dict(zip(models, result.column("n_spaces")))
        assert n_spaces["CML"] == 1
        assert n_spaces["MARS"] > 1
        assert all(v > 0 for v in result.column("mean_separation"))

    def test_profiles_tables(self):
        result = case_study.run_profiles(scale="quick", dataset_name="delicious",
                                         n_users=2, random_state=0)
        tables = result.column("table")
        assert "V" in tables and "VI" in tables
        assert sum(1 for t in tables if t == "VI") == 2
