"""The static invariant checker and the runtime Hogwild auditor.

Two halves:

* ``repro.analysis.static`` — the repo-wide **self-check** (the tier-1
  lint gate: ``src``/``tests``/``benchmarks`` must carry zero violations),
  plus per-rule behaviour against the deliberately-violating corpus under
  ``tests/fixtures/staticcheck/`` (excluded from directory walks, linted
  here by explicit path), suppression comments, path scoping and the CLI.
* :class:`repro.training.loop.HogwildWriteAuditor` — zero cross-shard
  collisions on user tables for a real sharded fit, a raise on a synthetic
  overlapping-shard model, and the ``REPRO_AUDIT`` environment switch.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.static import (
    Violation,
    all_rules,
    check_paths,
    check_source,
    get_rule,
    iter_python_files,
)
from repro.analysis.static.cli import main as lint_main
from repro.autograd.module import Parameter
from repro.autograd.optim import SGD
from repro.baselines.cml import CML
from repro.core import MARS
from repro.data import load_benchmark
from repro.data.batching import TripletBatcher
from repro.data.interactions import InteractionMatrix
from repro.training import HogwildAuditError, TrainingLoop

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "staticcheck"


def _violations(path, rule_id=None):
    rules = [get_rule(rule_id)] if rule_id else None
    return check_paths([path], rules)


# --------------------------------------------------------------------- #
# the tier-1 gate: the shipped tree is clean
# --------------------------------------------------------------------- #
class TestSelfCheck:
    def test_repository_is_clean(self):
        violations = check_paths([REPO_ROOT / "src", REPO_ROOT / "tests",
                                  REPO_ROOT / "benchmarks"])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_fixture_corpus_is_excluded_from_directory_walks(self):
        walked = list(iter_python_files([REPO_ROOT / "tests"]))
        assert not any("staticcheck" in p.parts for p in walked)
        # ...but explicit file paths always lint (that is how this module
        # reaches the corpus at all).
        explicit = FIXTURES / "bad" / "repro" / "sampling.py"
        assert list(iter_python_files([explicit])) == [explicit]

    def test_five_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        assert set(ids) >= {"RNG-DISCIPLINE", "DTYPE-DISCIPLINE",
                            "PICKLE-FREE-IO", "HOGWILD-SAFETY", "SLOW-MARKER",
                            "ATOMIC-IO"}


# --------------------------------------------------------------------- #
# each rule catches its fixture violation at the right position
# --------------------------------------------------------------------- #
class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id, relpath, lines", [
        ("RNG-DISCIPLINE", "repro/sampling.py", [7, 8, 13]),
        ("DTYPE-DISCIPLINE", "repro/core/fused.py", [7, 8]),
        ("PICKLE-FREE-IO", "repro/serving/loader.py", [3, 9]),
        ("HOGWILD-SAFETY", "repro/training/steps.py", [6, 8]),
        ("SLOW-MARKER", "tests/timing_case.py", [7]),
        ("ATOMIC-IO", "repro/serving/writer.py", [9, 14, 18]),
    ])
    def test_bad_fixture_flagged(self, rule_id, relpath, lines):
        path = FIXTURES / "bad" / relpath
        found = _violations(path, rule_id)
        assert [v.line for v in found] == lines
        assert all(v.rule_id == rule_id and v.path == str(path)
                   for v in found)

    @pytest.mark.parametrize("relpath", [
        "repro/sampling.py",
        "repro/core/fused.py",
        "repro/serving/loader.py",
        "repro/training/steps.py",
        "tests/timing_case.py",
        "repro/serving/writer.py",
    ])
    def test_clean_fixture_passes(self, relpath):
        assert _violations(FIXTURES / "clean" / relpath) == []

    def test_bad_fixtures_fail_only_their_own_rule(self):
        # The corpus is minimal: every violation in a bad fixture belongs to
        # the rule the fixture exercises, so rules do not bleed into each
        # other's snippets.
        expected = {
            "repro/sampling.py": {"RNG-DISCIPLINE"},
            "repro/core/fused.py": {"DTYPE-DISCIPLINE"},
            "repro/serving/loader.py": {"PICKLE-FREE-IO"},
            "repro/training/steps.py": {"HOGWILD-SAFETY"},
            "tests/timing_case.py": {"SLOW-MARKER"},
            "repro/serving/writer.py": {"ATOMIC-IO"},
        }
        for relpath, rule_ids in expected.items():
            found = _violations(FIXTURES / "bad" / relpath)
            assert {v.rule_id for v in found} == rule_ids, relpath


# --------------------------------------------------------------------- #
# suppression comments
# --------------------------------------------------------------------- #
class TestSuppression:
    def test_suppressed_fixture_is_clean(self):
        assert _violations(FIXTURES / "suppressed" / "repro" / "sampling.py") == []

    def test_targeted_suppression_waives_only_named_rule(self):
        source = "import numpy as np\n" \
                 "np.random.seed(0)  # repro: ignore[DTYPE-DISCIPLINE]\n"
        found = check_source(source, "repro/sampling.py")
        assert [v.rule_id for v in found] == ["RNG-DISCIPLINE"]

    def test_bare_suppression_waives_every_rule(self):
        source = "import numpy as np\n" \
                 "np.random.seed(0)  # repro: ignore\n"
        assert check_source(source, "repro/sampling.py") == []

    def test_suppression_only_covers_its_own_line(self):
        source = "import numpy as np\n" \
                 "np.random.seed(0)  # repro: ignore[RNG-DISCIPLINE]\n" \
                 "np.random.seed(1)\n"
        found = check_source(source, "repro/sampling.py")
        assert [(v.rule_id, v.line) for v in found] == [("RNG-DISCIPLINE", 3)]


# --------------------------------------------------------------------- #
# scoping: the same code is legal outside a rule's jurisdiction
# --------------------------------------------------------------------- #
class TestScoping:
    def test_dtype_rule_only_covers_hot_modules(self):
        source = "import numpy as np\nbuffer = np.zeros((4, 4))\n"
        assert check_source(source, "repro/core/fused.py") != []
        assert check_source(source, "repro/eval/metrics.py") == []

    def test_pickle_rule_only_covers_serving_and_io(self):
        source = "import pickle\n"
        assert check_source(source, "repro/serving/loader.py") != []
        assert check_source(source, "repro/utils/io.py") != []
        assert check_source(source, "repro/experiments/cache.py") == []

    def test_rng_default_rng_allowed_outside_library(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert check_source(source, "tests/test_something_else.py") == []
        assert check_source(source, "repro/utils/rng.py") == []
        assert check_source(source, "repro/data/batching.py") != []

    def test_hogwild_rule_only_covers_step_functions(self):
        rebind = "def load_state_dict(self, state):\n" \
                 "    self.weight.data = state\n"
        assert check_source(rebind, "repro/autograd/module.py") == []
        inside = "def step_rows(self, p, rows, grads):\n" \
                 "    p.data = p.data - grads\n"
        assert check_source(inside, "repro/autograd/optim.py") != []

    def test_slow_rule_ignores_timing_without_asserts(self):
        source = "import time\n" \
                 "def test_report_only():\n" \
                 "    start = time.perf_counter()\n" \
                 "    print(time.perf_counter() - start)\n"
        assert check_source(source, "tests/report_case.py") == []

    def test_atomic_io_only_covers_durable_paths(self):
        source = "def save(path, text):\n    path.write_text(text)\n"
        assert check_source(source, "repro/serving/exporter.py") != []
        assert check_source(source, "repro/training/checkpoint.py") != []
        assert check_source(source, "repro/eval/metrics.py") == []

    def test_atomic_io_exempts_the_atomic_writer_itself(self):
        inside = "def atomic_write(path):\n" \
                 "    path.write_bytes(b'staged')\n"
        assert check_source(inside, "repro/utils/io.py") == []
        staged = "import numpy as np\n" \
                 "from repro.utils.io import atomic_write\n" \
                 "def save(path, arrays):\n" \
                 "    with atomic_write(path, 'wb') as handle:\n" \
                 "        np.savez_compressed(handle, **arrays)\n"
        assert check_source(staged, "repro/serving/exporter.py") == []
        read_mode = "def load(path):\n" \
                    "    with open(path, 'rb') as handle:\n" \
                    "        return handle.read()\n"
        assert check_source(read_mode, "repro/serving/exporter.py") == []

    def test_syntax_error_becomes_parse_error_violation(self):
        found = check_source("def broken(:\n", "repro/broken.py")
        assert [v.rule_id for v in found] == ["PARSE-ERROR"]


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCli:
    def test_clean_tree_exits_zero(self):
        assert lint_main([str(REPO_ROOT / "src" / "repro" / "utils")]) == 0

    def test_violations_exit_nonzero_with_position(self, capsys):
        path = FIXTURES / "bad" / "repro" / "sampling.py"
        assert lint_main([str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:7:5: RNG-DISCIPLINE" in out

    def test_missing_path_exits_two(self, capsys):
        assert lint_main([str(REPO_ROOT / "no" / "such" / "dir")]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out

    def test_rule_selection(self):
        path = FIXTURES / "bad" / "repro" / "sampling.py"
        assert lint_main(["--rules", "DTYPE-DISCIPLINE", str(path)]) == 0
        assert lint_main(["--rules", "RNG-DISCIPLINE", str(path)]) == 1


# --------------------------------------------------------------------- #
# the runtime Hogwild write auditor
# --------------------------------------------------------------------- #
class _OverlappingShardModel:
    """Stub model whose every step writes user row 0, whatever the shard.

    With ``n_shards >= 2`` both shards hit the same user-partitioned row,
    which is exactly the disjointness breach the auditor must turn into a
    :class:`HogwildAuditError`.
    """

    name = "overlap-stub"

    def __init__(self, interactions):
        self.loss_history_ = []
        self.random_state = 0
        self._table = Parameter(np.zeros((interactions.n_users, 4),
                                         dtype=np.float64))

    def make_batcher(self, interactions, *, user_subset=None,
                     random_state=None):
        return TripletBatcher(interactions, batch_size=8,
                              user_subset=user_subset,
                              random_state=random_state)

    def make_optimizer(self):
        return SGD([self._table], lr=0.1)

    def train_step(self, batch, optimizer):
        rows = np.zeros(1, dtype=np.int64)
        optimizer.step_rows(self._table, rows,
                            np.ones((1, 4), dtype=np.float64))
        return 0.0

    def _on_epoch_start(self, epoch, interactions):
        pass


def _small_interactions(n_users=16, n_items=12, seed=0):
    rng = np.random.default_rng(seed)
    users = np.repeat(np.arange(n_users), 3)
    items = rng.integers(0, n_items, users.size)
    return InteractionMatrix(n_users, n_items, users, items)


class TestHogwildAuditor:
    def test_sharded_fit_reports_zero_user_collisions(self, monkeypatch):
        # REPRO_AUDIT reaches the loop the models build internally, so a
        # stock fit() is auditable without a code change.
        monkeypatch.setenv("REPRO_AUDIT", "1")
        dataset = load_benchmark("delicious", random_state=0)
        model = MARS(n_facets=3, embedding_dim=8, n_epochs=2, batch_size=64,
                     engine="fused", executor="sharded", n_shards=4,
                     random_state=0).fit(dataset)
        loop = model.runtime_
        assert loop.audit is True and len(loop.reports) == 2
        for report in loop.reports:
            assert report.audit is not None
            user_tables = {name: entry for name, entry in report.audit.items()
                           if entry["kind"] == "user"}
            assert user_tables, "expected user-partitioned tables in audit"
            for entry in user_tables.values():
                assert entry["cross_shard_collisions"] == 0

    def test_overlapping_shards_raise(self):
        interactions = _small_interactions()
        model = _OverlappingShardModel(interactions)
        loop = TrainingLoop(model, interactions, executor="sharded",
                            n_shards=2, audit=True)
        with pytest.raises(HogwildAuditError, match="cross-shard row"):
            loop.run(1)

    def test_auditor_does_not_change_numerics(self):
        interactions = _small_interactions()
        fits = []
        for audit in (False, True):
            model = CML(embedding_dim=8, n_epochs=2, batch_size=32,
                        engine="fused", random_state=0)
            loop = TrainingLoop(model, interactions, audit=audit)
            model._train_interactions = interactions
            model.network = model._build(interactions)
            model._post_step()
            model.loss_history_ = []
            loop.run(2)
            fits.append(model)
        np.testing.assert_array_equal(fits[0].loss_history_,
                                      fits[1].loss_history_)
        np.testing.assert_array_equal(
            fits[0].network.state_dict()["user_embeddings.weight"],
            fits[1].network.state_dict()["user_embeddings.weight"])

    def test_env_variable_enables_audit(self, monkeypatch):
        interactions = _small_interactions()
        monkeypatch.setenv("REPRO_AUDIT", "1")
        loop = TrainingLoop(_OverlappingShardModel(interactions), interactions)
        assert loop.audit is True
        monkeypatch.setenv("REPRO_AUDIT", "0")
        loop = TrainingLoop(_OverlappingShardModel(interactions), interactions)
        assert loop.audit is False
        # An explicit argument beats the environment.
        monkeypatch.setenv("REPRO_AUDIT", "1")
        loop = TrainingLoop(_OverlappingShardModel(interactions), interactions,
                            audit=False)
        assert loop.audit is False

    def test_serial_audit_populates_report(self):
        interactions = _small_interactions()
        model = _OverlappingShardModel(interactions)
        loop = TrainingLoop(model, interactions, audit=True)
        reports = loop.run(1)
        # One shard cannot collide with itself, even writing row 0 always.
        audit = reports[0].audit
        assert audit is not None
        (entry,) = audit.values()
        assert entry == {"kind": "user", "rows_written": 1,
                         "cross_shard_collisions": 0, "dense_updates": 0}
