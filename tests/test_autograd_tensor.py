"""Unit tests for the Tensor class: forward values and backward gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad


class TestTensorBasics:
    def test_wraps_data_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_promotes_nested_tensor(self):
        inner = Tensor([1.0, 2.0])
        outer = Tensor(inner)
        assert np.array_equal(outer.data, inner.data)

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_item_on_vector_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_detach_breaks_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_requires_grad_false_by_default(self):
        assert not Tensor([1.0]).requires_grad

    def test_zero_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


class TestArithmeticForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert np.allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0, 2.0]) + 1.0
        assert np.allclose(out.data, [2.0, 3.0])

    def test_radd(self):
        out = 1.0 + Tensor([1.0, 2.0])
        assert np.allclose(out.data, [2.0, 3.0])

    def test_sub(self):
        out = Tensor([3.0]) - Tensor([1.0])
        assert np.allclose(out.data, [2.0])

    def test_rsub(self):
        out = 5.0 - Tensor([1.0, 2.0])
        assert np.allclose(out.data, [4.0, 3.0])

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        assert np.allclose(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([8.0]) / Tensor([2.0])
        assert np.allclose(out.data, [4.0])

    def test_rtruediv(self):
        out = 8.0 / Tensor([2.0, 4.0])
        assert np.allclose(out.data, [4.0, 2.0])

    def test_neg(self):
        out = -Tensor([1.0, -2.0])
        assert np.allclose(out.data, [-1.0, 2.0])

    def test_pow(self):
        out = Tensor([2.0, 3.0]) ** 2
        assert np.allclose(out.data, [4.0, 9.0])

    def test_pow_non_scalar_raises(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        out = a @ b
        assert np.allclose(out.data, np.array([[19.0, 22.0], [43.0, 50.0]]))


class TestBackwardGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [4.0, 5.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor([8.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-2.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 3).sum().backward()
        assert np.allclose(a.grad, [27.0])

    def test_matmul_backward(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3, 4)
        assert np.allclose(a.grad, b.data.sum(axis=1))
        assert np.allclose(b.grad, np.tile(a.data.sum(axis=0)[:, None], (1, 4)))

    def test_broadcast_add_backward(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 4)))
        assert np.allclose(b.grad, np.full(4, 3.0))

    def test_broadcast_mul_backward(self):
        a = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        b = Tensor(np.full((1, 3), 5.0), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, np.full((2, 3), 5.0))
        assert np.allclose(b.grad, np.full((1, 3), 4.0))

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 2.0).sum().backward()
        assert np.allclose(a.grad, [4.0, 4.0])

    def test_shared_subexpression_counts_both_paths(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        loss = (b + b).sum()
        loss.backward()
        assert np.allclose(a.grad, [6.0])

    def test_backward_on_non_scalar_requires_grad_arg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2.0
        with pytest.raises(RuntimeError):
            out.backward()
        out.backward(np.array([1.0, 1.0]))
        assert np.allclose(a.grad, [2.0, 2.0])

    def test_backward_on_no_grad_tensor_raises(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()


class TestReductionsAndShapes:
    def test_sum_axis(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=0)
        assert np.allclose(out.data, [3.0, 5.0, 7.0])
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean(self):
        a = Tensor(np.arange(4, dtype=float), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        out = a.mean(axis=1)
        assert np.allclose(out.data, [1.0, 1.0])

    def test_reshape_roundtrip_gradient(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        out = a.reshape(2, 3)
        (out * out).sum().backward()
        assert np.allclose(a.grad, 2 * a.data)

    def test_transpose(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        out = a.T
        assert out.shape == (3, 2)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_gather_rows_forward(self):
        weight = Tensor(np.arange(12, dtype=float).reshape(4, 3))
        out = weight.gather_rows(np.array([0, 2]))
        assert np.allclose(out.data, [[0, 1, 2], [6, 7, 8]])

    def test_gather_rows_backward_scatter_add(self):
        weight = Tensor(np.zeros((4, 3)), requires_grad=True)
        out = weight.gather_rows(np.array([1, 1, 3]))
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[1] = 2.0
        expected[3] = 1.0
        assert np.allclose(weight.grad, expected)

    def test_getitem_backward(self):
        a = Tensor(np.arange(5, dtype=float), requires_grad=True)
        out = a[np.array([0, 0, 4])]
        out.sum().backward()
        assert np.allclose(a.grad, [2.0, 0.0, 0.0, 0.0, 1.0])

    def test_stack(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_concatenate(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2.0).sum().backward()
        assert np.allclose(a.grad, np.full((2, 2), 2.0))
        assert np.allclose(b.grad, np.full((3, 2), 2.0))


class TestNonlinearities:
    def test_exp_log_roundtrip(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a.exp().log()
        assert np.allclose(out.data, a.data)

    def test_exp_backward(self):
        a = Tensor([0.0, 1.0], requires_grad=True)
        a.exp().sum().backward()
        assert np.allclose(a.grad, np.exp(a.data))

    def test_log_backward(self):
        a = Tensor([2.0, 4.0], requires_grad=True)
        a.log().sum().backward()
        assert np.allclose(a.grad, 1.0 / a.data)

    def test_sqrt(self):
        a = Tensor([4.0, 9.0], requires_grad=True)
        out = a.sqrt()
        assert np.allclose(out.data, [2.0, 3.0])
        out.sum().backward()
        assert np.allclose(a.grad, [0.25, 1.0 / 6.0])

    def test_tanh_backward(self):
        a = Tensor([0.5], requires_grad=True)
        a.tanh().sum().backward()
        assert np.allclose(a.grad, 1 - np.tanh(0.5) ** 2)

    def test_sigmoid_range(self):
        a = Tensor([-100.0, 0.0, 100.0])
        out = a.sigmoid()
        assert np.all(out.data >= 0) and np.all(out.data <= 1)

    def test_relu(self):
        a = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        out = a.relu()
        assert np.allclose(out.data, [0.0, 0.0, 2.0])
        out.sum().backward()
        assert np.allclose(a.grad, [0.0, 0.0, 1.0])

    def test_clip_min(self):
        a = Tensor([-2.0, 0.5], requires_grad=True)
        out = a.clip_min(0.0)
        assert np.allclose(out.data, [0.0, 0.5])
        out.sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])

    def test_abs(self):
        a = Tensor([-3.0, 2.0], requires_grad=True)
        out = a.abs()
        assert np.allclose(out.data, [3.0, 2.0])
        out.sum().backward()
        assert np.allclose(a.grad, [-1.0, 1.0])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        out = a * 2.0
        assert out.requires_grad

    def test_new_tensor_inside_no_grad_has_no_grad(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad
