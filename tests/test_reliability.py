"""The fault-tolerance contract, exercised under deterministic fault injection.

Everything here runs in tier-1: no wall-clock assertions, no sleeps-as-
synchronisation.  Failure timing comes from :class:`FaultInjector` (exact
call counting, seeded corruption, hand-operated :class:`Gate` blocking) and
circuit-breaker time from an injectable fake clock, so the suite is exactly
as deterministic as the happy-path tests.

Covered contracts (see ``ROADMAP.md``, "Reliability contract"):

* the injector itself — nth/times call counting, the ``REPRO_FAULTS``
  grammar, seeded byte corruption, activation nesting, thread safety;
* the circuit breaker state machine (trip, fail-fast, half-open probe);
* serving — deadlines, bounded-queue load shedding, per-model circuit
  breaking, graceful degradation to a registered fallback, micro-batch
  error propagation to every coalesced waiter, ``health()``;
* durable artifacts — atomic writes (a crash mid-publish never touches the
  destination), embedded digests (truncated / bit-flipped / stale-digest /
  wrong-format-version files all raise :class:`ArtifactIntegrityError`,
  and ``publish_path`` never evicts a good version with a bad file);
* crash-safe training — periodic retained checkpoints, resume-from-last-
  good, and the kill-mid-epoch test proving a resumed seeded serial run is
  **bitwise identical** to an uninterrupted one.
"""

import threading
import time

import numpy as np
import pytest

from repro import (
    ModelRegistry,
    Query,
    RecommenderService,
    ServingArtifact,
)
from repro.baselines.bpr import BPR
from repro.baselines.cml import CML
from repro.baselines.popularity import Popularity
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.reliability import (
    ArtifactIntegrityError,
    CheckpointError,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    FaultInjector,
    InjectedFault,
    ServiceOverloadedError,
    get_injector,
    parse_fault_spec,
)
from repro.training import CheckpointManager
from repro.utils.io import (
    array_digest,
    atomic_write,
    load_arrays,
    load_json,
    pack_scalar,
    save_arrays,
    save_json,
)


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=60, n_items=90, interactions_per_user=9.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


@pytest.fixture(scope="module")
def primary(dataset):
    return CML(embedding_dim=8, n_epochs=2, batch_size=64,
               random_state=0).fit(dataset).export_serving()


@pytest.fixture(scope="module")
def fallback(dataset):
    return Popularity().fit(dataset).export_serving()


class FakeClock:
    """Injectable monotonic clock for breaker tests (no real waiting)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------------- #
# FaultInjector
# --------------------------------------------------------------------------- #
class TestFaultInjector:
    def test_nth_and_times_are_exact(self):
        injector = FaultInjector()
        injector.fail("site", nth=3, times=2)
        injector.fire("site")
        injector.fire("site")
        with pytest.raises(InjectedFault):
            injector.fire("site")
        with pytest.raises(InjectedFault):
            injector.fire("site")
        injector.fire("site")  # the window has passed
        assert injector.calls("site") == 5

    def test_fail_every_call_from_nth_on(self):
        injector = FaultInjector()
        injector.fail("site", nth=2)
        injector.fire("site")
        for _ in range(3):
            with pytest.raises(InjectedFault):
                injector.fire("site")

    def test_custom_error_instance(self):
        injector = FaultInjector()
        injector.fail("site", error=OSError("disk on fire"))
        with pytest.raises(OSError, match="disk on fire"):
            injector.fire("site")

    def test_sites_are_independent(self):
        injector = FaultInjector()
        injector.fail("a")
        injector.fire("b")  # no fault configured here
        with pytest.raises(InjectedFault):
            injector.fire("a")
        assert injector.calls("a") == 1 and injector.calls("b") == 1

    def test_clear_and_reset_counters(self):
        injector = FaultInjector()
        injector.fail("site")
        injector.clear("site")
        injector.fire("site")
        assert injector.calls("site") == 1
        injector.reset_counters()
        assert injector.calls("site") == 0

    def test_corruption_is_seeded_and_always_damaging(self):
        payload = bytes(range(200)) * 3
        outputs = []
        for _ in range(2):
            injector = FaultInjector(seed=7)
            injector.corrupt("site", n_bytes=4)
            outputs.append(injector.corrupt_bytes("site", payload))
        assert outputs[0] == outputs[1]  # reproducible damage
        assert outputs[0] != payload     # non-zero XOR masks guarantee change
        assert len(outputs[0]) == len(payload)

    def test_corruption_passthrough_without_spec(self):
        injector = FaultInjector()
        payload = b"untouched"
        assert injector.corrupt_bytes("site", payload) == payload
        assert injector.corrupt_bytes("site", b"") == b""

    def test_validation(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="nth"):
            injector.fail("s", nth=0)
        with pytest.raises(ValueError, match="times"):
            injector.fail("s", times=0)
        with pytest.raises(ValueError, match="non-negative"):
            injector.delay("s", -1.0)
        with pytest.raises(ValueError, match="n_bytes"):
            injector.corrupt("s", 0)

    def test_activation_nesting_and_teardown(self):
        assert get_injector() is None
        outer, inner = FaultInjector(), FaultInjector()
        with outer.activate():
            assert get_injector() is outer
            with inner.activate():
                assert get_injector() is inner
            assert get_injector() is outer
        assert get_injector() is None

    def test_gate_blocks_until_released(self):
        injector = FaultInjector()
        gate = injector.block("site", times=1)
        passed = threading.Event()

        def faulted_call():
            injector.fire("site")
            passed.set()

        thread = threading.Thread(target=faulted_call)
        thread.start()
        assert gate.wait_blocked(timeout=5.0)
        assert not passed.is_set()  # parked at the gate
        gate.release()
        thread.join(timeout=5.0)
        assert passed.is_set() and not thread.is_alive()
        injector.fire("site")  # times=1: later calls pass freely

    def test_thread_safe_counting(self):
        injector = FaultInjector()
        threads = [threading.Thread(
            target=lambda: [injector.fire("site") for _ in range(100)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert injector.calls("site") == 800


class TestFaultSpecGrammar:
    def test_fail_with_nth_and_times(self):
        injector = parse_fault_spec("site=fail@3x2")
        injector.fire("site")
        injector.fire("site")
        with pytest.raises(InjectedFault):
            injector.fire("site")
        with pytest.raises(InjectedFault):
            injector.fire("site")
        injector.fire("site")

    def test_multiple_entries_and_separators(self):
        injector = parse_fault_spec("a=fail; b=corrupt:4, c=delay:0.0")
        with pytest.raises(InjectedFault):
            injector.fire("a")
        assert injector.corrupt_bytes("b", b"x" * 64) != b"x" * 64
        injector.fire("c")  # zero-second delay: counted, no effect

    def test_bad_entries_rejected(self):
        with pytest.raises(ValueError, match="site=kind"):
            parse_fault_spec("just-a-site")
        with pytest.raises(ValueError, match="unknown kind"):
            parse_fault_spec("site=explode")
        with pytest.raises(ValueError, match="unknown kind"):
            parse_fault_spec("site=block")  # needs a live Gate handle

    def test_environment_injector(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "env.site=fail@1x1")
        injector = get_injector()
        assert injector is not None
        with pytest.raises(InjectedFault):
            injector.fire("env.site")
        assert get_injector() is injector  # cached per value
        monkeypatch.delenv("REPRO_FAULTS")
        assert get_injector() is None

    def test_explicit_activation_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "env.site=fail")
        explicit = FaultInjector()
        with explicit.activate():
            assert get_injector() is explicit


# --------------------------------------------------------------------------- #
# CircuitBreaker
# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else keeps failing fast
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.snapshot()["opens"] == 2
        clock.advance(5.0)  # the timeout restarts from the failed probe
        assert breaker.allow()

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        assert breaker.snapshot() == {"state": "closed",
                                      "consecutive_failures": 1, "opens": 0}

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout_s"):
            CircuitBreaker(reset_timeout_s=-1.0)


# --------------------------------------------------------------------------- #
# serving: deadlines
# --------------------------------------------------------------------------- #
class TestDeadlines:
    def test_query_deadline_validation(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            Query(users=[0], k=5, deadline_ms=0)
        with pytest.raises(ValueError, match="deadline_ms"):
            Query(users=[0], k=5, deadline_ms=-3.0)

    def test_recommend_deadline_validation(self, primary):
        service = RecommenderService(primary, max_wait_ms=0)
        with pytest.raises(ValueError, match="deadline_ms"):
            service.recommend(0, k=5, deadline_ms=0)

    def test_slow_scorer_misses_query_deadline(self, primary):
        service = RecommenderService(primary, max_wait_ms=0)
        injector = FaultInjector()
        injector.delay("serving.scorer", 0.05)
        with injector.activate():
            with pytest.raises(DeadlineExceededError, match="deadline"):
                service.query(Query(users=[0, 1], k=5, deadline_ms=1.0))
        assert service.stats["deadline_exceeded"] == 1

    def test_slow_scorer_misses_recommend_deadline(self, primary):
        service = RecommenderService(primary, max_wait_ms=0, cache_size=0)
        injector = FaultInjector()
        injector.delay("serving.scorer", 0.05)
        with injector.activate():
            with pytest.raises(DeadlineExceededError, match="deadline"):
                service.recommend(3, k=5, deadline_ms=1.0)
        assert service.stats["deadline_exceeded"] == 1

    def test_generous_deadline_is_met(self, primary):
        service = RecommenderService(primary, max_wait_ms=0)
        row = service.recommend(3, k=5, deadline_ms=60_000.0)
        np.testing.assert_array_equal(
            row, service.recommend_batch([3], k=5)[0])
        result = service.query(Query(users=[3], k=5, deadline_ms=60_000.0))
        np.testing.assert_array_equal(result.items[0], row)
        assert service.stats["deadline_exceeded"] == 0


# --------------------------------------------------------------------------- #
# serving: load shedding
# --------------------------------------------------------------------------- #
class TestLoadShedding:
    def test_max_queue_validation(self, primary):
        with pytest.raises(ValueError, match="max_queue"):
            RecommenderService(primary, max_queue=0)

    def test_full_queue_sheds_instead_of_queueing(self, primary):
        service = RecommenderService(primary, max_queue=2, max_wait_ms=0,
                                     cache_size=0)
        injector = FaultInjector()
        gate = injector.block("serving.scorer", times=1)
        with injector.activate():
            # The leader drains itself into a batch and parks at the gate.
            leader = threading.Thread(target=service.recommend,
                                      args=(0,), kwargs={"k": 5})
            leader.start()
            assert gate.wait_blocked(timeout=5.0)
            # Two followers fill the admission queue behind the stuck leader.
            followers = [threading.Thread(target=service.recommend,
                                          args=(user,), kwargs={"k": 5})
                         for user in (1, 2)]
            for thread in followers:
                thread.start()
            for _ in range(1000):
                if service.health()["queue_depth"] >= 2:
                    break
                time.sleep(0.005)
            assert service.health()["queue_depth"] == 2
            # The next arrival is refused at the door, not queued.
            with pytest.raises(ServiceOverloadedError, match="queue is full"):
                service.recommend(3, k=5)
            assert service.stats["shed"] == 1
            gate.release()
            leader.join(timeout=10.0)
            for thread in followers:
                thread.join(timeout=10.0)
        assert not leader.is_alive()
        assert not any(thread.is_alive() for thread in followers)
        assert service.health()["queue_depth"] == 0
        # Shed requests never block later traffic.
        service.recommend(3, k=5)


# --------------------------------------------------------------------------- #
# serving: circuit breaking and graceful degradation
# --------------------------------------------------------------------------- #
class TestCircuitBreaking:
    def test_breaker_trips_and_fails_fast(self, primary):
        clock = FakeClock()
        service = RecommenderService(primary, failure_threshold=2,
                                     reset_timeout_s=10.0, clock=clock,
                                     max_wait_ms=0)
        injector = FaultInjector()
        injector.fail("serving.scorer", times=2)
        with injector.activate():
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    service.recommend_batch([0, 1], k=5)
            scorer_calls = injector.calls("serving.scorer")
            with pytest.raises(CircuitOpenError, match="open"):
                service.recommend_batch([0, 1], k=5)
            # Fail-fast: the scorer was never reached.
            assert injector.calls("serving.scorer") == scorer_calls
            health = service.health()
            assert health["circuits"]["default"]["state"] == "open"
            assert health["circuits"]["default"]["opens"] == 1
            # Past the reset timeout a half-open probe (fault exhausted)
            # succeeds and closes the circuit.
            clock.advance(10.0)
            service.recommend_batch([0, 1], k=5)
        assert service.health()["circuits"]["default"]["state"] == "closed"

    def test_open_circuit_with_fallback_degrades(self, primary, fallback):
        clock = FakeClock()
        service = RecommenderService(primary, failure_threshold=1,
                                     reset_timeout_s=30.0, clock=clock,
                                     max_wait_ms=0)
        service.register_fallback(fallback)
        injector = FaultInjector()
        injector.fail("serving.scorer", times=1)
        with injector.activate():
            first = service.query(Query(users=[0, 1], k=5))
            assert first.degraded
            # The breaker is now open; the service keeps answering from the
            # fallback without touching the broken scorer.
            scorer_calls = injector.calls("serving.scorer")
            second = service.query(Query(users=[0, 1], k=5))
            assert second.degraded
            assert injector.calls("serving.scorer") == scorer_calls
        assert service.stats["degraded"] == 2
        assert service.health()["circuits"]["default"]["state"] == "open"
        assert service.health()["fallbacks"] == ["default"]


class TestGracefulDegradation:
    def test_scorer_failure_answers_from_fallback(self, primary, fallback):
        service = RecommenderService(primary, max_wait_ms=0)
        service.register_fallback(fallback)
        injector = FaultInjector()
        injector.fail("serving.scorer", times=1)
        query = Query(users=[2, 5], k=5)
        with injector.activate():
            degraded = service.query(query)
        assert degraded.degraded
        np.testing.assert_array_equal(degraded.items,
                                      fallback.query(query).items)
        # The next call reaches the healthy primary again.
        healthy = service.query(query)
        assert not healthy.degraded
        np.testing.assert_array_equal(healthy.items,
                                      primary.query(query).items)
        assert service.stats["degraded"] == 1

    def test_degraded_rows_are_never_cached(self, primary, fallback):
        service = RecommenderService(primary, max_wait_ms=0)
        service.register_fallback(fallback)
        injector = FaultInjector()
        injector.fail("serving.scorer", times=1)
        with injector.activate():
            degraded_row = service.recommend(4, k=5)
        np.testing.assert_array_equal(
            degraded_row, fallback.query(Query(users=[4], k=5)).items[0])
        # Same request again: a degraded answer must not have been cached,
        # so this is a fresh (healthy) kernel pass, not a cache hit.
        healthy_row = service.recommend(4, k=5)
        assert service.stats["cache_hits"] == 0
        np.testing.assert_array_equal(
            healthy_row, primary.query(Query(users=[4], k=5)).items[0])
        # Healthy rows do get cached.
        service.recommend(4, k=5)
        assert service.stats["cache_hits"] == 1

    def test_without_fallback_the_error_propagates(self, primary):
        service = RecommenderService(primary, max_wait_ms=0)
        injector = FaultInjector()
        injector.fail("serving.scorer", times=1)
        with injector.activate():
            with pytest.raises(InjectedFault):
                service.recommend_batch([0, 1], k=5)

    def test_fallback_requires_artifact(self, primary):
        service = RecommenderService(primary)
        with pytest.raises(TypeError, match="ServingArtifact"):
            service.register_fallback("not-an-artifact")

    def test_health_shape(self, primary, fallback):
        service = RecommenderService(primary, max_queue=16)
        service.register_fallback(fallback)
        health = service.health()
        assert health["queue_depth"] == 0
        assert health["max_queue"] == 16
        assert health["models"] == ["default"]
        assert health["circuits"] == {}  # no traffic yet
        assert health["fallbacks"] == ["default"]


# --------------------------------------------------------------------------- #
# serving: micro-batch error propagation (leader failure regression)
# --------------------------------------------------------------------------- #
class TestMicroBatchErrorPropagation:
    def test_scorer_fault_reaches_every_coalesced_waiter(self, primary):
        service = RecommenderService(primary, max_wait_ms=25.0, cache_size=0)
        injector = FaultInjector()
        injector.fail("serving.scorer")  # every kernel pass raises
        n_threads = 6
        barrier = threading.Barrier(n_threads)
        outcomes = {}

        def worker(user):
            barrier.wait()
            try:
                outcomes[user] = service.recommend(user, k=5)
            except BaseException as error:  # noqa: BLE001 — recorded below
                outcomes[user] = error

        with injector.activate():
            threads = [threading.Thread(target=worker, args=(user,))
                       for user in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
        # Nobody hangs, and every waiter — leader and coalesced followers
        # alike — observes the injected scorer failure.
        assert not any(thread.is_alive() for thread in threads)
        assert sorted(outcomes) == list(range(n_threads))
        for user, outcome in outcomes.items():
            assert isinstance(outcome, InjectedFault), (user, outcome)
        # The queue drained: subsequent healthy traffic is unaffected.
        assert service.health()["queue_depth"] == 0
        row = service.recommend(0, k=5)
        np.testing.assert_array_equal(row, service.recommend_batch([0], k=5)[0])


# --------------------------------------------------------------------------- #
# durable artifacts: atomic writes
# --------------------------------------------------------------------------- #
class TestAtomicWrite:
    def test_writes_and_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "out.txt"
        with atomic_write(target, "w", encoding="utf-8") as handle:
            handle.write("payload")
        assert target.read_text(encoding="utf-8") == "payload"
        assert list(target.parent.iterdir()) == [target]  # no temp residue

    def test_error_in_body_leaves_destination_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_write(target, "w", encoding="utf-8") as handle:
                handle.write("partial")
                raise RuntimeError("boom")
        assert target.read_text() == "original"
        assert list(tmp_path.iterdir()) == [target]

    def test_crash_before_replace_leaves_destination_untouched(self, tmp_path):
        target = tmp_path / "bundle.npz"
        save_arrays(target, {"x": np.arange(5)})
        before = target.read_bytes()
        injector = FaultInjector()
        injector.fail("io.atomic_replace", times=1)
        with injector.activate():
            with pytest.raises(InjectedFault):
                save_arrays(target, {"x": np.arange(99)})
            # Old complete file, no temp litter — and the very next write
            # (fault exhausted) publishes normally.
            assert target.read_bytes() == before
            assert list(tmp_path.iterdir()) == [target]
            save_arrays(target, {"x": np.arange(7)})
        np.testing.assert_array_equal(load_arrays(target)["x"], np.arange(7))

    def test_corrupted_staged_payload_is_caught_at_load(self, tmp_path):
        target = tmp_path / "bundle.npz"
        injector = FaultInjector(seed=3)
        injector.corrupt("io.atomic_write", n_bytes=8)
        with injector.activate():
            save_arrays(target, {"x": np.arange(64, dtype=np.float64)},
                        digests=True)
        with pytest.raises(ArtifactIntegrityError):
            load_arrays(target)

    def test_save_json_is_atomic(self, tmp_path):
        target = tmp_path / "doc.json"
        save_json(target, {"version": 1})
        injector = FaultInjector()
        injector.fail("io.atomic_replace", times=1)
        with injector.activate():
            with pytest.raises(InjectedFault):
                save_json(target, {"version": 2})
        assert load_json(target) == {"version": 1}
        assert list(tmp_path.iterdir()) == [target]


# --------------------------------------------------------------------------- #
# durable artifacts: digests
# --------------------------------------------------------------------------- #
class TestArrayDigests:
    def test_round_trip_with_required_digests(self, tmp_path):
        path = tmp_path / "bundle.npz"
        arrays = {"a": np.arange(12, dtype=np.float64).reshape(3, 4),
                  "b": np.asarray("meta")}
        save_arrays(path, arrays, digests=True)
        loaded = load_arrays(path, digests="require")
        assert sorted(loaded) == ["a", "b"]  # digest entries stripped
        np.testing.assert_array_equal(loaded["a"], arrays["a"])

    def test_require_rejects_undigested_bundles(self, tmp_path):
        path = save_arrays(tmp_path / "plain.npz", {"a": np.arange(3)})
        load_arrays(path)  # auto: fine
        with pytest.raises(ArtifactIntegrityError, match="no integrity digest"):
            load_arrays(path, digests="require")

    def test_digest_mismatch_detected_and_skippable(self, tmp_path):
        path = save_arrays(tmp_path / "bundle.npz",
                           {"a": np.arange(6, dtype=np.float64)}, digests=True)
        with np.load(path, allow_pickle=False) as data:
            entries = {key: data[key].copy() for key in data.files}
        entries["a"] = entries["a"] + 1.0  # tamper; digest left stale
        np.savez_compressed(path, **entries)
        with pytest.raises(ArtifactIntegrityError, match="does not match"):
            load_arrays(path)
        # An explicit skip still reads the (tampered) tensors.
        np.testing.assert_array_equal(load_arrays(path, digests="skip")["a"],
                                      np.arange(6, dtype=np.float64) + 1.0)

    def test_digest_prefix_is_reserved(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_arrays(tmp_path / "x.npz", {"digest.a": np.arange(2)})

    def test_array_digest_covers_dtype_and_shape(self):
        data = np.arange(6, dtype=np.float64)
        assert array_digest(data) != array_digest(data.reshape(2, 3))
        assert array_digest(data) != array_digest(data.astype(np.float32))


# --------------------------------------------------------------------------- #
# durable artifacts: the corruption corpus vs load and publish
# --------------------------------------------------------------------------- #
class TestArtifactCorruption:
    @pytest.fixture()
    def good_path(self, primary, tmp_path):
        return primary.save(tmp_path / "good.npz")

    def _corrupt(self, good_path, tmp_path, kind):
        """Build one corrupted sibling of a valid serving artifact."""
        data = good_path.read_bytes()
        path = tmp_path / f"{kind}.npz"
        if kind == "truncated":
            path.write_bytes(data[:len(data) // 2])
        elif kind == "bit_flipped":
            flipped = bytearray(data)
            flipped[len(flipped) // 2] ^= 0xFF
            path.write_bytes(bytes(flipped))
        elif kind == "wrong_digest":
            with np.load(good_path, allow_pickle=False) as bundle:
                entries = {key: bundle[key].copy() for key in bundle.files}
            name = next(key for key in entries
                        if not key.startswith("digest.")
                        and entries[key].dtype.kind == "f"
                        and entries[key].size)
            entries[name] = entries[name] + 1.0  # stale digest left in place
            np.savez_compressed(path, **entries)
        elif kind == "wrong_version":
            with np.load(good_path, allow_pickle=False) as bundle:
                entries = {key: bundle[key].copy() for key in bundle.files}
            stamped = pack_scalar(99)
            entries["meta.format_version"] = stamped
            entries["digest.meta.format_version"] = pack_scalar(
                array_digest(stamped))  # digests pass; the version must not
            np.savez_compressed(path, **entries)
        else:  # pragma: no cover - test bug
            raise AssertionError(kind)
        return path

    @pytest.mark.parametrize("kind", ["truncated", "bit_flipped",
                                      "wrong_digest", "wrong_version"])
    def test_load_raises_one_clean_error(self, good_path, tmp_path, kind):
        bad = self._corrupt(good_path, tmp_path, kind)
        # Never a raw zipfile/zlib/NumPy/KeyError — one typed error.
        with pytest.raises(ArtifactIntegrityError):
            ServingArtifact.load(bad)

    @pytest.mark.parametrize("kind", ["truncated", "bit_flipped",
                                      "wrong_digest", "wrong_version"])
    def test_publish_path_never_evicts_a_good_version(self, good_path,
                                                      tmp_path, kind):
        registry = ModelRegistry()
        assert registry.publish_path("default", good_path) == 1
        bad = self._corrupt(good_path, tmp_path, kind)
        with pytest.raises(ArtifactIntegrityError):
            registry.publish_path("default", bad)
        assert registry.version("default") == 1
        artifact, _, _ = registry.get("default")
        assert artifact.query(Query(users=[0], k=5)).items.shape == (1, 5)

    def test_service_publish_path_round_trip(self, primary, good_path,
                                             tmp_path):
        service = RecommenderService(registry=ModelRegistry(), max_wait_ms=0)
        service.publish_path("default", good_path)
        np.testing.assert_array_equal(
            service.recommend_batch([0, 1], k=5),
            primary.query(Query(users=[0, 1], k=5)).items)
        bad = self._corrupt(good_path, tmp_path, "truncated")
        with pytest.raises(ArtifactIntegrityError):
            service.publish_path("default", bad)
        service.recommend_batch([0, 1], k=5)  # still serving version 1

    def test_format_version_is_embedded(self, good_path):
        arrays = load_arrays(good_path)
        from repro.serving import ARTIFACT_FORMAT_VERSION
        from repro.utils.io import unpack_scalar
        assert unpack_scalar(arrays["meta.format_version"]) \
            == ARTIFACT_FORMAT_VERSION


# --------------------------------------------------------------------------- #
# crash-safe training checkpoints
# --------------------------------------------------------------------------- #
def _make_model(**overrides):
    settings = dict(embedding_dim=8, n_epochs=4, batch_size=32,
                    random_state=0)
    settings.update(overrides)
    return CML(**settings)


def _batches_per_epoch(dataset):
    """Count ``training.step`` firings of one seeded epoch via the injector."""
    probe = _make_model(n_epochs=1)
    counter = FaultInjector()
    with counter.activate():
        probe.fit(dataset)
    return counter.calls("training.step")


class TestCheckpointManager:
    def test_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path, every_n_epochs=2)
        assert [manager.due(epoch) for epoch in range(5)] \
            == [False, False, True, False, True]
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every_n_epochs=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, retain=0)

    def test_fit_saves_and_prunes(self, dataset, tmp_path):
        model = _make_model(n_epochs=5)
        model.checkpoint = CheckpointManager(tmp_path, every_n_epochs=1,
                                             retain=2)
        model.fit(dataset)
        names = [path.name for path in model.checkpoint.paths()]
        assert names == ["ckpt_epoch_000004.npz", "ckpt_epoch_000005.npz"]

    def test_latest_good_skips_corrupt_newest(self, dataset, tmp_path):
        model = _make_model(n_epochs=3)
        model.checkpoint = CheckpointManager(tmp_path, every_n_epochs=1,
                                             retain=3)
        model.fit(dataset)
        newest = model.checkpoint.paths()[-1]
        newest.write_bytes(newest.read_bytes()[:256])  # torn write
        good_path, arrays = model.checkpoint.latest_good()
        assert good_path.name == "ckpt_epoch_000002.npz"
        assert arrays["meta.epoch"].item() == 2

    def test_no_usable_checkpoint_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(CheckpointError, match="no usable checkpoint"):
            manager.latest_good()
        (tmp_path / "ckpt_epoch_000001.npz").write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="all corrupt"):
            manager.latest_good()

    def test_restore_rejects_wrong_model_class(self, dataset, tmp_path):
        model = _make_model(n_epochs=2)
        model.checkpoint = CheckpointManager(tmp_path)
        model.fit(dataset)
        other = BPR(embedding_dim=8, n_epochs=2, random_state=0)
        with pytest.raises(CheckpointError, match="checkpoints a CML"):
            CheckpointManager(tmp_path).restore(other, dataset)

    def test_restore_rejects_executor_mismatch(self, dataset, tmp_path):
        model = _make_model(n_epochs=2)
        model.checkpoint = CheckpointManager(tmp_path)
        model.fit(dataset)
        sharded = _make_model(n_epochs=2, engine="fused", executor="sharded",
                              n_shards=2)
        with pytest.raises(CheckpointError, match="executor"):
            CheckpointManager(tmp_path).restore(sharded, dataset)


class TestKillMidEpochResume:
    def test_resumed_run_is_bitwise_identical(self, dataset, tmp_path):
        n_epochs, kill_epoch = 4, 3
        batches = _batches_per_epoch(dataset)
        assert batches > 1
        baseline = _make_model(n_epochs=n_epochs).fit(dataset)

        # The doomed run: checkpoint every epoch, then die mid-epoch 3.
        doomed = _make_model(n_epochs=n_epochs)
        doomed.checkpoint = CheckpointManager(tmp_path, every_n_epochs=1,
                                              retain=2)
        injector = FaultInjector()
        injector.fail("training.step",
                      nth=(kill_epoch - 1) * batches + 2, times=1)
        with injector.activate():
            with pytest.raises(InjectedFault):
                doomed.fit(dataset)

        # A fresh process restores the last good checkpoint (epoch 2) and
        # finishes the remaining epochs.
        resumed = _make_model(n_epochs=n_epochs)
        done = CheckpointManager(tmp_path).restore(resumed, dataset)
        assert done == kill_epoch - 1
        resumed.fit_more(n_epochs - done)

        assert resumed.loss_history_ == pytest.approx(baseline.loss_history_,
                                                      abs=0)
        base_params = baseline.get_parameters()
        resumed_params = resumed.get_parameters()
        assert sorted(base_params) == sorted(resumed_params)
        for name, value in base_params.items():
            np.testing.assert_array_equal(value, resumed_params[name],
                                          err_msg=name)

    def test_resume_without_checkpoint_state_raises(self):
        with pytest.raises(RuntimeError, match="must be fitted"):
            _make_model().fit_more(1)

    def test_checkpoint_save_site_is_injectable(self, dataset, tmp_path):
        model = _make_model(n_epochs=2)
        model.checkpoint = CheckpointManager(tmp_path, every_n_epochs=1)
        injector = FaultInjector()
        injector.fail("training.checkpoint", nth=2, times=1)
        with injector.activate():
            with pytest.raises(InjectedFault):
                model.fit(dataset)
        # Epoch 1 was checkpointed before the save of epoch 2 was killed.
        manager = CheckpointManager(tmp_path)
        good_path, arrays = manager.latest_good()
        assert arrays["meta.epoch"].item() == 1


# --------------------------------------------------------------------------- #
# follower takeover (leader dies mid-batch, a queued follower re-elects)
# --------------------------------------------------------------------------- #
class TestFollowerTakeover:
    def test_follower_re_elects_after_leader_crash(self, primary):
        """The leader crashes *between* draining its own request and
        draining the follower's: the follower's poll loop must detect the
        released leadership, elect itself and serve its own request —
        within its deadline, with the exact ``recommend_batch`` answer."""
        service = RecommenderService(primary, max_batch_size=1,
                                     max_wait_ms=0.0)
        original_execute = service._execute
        crashed = threading.Event()

        def crashing_execute(batch):
            if crashed.is_set():
                return original_execute(batch)
            # Hold the leader mid-batch until the follower has queued, so
            # the crash provably orphans a pending request.
            for _ in range(4000):
                with service._cond:
                    if service._pending:
                        break
                time.sleep(0.001)
            else:
                pytest.fail("follower never queued behind the leader")
            crashed.set()
            raise RuntimeError("injected leader crash")

        service._execute = crashing_execute

        leader_outcome = []

        def leader():
            try:
                service.recommend(0, k=5)
            except BaseException as error:  # noqa: BLE001 - recorded for asserts
                leader_outcome.append(error)

        thread = threading.Thread(target=leader)
        thread.start()
        for _ in range(4000):
            with service._cond:
                if service._leader_active:
                    break
            time.sleep(0.001)
        else:
            pytest.fail("leader thread never took leadership")

        # Queued behind the doomed leader; must still be answered in time.
        row = service.recommend(1, k=5, deadline_ms=5000.0)
        thread.join()

        assert len(leader_outcome) == 1
        assert "injected leader crash" in str(leader_outcome[0])
        assert crashed.is_set()
        np.testing.assert_array_equal(
            row, service.recommend_batch([1], k=5)[0])
