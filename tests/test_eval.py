"""Tests for ranking metrics and the leave-one-out evaluation protocol."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.base import BaseRecommender
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.eval import (
    LeaveOneOutEvaluator,
    average_precision_at_k,
    hit_ratio_at_k,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)


class TestMetrics:
    def test_hit_ratio_hit_and_miss(self):
        assert hit_ratio_at_k([3, 1, 2], relevant=1, k=2) == 1.0
        assert hit_ratio_at_k([3, 1, 2], relevant=2, k=2) == 0.0

    def test_hit_ratio_with_set_of_relevant(self):
        assert hit_ratio_at_k([5, 6, 7], relevant={7, 9}, k=3) == 1.0

    def test_ndcg_position_sensitivity(self):
        first = ndcg_at_k([1, 2, 3], relevant=1, k=3)
        third = ndcg_at_k([2, 3, 1], relevant=1, k=3)
        assert first == pytest.approx(1.0)
        assert third == pytest.approx(1.0 / np.log2(4))
        assert first > third

    def test_ndcg_multiple_relevant_perfect_ranking(self):
        assert ndcg_at_k([1, 2, 3, 4], relevant={1, 2}, k=4) == pytest.approx(1.0)

    def test_ndcg_zero_when_missing(self):
        assert ndcg_at_k([4, 5], relevant=1, k=2) == 0.0

    def test_mrr(self):
        assert mean_reciprocal_rank([9, 4, 1], relevant=1) == pytest.approx(1 / 3)
        assert mean_reciprocal_rank([9, 4], relevant=1) == 0.0

    def test_precision_recall(self):
        ranked = [1, 2, 3, 4]
        assert precision_at_k(ranked, {1, 4}, k=2) == pytest.approx(0.5)
        assert recall_at_k(ranked, {1, 4}, k=2) == pytest.approx(0.5)
        assert recall_at_k(ranked, {1, 4}, k=4) == pytest.approx(1.0)

    def test_average_precision(self):
        assert average_precision_at_k([1, 5, 2], relevant={1, 2}, k=3) == pytest.approx(
            (1.0 + 2.0 / 3.0) / 2.0
        )

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            hit_ratio_at_k([1], relevant=1, k=0)

    def test_empty_relevant_set_rejected(self):
        with pytest.raises(ValueError):
            ndcg_at_k([1, 2], relevant=set(), k=2)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           k=st.integers(min_value=1, max_value=20))
    def test_property_metrics_bounded(self, seed, k):
        rng = np.random.default_rng(seed)
        ranked = rng.permutation(30).tolist()
        relevant = int(rng.integers(0, 30))
        for metric in (hit_ratio_at_k, ndcg_at_k, precision_at_k, recall_at_k,
                       average_precision_at_k):
            value = metric(ranked, relevant, k)
            assert 0.0 <= value <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_hr_at_full_length_is_one(self, seed):
        rng = np.random.default_rng(seed)
        ranked = rng.permutation(15).tolist()
        relevant = int(rng.integers(0, 15))
        assert hit_ratio_at_k(ranked, relevant, k=15) == 1.0


class _OracleModel(BaseRecommender):
    """Scores the dataset's held-out test item highest for every user."""

    name = "oracle"

    def __init__(self, dataset):
        super().__init__()
        self._dataset = dataset

    def _fit(self, interactions):
        pass

    def score_items(self, user, items):
        items = np.asarray(items)
        target = self._dataset.held_out_item(int(user), "test")
        return (items == target).astype(float)


class _RandomModel(BaseRecommender):
    name = "random"

    def __init__(self, seed=0):
        super().__init__()
        self._rng = np.random.default_rng(seed)

    def _fit(self, interactions):
        pass

    def score_items(self, user, items):
        return self._rng.random(len(items))


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=60, n_items=90, interactions_per_user=10.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


class TestLeaveOneOutEvaluator:
    def test_oracle_gets_perfect_scores(self, dataset):
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=50, random_state=0)
        oracle = _OracleModel(dataset).fit(dataset)
        result = evaluator.evaluate(oracle)
        assert result["hr@10"] == pytest.approx(1.0)
        assert result["ndcg@10"] == pytest.approx(1.0)
        assert result["mrr"] == pytest.approx(1.0)

    def test_random_model_near_chance(self, dataset):
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=50, random_state=0)
        result = evaluator.evaluate(_RandomModel().fit(dataset))
        assert abs(result["hr@10"] - 10.0 / 51.0) < 0.12

    def test_candidates_exclude_training_items(self, dataset):
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=30, random_state=0)
        for user in evaluator.users[:10]:
            candidates = evaluator.candidate_items(user)
            seen = set(dataset.train.items_of_user(user).tolist())
            target = dataset.held_out_item(user, "test")
            assert candidates[0] == target
            assert not seen.intersection(candidates[1:].tolist())
            assert len(set(candidates.tolist())) == len(candidates)

    def test_validation_split_uses_validation_items(self, dataset):
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=20, split="validation",
                                         random_state=0)
        user = evaluator.users[0]
        assert evaluator.candidate_items(user)[0] == dataset.held_out_item(user, "validation")

    def test_max_users_caps_evaluation(self, dataset):
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=20, max_users=7,
                                         random_state=0)
        assert len(evaluator.users) == 7

    def test_same_seed_same_candidates(self, dataset):
        a = LeaveOneOutEvaluator(dataset, n_negatives=25, random_state=5)
        b = LeaveOneOutEvaluator(dataset, n_negatives=25, random_state=5)
        for user in a.users:
            assert np.array_equal(a.candidate_items(user), b.candidate_items(user))

    def test_unfitted_model_rejected(self, dataset):
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=10, random_state=0)
        with pytest.raises(RuntimeError):
            evaluator.evaluate(_RandomModel())

    def test_wrong_score_shape_rejected(self, dataset):
        class BadModel(_RandomModel):
            def score_items(self, user, items):
                return np.zeros(3)

        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=10, random_state=0)
        with pytest.raises(ValueError):
            evaluator.evaluate(BadModel().fit(dataset))

    def test_evaluate_many_shares_candidates(self, dataset):
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=30, random_state=0)
        results = evaluator.evaluate_many({
            "oracle": _OracleModel(dataset).fit(dataset),
            "random": _RandomModel().fit(dataset),
        })
        assert set(results) == {"oracle", "random"}
        assert results["oracle"]["ndcg@10"] > results["random"]["ndcg@10"]

    def test_per_user_metrics_exposed(self, dataset):
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=20, random_state=0)
        result = evaluator.evaluate(_OracleModel(dataset).fit(dataset))
        assert result.per_user["hr@10"].shape == (result.n_users,)
        assert result.as_row(["hr@10", "ndcg@10"]) == [1.0, 1.0]
