"""Tests for the embedding visualisation and profiling analyses."""

import numpy as np
import pytest

from repro.analysis import (
    cluster_separation,
    facet_category_profiles,
    pca_coordinates,
    user_facet_profiles,
    visualize_item_embeddings,
)
from repro.core import MARS
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=60, n_items=80, n_facets=3,
                             interactions_per_user=14.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


@pytest.fixture(scope="module")
def fitted_mars(dataset):
    return MARS(n_facets=3, embedding_dim=16, n_epochs=10, batch_size=128,
                random_state=0).fit(dataset)


class TestPCA:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        coords = pca_coordinates(rng.normal(size=(30, 8)), n_components=2)
        assert coords.shape == (30, 2)

    def test_components_capped_by_dimension(self):
        coords = pca_coordinates(np.random.default_rng(0).normal(size=(10, 2)),
                                 n_components=5)
        assert coords.shape == (10, 2)

    def test_first_component_has_max_variance(self):
        rng = np.random.default_rng(1)
        data = np.column_stack([rng.normal(scale=10.0, size=100),
                                rng.normal(scale=0.1, size=100)])
        coords = pca_coordinates(data)
        assert coords[:, 0].var() > coords[:, 1].var()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pca_coordinates(np.zeros(5))


class TestClusterSeparation:
    def test_well_separated_clusters_score_high(self):
        a = np.random.default_rng(0).normal(size=(20, 3)) + np.array([10, 0, 0])
        b = np.random.default_rng(1).normal(size=(20, 3)) - np.array([10, 0, 0])
        embeddings = np.vstack([a, b])
        labels = np.array([0] * 20 + [1] * 20)
        assert cluster_separation(embeddings, labels) > 3.0

    def test_mixed_clusters_score_near_one(self):
        embeddings = np.random.default_rng(0).normal(size=(40, 3))
        labels = np.random.default_rng(1).integers(0, 2, size=40)
        assert 0.7 < cluster_separation(embeddings, labels) < 1.3

    def test_requires_two_categories(self):
        with pytest.raises(ValueError):
            cluster_separation(np.zeros((5, 2)), np.zeros(5))

    def test_requires_aligned_labels(self):
        with pytest.raises(ValueError):
            cluster_separation(np.zeros((5, 2)), np.zeros(4))


class TestVisualizeItemEmbeddings:
    def test_single_space_input(self):
        rng = np.random.default_rng(0)
        viz = visualize_item_embeddings(rng.normal(size=(30, 8)),
                                        rng.integers(0, 3, size=30), "CML")
        assert len(viz.coordinates) == 1
        assert viz.coordinates[0].shape == (30, 2)
        assert len(viz.separation_per_space) == 1

    def test_multi_space_input(self):
        rng = np.random.default_rng(0)
        viz = visualize_item_embeddings(rng.normal(size=(4, 30, 8)),
                                        rng.integers(0, 3, size=30), "MARS")
        assert len(viz.coordinates) == 4
        assert viz.best_separation >= viz.mean_separation - 1e-9

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            visualize_item_embeddings(np.zeros((2, 2, 2, 2)), np.zeros(2))

    def test_works_on_fitted_model(self, fitted_mars, dataset):
        viz = visualize_item_embeddings(fitted_mars.facet_item_embeddings(),
                                        dataset.item_categories, "MARS")
        assert len(viz.coordinates) == 3
        assert all(np.isfinite(score) for score in viz.separation_per_space)


class TestProfiles:
    def test_facet_profiles_structure(self, fitted_mars, dataset):
        profiles = facet_category_profiles(fitted_mars, dataset, top_n=3)
        assert len(profiles) == 3
        for profile in profiles:
            assert len(profile.top_categories) <= 3
            assert all(0.0 <= p <= 1.0 for p in profile.proportions)
            # proportions sorted descending
            assert profile.proportions == sorted(profile.proportions, reverse=True)

    def test_facet_profiles_require_categories(self, fitted_mars, dataset):
        stripped = type(dataset)(
            train=dataset.train,
            validation_items=dataset.validation_items,
            test_items=dataset.test_items,
            name=dataset.name,
            item_categories=None,
        )
        with pytest.raises(ValueError):
            facet_category_profiles(fitted_mars, stripped)

    def test_user_profiles_default_picks_most_active(self, fitted_mars, dataset):
        profiles = user_facet_profiles(fitted_mars, dataset, n_users=2)
        assert len(profiles) == 2
        degrees = dataset.train.user_degrees()
        most_active = int(np.argmax(degrees))
        assert profiles[0].user == most_active
        for profile in profiles:
            assert profile.facet_weights.shape == (3,)
            assert np.isclose(profile.facet_weights.sum(), 1.0)
            assert 0 <= profile.dominant_facet < 3

    def test_user_profiles_explicit_users(self, fitted_mars, dataset):
        profiles = user_facet_profiles(fitted_mars, dataset, users=[5, 7])
        assert [p.user for p in profiles] == [5, 7]
