"""Fused closed-form training engine vs. the autograd reference.

Three layers of evidence that ``engine="fused"`` is an exact, faster drop-in
for the reverse-mode engine:

* gradient parity — the analytic gradients of
  :func:`repro.core.fused.fused_forward_backward` match the autograd
  gradients to ~1e-10 over random configurations (MAR and MARS, λ terms
  on/off, adaptive margins on/off, K = 1..4, duplicate rows in the batch);
* trajectory equivalence — seeded end-to-end training produces identical
  loss curves and final parameters up to float tolerance;
* speed — a fused MARS step is at least 3x faster than an autograd step at
  benchmark-preset shapes.
"""

import time

import numpy as np
import pytest

from repro.core import MAR, MARS, losses
from repro.core._multifacet import _MultiFacetNetwork
from repro.core.fused import fused_forward_backward
from repro.core.spherical import riemannian_update_rows
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.data.batching import TripletBatch


def _make_model(model_cls, n_users, n_items, seed, **config_overrides):
    """Model with a freshly initialised network but no training run."""
    model = model_cls(random_state=seed, **config_overrides)
    config = model.config
    model.network = _MultiFacetNetwork(
        n_users=n_users, n_items=n_items, n_facets=config.n_facets,
        dim=config.embedding_dim, spherical=model._spherical(),
        projection_noise=config.projection_noise, random_state=seed,
    )
    rng = np.random.default_rng(seed)
    # Non-uniform facet logits so the softmax Jacobian is exercised.
    model.network.facet_logits.data = rng.normal(size=(n_users, config.n_facets))
    model.margins_ = rng.uniform(0.1, 0.9, size=n_users)
    return model


def _random_batch(rng, n_users, n_items, size=24):
    users = rng.integers(0, n_users, size=size)
    positives = rng.integers(0, n_items, size=size)
    negatives = rng.integers(0, n_items, size=size)
    # Force the duplicate-row scatter paths: repeated user, item shared
    # between the positive and negative columns.
    users[0] = users[1]
    negatives[2] = positives[3]
    return TripletBatch(users=users, positives=positives, negatives=negatives)


def _fused_step(model, batch):
    network = model.network
    config = model.config
    return fused_forward_backward(
        network.user_embeddings.weight.data,
        network.item_embeddings.weight.data,
        network.user_projections.data,
        network.item_projections.data,
        network.facet_logits.data,
        batch.users, batch.positives, batch.negatives,
        model.margins_[batch.users],
        lambda_pull=config.lambda_pull, lambda_facet=config.lambda_facet,
        alpha=config.alpha, spherical=model._spherical(),
    )


def _densify(shape_like, rows, row_grads):
    dense = np.zeros_like(shape_like)
    dense[rows] = row_grads
    return dense


class TestGradientParity:
    N_USERS, N_ITEMS = 14, 22

    @pytest.mark.parametrize("model_cls", [MAR, MARS])
    @pytest.mark.parametrize("lambda_pull", [0.0, 0.1])
    @pytest.mark.parametrize("lambda_facet", [0.0, 0.01])
    @pytest.mark.parametrize("adaptive_margin", [True, False])
    def test_matches_autograd(self, model_cls, lambda_pull, lambda_facet,
                              adaptive_margin):
        for seed in (0, 1, 2):
            model = _make_model(
                model_cls, self.N_USERS, self.N_ITEMS, seed,
                n_facets=3, embedding_dim=8, lambda_pull=lambda_pull,
                lambda_facet=lambda_facet, adaptive_margin=adaptive_margin,
            )
            if not adaptive_margin:
                model.margins_ = np.full(self.N_USERS, model.config.margin)
            batch = _random_batch(np.random.default_rng(seed + 100),
                                  self.N_USERS, self.N_ITEMS)

            loss = model._autograd_loss(batch)
            model.network.zero_grad()
            loss.backward()
            step = _fused_step(model, batch)

            assert step.loss == pytest.approx(loss.item(), abs=1e-11)
            network = model.network
            np.testing.assert_allclose(
                _densify(network.user_embeddings.weight.data,
                         step.user_rows, step.user_grad),
                network.user_embeddings.weight.grad, rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(
                _densify(network.item_embeddings.weight.data,
                         step.item_rows, step.item_grad),
                network.item_embeddings.weight.grad, rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(
                _densify(network.facet_logits.data,
                         step.user_rows, step.logit_grad),
                network.facet_logits.grad, rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(step.user_projection_grad,
                                       network.user_projections.grad,
                                       rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(step.item_projection_grad,
                                       network.item_projections.grad,
                                       rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("model_cls", [MAR, MARS])
    @pytest.mark.parametrize("n_facets", [1, 2, 4])
    def test_matches_autograd_across_facet_counts(self, model_cls, n_facets):
        model = _make_model(model_cls, self.N_USERS, self.N_ITEMS, 3,
                            n_facets=n_facets, embedding_dim=8)
        batch = _random_batch(np.random.default_rng(7),
                              self.N_USERS, self.N_ITEMS)
        loss = model._autograd_loss(batch)
        model.network.zero_grad()
        loss.backward()
        step = _fused_step(model, batch)
        assert step.loss == pytest.approx(loss.item(), abs=1e-11)
        np.testing.assert_allclose(
            _densify(model.network.user_embeddings.weight.data,
                     step.user_rows, step.user_grad),
            model.network.user_embeddings.weight.grad, rtol=1e-9, atol=1e-12)

    def test_numpy_loss_variants_match_autograd_values(self):
        rng = np.random.default_rng(5)
        pos = rng.normal(size=16)
        neg = rng.normal(size=16)
        margins = rng.uniform(0.1, 0.9, size=16)
        push_value, _, _ = losses.push_loss_numpy(pos, neg, margins)
        from repro.autograd import Tensor
        assert push_value == pytest.approx(
            losses.push_loss(Tensor(pos), Tensor(neg), margins).item(), abs=1e-12)
        pull_value, _ = losses.pull_loss_numpy(pos)
        assert pull_value == pytest.approx(
            losses.pull_loss(Tensor(pos)).item(), abs=1e-12)
        for spherical in (False, True):
            stacked = rng.normal(size=(3, 16, 6))
            value, _ = losses.facet_separating_loss_numpy(
                stacked, alpha=0.3, spherical=spherical)
            reference = losses.facet_separating_loss(
                Tensor(stacked), alpha=0.3, spherical=spherical)
            assert value == pytest.approx(reference.item(), abs=1e-11)


class TestTrajectoryEquivalence:
    @pytest.fixture(scope="class")
    def dataset(self):
        config = SyntheticConfig(n_users=50, n_items=70, n_facets=3,
                                 interactions_per_user=10.0)
        return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()

    @pytest.mark.parametrize("model_cls", [MAR, MARS])
    def test_identical_seeded_loss_curves(self, dataset, model_cls):
        kwargs = dict(n_facets=3, embedding_dim=12, n_epochs=3, batch_size=48,
                      random_state=11)
        fused = model_cls(engine="fused", **kwargs).fit(dataset)
        autograd = model_cls(engine="autograd", **kwargs).fit(dataset)
        np.testing.assert_allclose(fused.loss_history_, autograd.loss_history_,
                                   rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            fused.network.user_embeddings.weight.data,
            autograd.network.user_embeddings.weight.data,
            rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            fused.network.item_embeddings.weight.data,
            autograd.network.item_embeddings.weight.data,
            rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            fused.network.facet_logits.data,
            autograd.network.facet_logits.data,
            rtol=1e-9, atol=1e-9)

    def test_fused_is_the_default_engine(self):
        assert MAR().config.engine == "fused"
        assert MARS().config.engine == "fused"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            MAR(engine="bogus")

    def test_mars_constraints_hold_under_fused_training(self, dataset):
        model = MARS(n_facets=2, embedding_dim=10, n_epochs=2, batch_size=48,
                     random_state=0).fit(dataset)
        norms = np.linalg.norm(model.network.user_embeddings.weight.data, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-8)

    def test_mar_constraints_hold_under_fused_training(self, dataset):
        model = MAR(n_facets=2, embedding_dim=10, n_epochs=2, batch_size=48,
                    random_state=0).fit(dataset)
        norms = np.linalg.norm(model.network.user_embeddings.weight.data, axis=1)
        assert np.all(norms <= 1.0 + 1e-8)

    def test_mar_constraints_cover_never_sampled_rows(self):
        """Rows a sparse run never touches must still satisfy Eq. 11.

        Gaussian init can start outside the unit ball; with row-restricted
        censoring the full table is clipped once at fit start, so items that
        never appear in any batch still end training inside the ball.
        """
        from repro.data import InteractionMatrix
        rng = np.random.default_rng(0)
        users, items = [], []
        for user in range(30):              # interactions confined to items 0-49
            chosen = rng.choice(50, size=6, replace=False)
            users.extend([user] * 6)
            items.extend(chosen.tolist())
        train = InteractionMatrix(30, 200, users, items)
        model = MAR(n_facets=2, embedding_dim=16, n_epochs=1, batch_size=32,
                    random_state=0).fit(train)
        norms = np.linalg.norm(model.network.item_embeddings.weight.data, axis=1)
        assert np.all(norms <= 1.0 + 1e-8)


class TestRowWiseOptimizerHelpers:
    def test_sgd_step_rows_matches_dense_step(self):
        from repro.autograd import Parameter
        from repro.autograd.optim import SGD
        rng = np.random.default_rng(0)
        data = rng.normal(size=(10, 4))
        rows = np.array([1, 4, 7])
        row_grads = rng.normal(size=(3, 4))

        dense = Parameter(data.copy())
        dense.grad = np.zeros_like(data)
        dense.grad[rows] = row_grads
        SGD([dense], lr=0.1).step()

        sparse = Parameter(data.copy())
        SGD([sparse], lr=0.1).step_rows(sparse, rows, row_grads)
        np.testing.assert_array_equal(sparse.data, dense.data)

    def test_sgd_step_rows_rejects_momentum(self):
        from repro.autograd import Parameter
        from repro.autograd.optim import SGD
        parameter = Parameter(np.ones((4, 2)))
        optimizer = SGD([parameter], lr=0.1, momentum=0.5)
        with pytest.raises(ValueError):
            optimizer.step_rows(parameter, np.array([0]), np.ones((1, 2)))

    @pytest.mark.parametrize("calibrate", [True, False])
    def test_riemannian_step_rows_matches_dense_step(self, calibrate):
        from repro.autograd import Parameter
        from repro.autograd.optim import RiemannianSGD
        rng = np.random.default_rng(1)
        data = rng.normal(size=(8, 5))
        data /= np.linalg.norm(data, axis=1, keepdims=True)
        rows = np.array([0, 3, 6])
        row_grads = rng.normal(size=(3, 5))

        dense = Parameter(data.copy(), spherical=True)
        dense.grad = np.zeros_like(data)
        dense.grad[rows] = row_grads
        RiemannianSGD([dense], lr=0.5, calibrate=calibrate).step()

        sparse = Parameter(data.copy(), spherical=True)
        RiemannianSGD([sparse], lr=0.5, calibrate=calibrate).step_rows(
            sparse, rows, row_grads)
        np.testing.assert_array_equal(sparse.data, dense.data)

    def test_riemannian_rows_zero_gradient_is_identity(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(4, 3))
        points /= np.linalg.norm(points, axis=1, keepdims=True)
        updated = riemannian_update_rows(points, np.zeros_like(points), lr=1.0)
        np.testing.assert_array_equal(updated, points)

    def test_riemannian_rows_stay_on_sphere(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(6, 4))
        points /= np.linalg.norm(points, axis=1, keepdims=True)
        updated = riemannian_update_rows(points, rng.normal(size=(6, 4)), lr=2.0)
        np.testing.assert_allclose(np.linalg.norm(updated, axis=1), 1.0,
                                   atol=1e-12)


class TestFusedSpeedup:
    @pytest.mark.slow
    def test_fused_step_at_least_3x_faster_than_autograd(self):
        """Per-step speedup at MARS full-preset shapes (K=4, D=32, B=256).

        The two engines are timed in interleaved best-of rounds so transient
        machine load skews both measurements alike.
        """
        n_users, n_items, steps = 240, 300, 50
        rng = np.random.default_rng(0)
        batches = [
            TripletBatch(users=rng.integers(0, n_users, 256),
                         positives=rng.integers(0, n_items, 256),
                         negatives=rng.integers(0, n_items, 256))
            for _ in range(steps)
        ]

        runners = {}
        for engine in ("fused", "autograd"):
            model = _make_model(MARS, n_users, n_items, 0, n_facets=4,
                                embedding_dim=32, batch_size=256, engine=engine)
            model.margins_ = np.full(n_users, 0.5)
            optimizer = model._make_optimizer(model.network)
            model._train_step(batches[0], optimizer)   # warm-up
            runners[engine] = (model, optimizer)

        best = {"fused": np.inf, "autograd": np.inf}
        for _ in range(5):
            for engine, (model, optimizer) in runners.items():
                start = time.perf_counter()
                for batch in batches:
                    model._train_step(batch, optimizer)
                best[engine] = min(best[engine], time.perf_counter() - start)

        assert best["autograd"] >= 3.0 * best["fused"], (
            f"fused step only {best['autograd'] / best['fused']:.2f}x faster "
            f"({best['fused'] / steps * 1e3:.2f}ms vs "
            f"{best['autograd'] / steps * 1e3:.2f}ms)")
