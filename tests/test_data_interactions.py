"""Tests for the InteractionMatrix container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import InteractionMatrix


@pytest.fixture
def small_matrix():
    #       items: 0  1  2  3
    # user 0:      x     x
    # user 1:      x  x
    # user 2:            x  x
    return InteractionMatrix(
        n_users=3, n_items=4,
        user_indices=[0, 0, 1, 1, 2, 2],
        item_indices=[0, 2, 0, 1, 2, 3],
    )


class TestConstruction:
    def test_shape_and_counts(self, small_matrix):
        assert small_matrix.shape == (3, 4)
        assert small_matrix.n_interactions == 6

    def test_duplicates_are_merged(self):
        m = InteractionMatrix(2, 2, [0, 0, 0], [1, 1, 1])
        assert m.n_interactions == 1

    def test_out_of_range_user_rejected(self):
        with pytest.raises(ValueError):
            InteractionMatrix(2, 2, [5], [0])

    def test_out_of_range_item_rejected(self):
        with pytest.raises(ValueError):
            InteractionMatrix(2, 2, [0], [7])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            InteractionMatrix(2, 2, [0, 1], [0])

    def test_non_positive_dimensions_rejected(self):
        with pytest.raises(ValueError):
            InteractionMatrix(0, 2, [], [])

    def test_from_pairs(self):
        m = InteractionMatrix.from_pairs([(0, 1), (2, 3)])
        assert m.shape == (3, 4)
        assert (0, 1) in m and (2, 3) in m

    def test_from_pairs_empty_rejected(self):
        with pytest.raises(ValueError):
            InteractionMatrix.from_pairs([])

    def test_from_dense(self):
        dense = np.array([[1, 0], [0, 1]])
        m = InteractionMatrix.from_dense(dense)
        assert m.n_interactions == 2
        assert np.array_equal(m.toarray(), dense)

    def test_timestamps_stored(self):
        m = InteractionMatrix(2, 2, [0, 1], [1, 0], timestamps=[5.0, 9.0])
        assert m.has_timestamps
        assert m.timestamp_of(0, 1) == 5.0
        assert m.timestamp_of(1, 1) is None

    def test_timestamp_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            InteractionMatrix(2, 2, [0, 1], [1, 0], timestamps=[5.0])


class TestViews:
    def test_items_of_user(self, small_matrix):
        assert np.array_equal(small_matrix.items_of_user(0), [0, 2])
        assert np.array_equal(small_matrix.items_of_user(2), [2, 3])

    def test_users_of_item(self, small_matrix):
        assert np.array_equal(small_matrix.users_of_item(0), [0, 1])
        assert np.array_equal(small_matrix.users_of_item(3), [2])

    def test_user_degrees(self, small_matrix):
        assert np.array_equal(small_matrix.user_degrees(), [2, 2, 2])

    def test_item_degrees(self, small_matrix):
        assert np.array_equal(small_matrix.item_degrees(), [2, 1, 2, 1])

    def test_contains(self, small_matrix):
        assert (0, 0) in small_matrix
        assert (0, 1) not in small_matrix

    def test_density(self, small_matrix):
        assert small_matrix.density == pytest.approx(6 / 12)

    def test_positive_pairs_roundtrip(self, small_matrix):
        pairs = small_matrix.positive_pairs()
        rebuilt = InteractionMatrix.from_pairs(
            [tuple(p) for p in pairs], n_users=3, n_items=4
        )
        assert np.array_equal(rebuilt.toarray(), small_matrix.toarray())

    def test_statistics_keys(self, small_matrix):
        stats = small_matrix.statistics()
        assert stats["n_users"] == 3
        assert stats["n_interactions"] == 6
        assert stats["density_percent"] == pytest.approx(50.0)


class TestDerived:
    def test_two_hop_neighbourhood_sizes(self, small_matrix):
        # user 0 interacted with items 0 (deg 2) and 2 (deg 2) -> 4
        # user 1 with items 0 (2) and 1 (1) -> 3
        # user 2 with items 2 (2) and 3 (1) -> 3
        assert np.allclose(small_matrix.two_hop_neighbourhood_sizes(), [4, 3, 3])

    def test_without_pairs_removes(self, small_matrix):
        reduced = small_matrix.without_pairs([(0, 0)])
        assert reduced.n_interactions == 5
        assert (0, 0) not in reduced
        # original untouched
        assert (0, 0) in small_matrix

    def test_without_pairs_cannot_empty(self):
        m = InteractionMatrix(1, 1, [0], [0])
        with pytest.raises(ValueError):
            m.without_pairs([(0, 0)])

    def test_without_pairs_preserves_timestamps(self):
        m = InteractionMatrix(2, 2, [0, 0, 1], [0, 1, 1], timestamps=[1.0, 2.0, 3.0])
        reduced = m.without_pairs([(0, 0)])
        assert reduced.timestamp_of(0, 1) == 2.0


@settings(max_examples=30, deadline=None)
@given(
    n_users=st.integers(min_value=1, max_value=20),
    n_items=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_degrees_sum_to_interactions(n_users, n_items, seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, n_users * n_items + 1))
    users = rng.integers(0, n_users, size=n)
    items = rng.integers(0, n_items, size=n)
    m = InteractionMatrix(n_users, n_items, users, items)
    assert m.user_degrees().sum() == m.n_interactions
    assert m.item_degrees().sum() == m.n_interactions
    assert 0 < m.density <= 1.0
