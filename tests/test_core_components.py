"""Tests for the core building blocks: margins, similarity, losses, spherical utils."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.autograd import check_gradients
from repro.core import losses, similarity, spherical
from repro.core.margins import adaptive_margins
from repro.data import InteractionMatrix


class TestAdaptiveMargins:
    def test_formula_matches_eq7(self):
        # 3 users, 4 items; compute by hand.
        m = InteractionMatrix(3, 4, [0, 0, 1, 1, 2, 2], [0, 2, 0, 1, 2, 3])
        margins = adaptive_margins(m, min_margin=0.0, max_margin=1.0)
        two_hop = m.two_hop_neighbourhood_sizes()
        expected = np.clip(1.0 - two_hop / 3.0, 0.0, 1.0)
        assert np.allclose(margins, expected)

    def test_more_adoptive_users_get_smaller_margins(self):
        # user 0 interacts with popular items, user 1 with unpopular ones.
        users = [0, 0, 1, 1] + [2, 3, 4, 5]
        items = [0, 1, 2, 3] + [0, 0, 1, 1]
        m = InteractionMatrix(6, 4, users, items)
        margins = adaptive_margins(m, min_margin=0.0)
        assert margins[0] < margins[1]

    def test_margins_clipped_to_range(self):
        m = InteractionMatrix(2, 3, [0, 0, 0, 1], [0, 1, 2, 0])
        margins = adaptive_margins(m, min_margin=0.2, max_margin=0.9)
        assert np.all(margins >= 0.2) and np.all(margins <= 0.9)

    def test_invalid_clip_range_rejected(self):
        m = InteractionMatrix(2, 2, [0], [0])
        with pytest.raises(ValueError):
            adaptive_margins(m, min_margin=0.8, max_margin=0.2)


class TestSimilarity:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.batch = 6
        self.dim = 5
        self.n_facets = 3
        self.users = rng.normal(size=(self.batch, self.dim))
        self.items = rng.normal(size=(self.batch, self.dim))
        self.proj_u = rng.normal(size=(self.n_facets, self.dim, self.dim))
        self.proj_v = rng.normal(size=(self.n_facets, self.dim, self.dim))
        self.weights = rng.dirichlet(np.ones(self.n_facets), size=self.batch)

    def test_project_facets_shapes(self):
        facets = similarity.project_facets(Tensor(self.users), Tensor(self.proj_u))
        assert len(facets) == self.n_facets
        assert all(f.shape == (self.batch, self.dim) for f in facets)

    def test_numpy_projection_matches_autograd(self):
        autograd_facets = similarity.project_facets(Tensor(self.users), Tensor(self.proj_u))
        numpy_facets = similarity.project_facets_numpy(self.users, self.proj_u)
        for k in range(self.n_facets):
            assert np.allclose(autograd_facets[k].data, numpy_facets[k])

    @pytest.mark.parametrize("spherical_mode", [False, True])
    def test_numpy_similarity_matches_autograd(self, spherical_mode):
        user_facets = similarity.project_facets(Tensor(self.users), Tensor(self.proj_u))
        item_facets = similarity.project_facets(Tensor(self.items), Tensor(self.proj_v))
        autograd_scores = similarity.facet_similarities(
            user_facets, item_facets, spherical_mode
        )
        numpy_scores = similarity.facet_similarities_numpy(
            similarity.project_facets_numpy(self.users, self.proj_u),
            similarity.project_facets_numpy(self.items, self.proj_v),
            spherical_mode,
        )
        assert np.allclose(autograd_scores.data, numpy_scores, atol=1e-8)

    @pytest.mark.parametrize("spherical_mode", [False, True])
    def test_cross_facet_matches_numpy(self, spherical_mode):
        user_facets = similarity.project_facets(Tensor(self.users), Tensor(self.proj_u))
        item_facets = similarity.project_facets(Tensor(self.items), Tensor(self.proj_v))
        scores = similarity.facet_similarities(user_facets, item_facets, spherical_mode)
        combined = similarity.cross_facet_similarity(scores, Tensor(self.weights))
        combined_np = similarity.cross_facet_similarity_numpy(scores.data, self.weights)
        assert np.allclose(combined.data, combined_np)

    def test_euclidean_similarity_is_nonpositive(self):
        user_facets = similarity.project_facets(Tensor(self.users), Tensor(self.proj_u))
        item_facets = similarity.project_facets(Tensor(self.items), Tensor(self.proj_v))
        scores = similarity.facet_similarities(user_facets, item_facets, False)
        assert np.all(scores.data <= 1e-12)

    def test_spherical_similarity_in_unit_range(self):
        user_facets = similarity.project_facets(Tensor(self.users), Tensor(self.proj_u))
        item_facets = similarity.project_facets(Tensor(self.items), Tensor(self.proj_v))
        scores = similarity.facet_similarities(user_facets, item_facets, True)
        assert np.all(scores.data <= 1.0 + 1e-9)
        assert np.all(scores.data >= -1.0 - 1e-9)

    def test_softmax_numpy_rows_sum_to_one(self):
        logits = np.random.default_rng(1).normal(size=(4, 3))
        probs = similarity.softmax_numpy(logits, axis=-1)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_identical_vectors_have_max_similarity(self):
        same = similarity.facet_similarities(
            [Tensor(self.users)], [Tensor(self.users)], True
        )
        assert np.allclose(same.data, 1.0, atol=1e-6)

    def test_cross_facet_gradient_flows(self):
        check_gradients(
            lambda u, v: similarity.cross_facet_similarity(
                similarity.facet_similarities(
                    similarity.project_facets(u, Tensor(self.proj_u)),
                    similarity.project_facets(v, Tensor(self.proj_v)),
                    True,
                ),
                Tensor(self.weights),
            ).sum(),
            [self.users, self.items],
        )


class TestLosses:
    def test_push_loss_zero_when_separated(self):
        loss = losses.push_loss(Tensor([5.0, 5.0]), Tensor([0.0, 0.0]), margins=1.0)
        assert loss.item() == pytest.approx(0.0)

    def test_push_loss_uses_per_user_margins(self):
        pos = Tensor([0.0, 0.0])
        neg = Tensor([0.0, 0.0])
        loose = losses.push_loss(pos, neg, margins=np.array([0.1, 0.1])).item()
        tight = losses.push_loss(pos, neg, margins=np.array([0.9, 0.9])).item()
        assert tight > loose

    def test_pull_loss_decreases_with_similarity(self):
        low = losses.pull_loss(Tensor([0.1, 0.2])).item()
        high = losses.pull_loss(Tensor([0.9, 0.95])).item()
        assert high < low

    def test_facet_separating_single_facet_is_zero(self):
        assert losses.facet_separating_loss([Tensor(np.ones((3, 4)))]).item() == 0.0

    def test_facet_separating_euclidean_prefers_spread_facets(self):
        base = np.random.default_rng(0).normal(size=(10, 4))
        clustered = [Tensor(base), Tensor(base + 1e-3)]
        spread = [Tensor(base), Tensor(base + 10.0)]
        assert (losses.facet_separating_loss(spread).item()
                < losses.facet_separating_loss(clustered).item())

    def test_facet_separating_spherical_prefers_orthogonal(self):
        aligned = [Tensor(np.tile([1.0, 0.0], (5, 1))),
                   Tensor(np.tile([1.0, 0.0], (5, 1)))]
        opposed = [Tensor(np.tile([1.0, 0.0], (5, 1))),
                   Tensor(np.tile([-1.0, 0.0], (5, 1)))]
        assert (losses.facet_separating_loss(opposed, spherical=True).item()
                < losses.facet_separating_loss(aligned, spherical=True).item())

    def test_facet_separating_invalid_alpha(self):
        with pytest.raises(ValueError):
            losses.facet_separating_loss(
                [Tensor(np.ones((2, 2))), Tensor(np.ones((2, 2)))], alpha=0.0
            )

    def test_combined_objective_includes_all_terms(self):
        rng = np.random.default_rng(0)
        pos = Tensor(rng.normal(size=4), requires_grad=False)
        neg = Tensor(rng.normal(size=4))
        facets_u = [Tensor(rng.normal(size=(4, 3))) for _ in range(2)]
        facets_v = [Tensor(rng.normal(size=(4, 3))) for _ in range(2)]
        full = losses.combined_objective(
            pos, neg, 0.5, facets_u, facets_v, lambda_pull=0.5, lambda_facet=0.5
        ).item()
        push_only = losses.combined_objective(
            pos, neg, 0.5, facets_u, facets_v, lambda_pull=0.0, lambda_facet=0.0
        ).item()
        assert full != pytest.approx(push_only)

    def test_push_loss_gradient(self):
        rng = np.random.default_rng(1)
        pos = rng.normal(size=5)
        neg = rng.normal(size=5)
        check_gradients(lambda p, n: losses.push_loss(p, n, margins=0.5), [pos, neg])

    def test_facet_separating_gradient(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4))
        check_gradients(
            lambda x, y: losses.facet_separating_loss([x, y], alpha=0.5), [a, b]
        )


class TestSphericalUtils:
    def test_project_to_sphere_unit_norm(self):
        x = np.random.default_rng(0).normal(size=(10, 6))
        projected = spherical.project_to_sphere(x)
        assert np.allclose(np.linalg.norm(projected, axis=-1), 1.0)

    def test_tangent_projection_is_orthogonal_to_point(self):
        rng = np.random.default_rng(1)
        points = spherical.project_to_sphere(rng.normal(size=(8, 5)))
        grads = rng.normal(size=(8, 5))
        tangent = spherical.tangent_projection(points, grads)
        radial = np.sum(points * tangent, axis=-1)
        assert np.allclose(radial, 0.0, atol=1e-10)

    def test_retract_lands_on_sphere(self):
        rng = np.random.default_rng(2)
        points = spherical.project_to_sphere(rng.normal(size=(4, 3)))
        step = 0.1 * rng.normal(size=(4, 3))
        retracted = spherical.retract(points, step)
        assert np.allclose(np.linalg.norm(retracted, axis=-1), 1.0)

    def test_calibration_factor_range(self):
        rng = np.random.default_rng(3)
        points = spherical.project_to_sphere(rng.normal(size=(20, 6)))
        grads = rng.normal(size=(20, 6))
        factors = spherical.calibration_factor(points, grads)
        assert np.all(factors >= 0.0 - 1e-9)
        assert np.all(factors <= 2.0 + 1e-9)

    def test_geodesic_distance_extremes(self):
        a = np.array([1.0, 0.0])
        assert spherical.geodesic_distance(a, a) == pytest.approx(0.0)
        assert spherical.geodesic_distance(a, -a) == pytest.approx(np.pi)

    def test_vmf_samples_unit_norm(self):
        samples = spherical.sample_vmf(np.array([0.0, 0.0, 1.0]), concentration=5.0,
                                       size=50, random_state=0)
        assert samples.shape == (50, 3)
        assert np.allclose(np.linalg.norm(samples, axis=-1), 1.0)

    def test_vmf_concentration_controls_spread(self):
        mu = np.array([0.0, 0.0, 1.0])
        tight = spherical.sample_vmf(mu, 100.0, 200, random_state=0)
        loose = spherical.sample_vmf(mu, 1.0, 200, random_state=0)
        assert (tight @ mu).mean() > (loose @ mu).mean()

    def test_vmf_zero_concentration_is_uniform(self):
        samples = spherical.sample_vmf(np.array([1.0, 0.0, 0.0]), 0.0, 500, random_state=0)
        assert abs(np.mean(samples @ np.array([1.0, 0.0, 0.0]))) < 0.15

    def test_vmf_invalid_inputs(self):
        with pytest.raises(ValueError):
            spherical.sample_vmf(np.array([1.0]), 1.0, 10)
        with pytest.raises(ValueError):
            spherical.sample_vmf(np.array([1.0, 0.0]), -1.0, 10)

    def test_vmf_log_density_highest_at_mean(self):
        mu = np.array([0.0, 1.0, 0.0])
        at_mean = spherical.vmf_log_density(mu, mu, 3.0)
        away = spherical.vmf_log_density(np.array([1.0, 0.0, 0.0]), mu, 3.0)
        assert at_mean > away


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=100))
def test_property_retraction_always_unit_norm(dim, seed):
    rng = np.random.default_rng(seed)
    points = spherical.project_to_sphere(rng.normal(size=(3, dim)))
    step = rng.normal(size=(3, dim))
    assert np.allclose(np.linalg.norm(spherical.retract(points, step), axis=-1), 1.0)
