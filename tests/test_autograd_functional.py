"""Tests for composite differentiable ops, including finite-difference checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, check_gradients
from repro.autograd import functional as F


def small_arrays(shape):
    return st.lists(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False),
        min_size=int(np.prod(shape)), max_size=int(np.prod(shape)),
    ).map(lambda xs: np.array(xs, dtype=float).reshape(shape))


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 2.0]))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_sigmoid_matches_numpy(self):
        x = np.array([-2.0, 0.0, 3.0])
        out = F.sigmoid(Tensor(x))
        assert np.allclose(out.data, 1 / (1 + np.exp(-x)))

    def test_tanh_matches_numpy(self):
        x = np.array([-1.0, 0.5])
        assert np.allclose(F.tanh(Tensor(x)).data, np.tanh(x))

    def test_softplus_positive_and_stable(self):
        out = F.softplus(Tensor([-1000.0, 0.0, 1000.0]))
        assert np.all(np.isfinite(out.data))
        assert np.all(out.data >= 0.0)
        assert out.data[2] == pytest.approx(1000.0)

    def test_log_sigmoid_stable_for_large_negative(self):
        out = F.log_sigmoid(Tensor([-1000.0]))
        assert np.isfinite(out.data).all()
        assert out.data[0] == pytest.approx(-1000.0)

    def test_softmax_sums_to_one(self):
        out = F.softmax(Tensor([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_logsumexp_matches_scipy_style(self):
        x = np.array([[1.0, 2.0, 3.0], [-1.0, 0.0, 1.0]])
        out = F.logsumexp(Tensor(x), axis=1)
        expected = np.log(np.exp(x).sum(axis=1))
        assert out.shape == (2,)
        assert np.allclose(out.data, expected)


class TestSimilarities:
    def test_squared_euclidean(self):
        a = Tensor([[0.0, 0.0], [1.0, 1.0]])
        b = Tensor([[3.0, 4.0], [1.0, 1.0]])
        out = F.squared_euclidean(a, b, axis=-1)
        assert np.allclose(out.data, [25.0, 0.0])

    def test_euclidean(self):
        out = F.euclidean(Tensor([[0.0, 0.0]]), Tensor([[3.0, 4.0]]), axis=-1)
        assert np.allclose(out.data, [5.0], atol=1e-5)

    def test_cosine_identical_vectors(self):
        a = Tensor([[1.0, 2.0, 3.0]])
        assert F.cosine_similarity(a, a).data == pytest.approx(1.0, abs=1e-6)

    def test_cosine_orthogonal_vectors(self):
        a = Tensor([[1.0, 0.0]])
        b = Tensor([[0.0, 1.0]])
        assert F.cosine_similarity(a, b).data == pytest.approx(0.0, abs=1e-6)

    def test_cosine_opposite_vectors(self):
        a = Tensor([[1.0, 0.0]])
        b = Tensor([[-2.0, 0.0]])
        assert F.cosine_similarity(a, b).data == pytest.approx(-1.0, abs=1e-6)

    def test_cosine_scale_invariance(self):
        a = np.array([[0.3, -0.7, 0.2]])
        b = np.array([[1.5, 0.4, -0.9]])
        c1 = F.cosine_similarity(Tensor(a), Tensor(b)).data
        c2 = F.cosine_similarity(Tensor(10 * a), Tensor(0.1 * b)).data
        assert np.allclose(c1, c2)

    def test_normalize_unit_norm(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        out = F.normalize(x, axis=-1)
        assert np.allclose(np.linalg.norm(out.data, axis=-1), 1.0, atol=1e-6)

    def test_dot(self):
        out = F.dot(Tensor([[1.0, 2.0]]), Tensor([[3.0, 4.0]]), axis=-1)
        assert np.allclose(out.data, [11.0])


class TestLosses:
    def test_hinge_loss_zero_when_margin_satisfied(self):
        loss = F.hinge_loss(Tensor([10.0]), Tensor([0.0]), margin=1.0)
        assert loss.item() == pytest.approx(0.0)

    def test_hinge_loss_positive_when_violated(self):
        loss = F.hinge_loss(Tensor([0.0]), Tensor([0.0]), margin=1.0)
        assert loss.item() == pytest.approx(1.0)

    def test_hinge_loss_per_example_margin(self):
        loss = F.hinge_loss(Tensor([0.0, 0.0]), Tensor([0.0, 0.0]),
                            margin=np.array([0.5, 1.5]))
        assert loss.item() == pytest.approx(1.0)

    def test_bpr_loss_decreases_with_separation(self):
        tight = F.bpr_loss(Tensor([0.1]), Tensor([0.0])).item()
        wide = F.bpr_loss(Tensor([5.0]), Tensor([0.0])).item()
        assert wide < tight

    def test_binary_cross_entropy_perfect_prediction(self):
        loss = F.binary_cross_entropy(Tensor([1.0 - 1e-9, 1e-9]), np.array([1.0, 0.0]))
        assert loss.item() < 1e-6

    def test_mse_loss(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_l2_regularization(self):
        reg = F.l2_regularization(Tensor([[1.0, 2.0]]), Tensor([3.0]))
        assert reg.item() == pytest.approx(14.0)

    def test_l2_regularization_empty_raises(self):
        with pytest.raises(ValueError):
            F.l2_regularization()


class TestGradCheck:
    """Finite-difference certification of the ops used by the models."""

    def test_matmul_chain(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        check_gradients(lambda x, y: (x @ y).sum(), [a, b])

    def test_softmax_weighted_sum(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(2, 3))
        values = rng.normal(size=(2, 3))
        check_gradients(
            lambda lg, v: (F.softmax(lg, axis=-1) * v).sum(), [logits, values]
        )

    def test_cosine_similarity_gradient(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(4, 5))
        check_gradients(lambda x, y: F.cosine_similarity(x, y, axis=-1).sum(), [a, b])

    def test_squared_euclidean_gradient(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(4, 3))
        check_gradients(lambda x, y: F.squared_euclidean(x, y, axis=-1).sum(), [a, b])

    def test_hinge_loss_gradient(self):
        rng = np.random.default_rng(4)
        pos = rng.normal(size=(6,))
        neg = rng.normal(size=(6,))
        check_gradients(lambda p, n: F.hinge_loss(p, n, margin=0.5), [pos, neg])

    def test_bpr_loss_gradient(self):
        rng = np.random.default_rng(5)
        pos = rng.normal(size=(6,))
        neg = rng.normal(size=(6,))
        check_gradients(F.bpr_loss, [pos, neg])

    def test_log_sigmoid_gradient(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(5,))
        check_gradients(lambda t: F.log_sigmoid(t).sum(), [x])

    def test_normalize_gradient(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(3, 4)) + 0.5
        check_gradients(lambda t: (F.normalize(t, axis=-1) ** 2 * 0.5).sum(), [x])

    def test_gather_rows_gradient(self):
        rng = np.random.default_rng(8)
        weight = rng.normal(size=(5, 3))
        idx = np.array([0, 2, 2, 4])

        def fn(w):
            return (w.gather_rows(idx) ** 2).sum()

        check_gradients(fn, [weight])

    @settings(max_examples=25, deadline=None)
    @given(small_arrays((2, 3)))
    def test_softmax_gradient_property(self, x):
        check_gradients(lambda t: (F.softmax(t, axis=-1) ** 2).sum(), [x])

    @settings(max_examples=25, deadline=None)
    @given(small_arrays((4,)), small_arrays((4,)))
    def test_mul_sum_gradient_property(self, a, b):
        check_gradients(lambda x, y: (x * y).sum(), [a, b])
