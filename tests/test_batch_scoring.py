"""Regression tests for the batched scoring & vectorised evaluation subsystem.

The contract under test: for every model, ``score_items_batch`` and the
batched ``LeaveOneOutEvaluator`` path must reproduce the per-user reference
path — identical metrics, identical rankings, scores equal to floating-point
rounding — while being dramatically faster for the vectorised models.
"""

import time

import numpy as np
import pytest

from repro.baselines.bpr import BPR
from repro.baselines.cml import CML
from repro.baselines.lrml import LRML
from repro.baselines.metricf import MetricF
from repro.baselines.neumf import NeuMF
from repro.baselines.popularity import Popularity
from repro.baselines.sml import SML
from repro.baselines.transcf import TransCF
from repro.core import MAR, MARS
from repro.core.base import BaseRecommender
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig, load_benchmark
from repro.data.batching import TripletBatcher
from repro.data.negative_sampling import (
    PopularityNegativeSampler,
    UniformNegativeSampler,
)
from repro.eval import LeaveOneOutEvaluator
from repro.eval.protocol import EvaluationResult


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=70, n_items=110, interactions_per_user=10.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


@pytest.fixture(scope="module")
def fitted_mar(dataset):
    return MAR(n_facets=2, embedding_dim=12, n_epochs=2, batch_size=128,
               random_state=0).fit(dataset)


@pytest.fixture(scope="module")
def fitted_mars(dataset):
    return MARS(n_facets=3, embedding_dim=12, n_epochs=2, batch_size=128,
                random_state=0).fit(dataset)


@pytest.fixture(scope="module")
def fitted_bpr(dataset):
    return BPR(embedding_dim=8, n_epochs=2, batch_size=128, random_state=0).fit(dataset)


@pytest.fixture(scope="module")
def evaluator(dataset):
    return LeaveOneOutEvaluator(dataset, n_negatives=60, random_state=0)


def _paired_scores(model, evaluator):
    users = np.asarray(evaluator.users, dtype=np.int64)
    matrix = np.stack([evaluator.candidate_items(user) for user in users])
    batched = model.score_items_batch(users, matrix)
    looped = np.stack([model.score_items(int(user), row)
                       for user, row in zip(users, matrix)])
    return batched, looped


class TestScoreItemsBatch:
    @pytest.mark.parametrize("model_fixture", ["fitted_mar", "fitted_mars", "fitted_bpr"])
    def test_batch_matches_per_user_scores(self, model_fixture, evaluator, request):
        model = request.getfixturevalue(model_fixture)
        batched, looped = _paired_scores(model, evaluator)
        assert batched.shape == looped.shape
        np.testing.assert_allclose(batched, looped, rtol=0.0, atol=1e-12)

    @pytest.mark.parametrize("baseline_cls", [CML, MetricF, SML, LRML, TransCF, NeuMF])
    def test_vectorised_baseline_overrides_match(self, dataset, evaluator, baseline_cls):
        model = baseline_cls(embedding_dim=8, n_epochs=1, batch_size=64,
                             random_state=0).fit(dataset)
        batched, looped = _paired_scores(model, evaluator)
        np.testing.assert_allclose(batched, looped, rtol=0.0, atol=1e-12)

    @pytest.mark.parametrize("model_fixture", ["fitted_mar", "fitted_mars"])
    def test_sparse_candidate_union_gathered_path(self, model_fixture, dataset, request):
        # Narrow candidate lists whose union spans the catalogue trigger the
        # gathered per-candidate path instead of the all-pairs matmul.
        model = request.getfixturevalue(model_fixture)
        rng = np.random.default_rng(0)
        users = np.arange(50)
        matrix = np.stack([rng.choice(dataset.n_items, size=2, replace=False)
                           for _ in users])
        assert len(np.unique(matrix)) > 8 * matrix.shape[1]
        batched = model.score_items_batch(users, matrix)
        looped = np.stack([model.score_items(int(user), row)
                           for user, row in zip(users, matrix)])
        np.testing.assert_allclose(batched, looped, rtol=0.0, atol=1e-12)

    def test_shared_candidate_list_broadcasts(self, fitted_mars):
        users = np.arange(9)
        items = np.array([3, 1, 4, 1, 5])
        scores = fitted_mars.score_items_batch(users, items)
        assert scores.shape == (9, 5)
        for row, user in enumerate(users):
            np.testing.assert_allclose(
                scores[row], fitted_mars.score_items(int(user), items), atol=1e-12
            )

    def test_mismatched_candidate_matrix_rejected(self, fitted_mars):
        with pytest.raises(ValueError):
            fitted_mars.score_items_batch(np.arange(4), np.zeros((3, 5), dtype=np.int64))

    def test_generic_fallback_used_by_plain_models(self, dataset):
        class Constant(BaseRecommender):
            name = "constant"

            def _fit(self, interactions):
                pass

            def score_items(self, user, items):
                return np.full(len(items), float(user))

        model = Constant().fit(dataset)
        scores = model.score_items_batch([2, 5], np.array([[0, 1], [2, 3]]))
        np.testing.assert_array_equal(scores, [[2.0, 2.0], [5.0, 5.0]])

    def test_unfitted_model_rejected(self):
        with pytest.raises(RuntimeError):
            MARS(n_facets=2, embedding_dim=8).score_items_batch([0], np.array([[0, 1]]))
        with pytest.raises(RuntimeError):
            BPR(embedding_dim=8).score_items_batch([0], np.array([[0, 1]]))


class TestRecommendBatch:
    @pytest.mark.parametrize("model_fixture", ["fitted_mars", "fitted_bpr"])
    def test_matches_per_user_recommend(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        users = np.arange(15)
        batched = model.recommend_batch(users, k=5)
        assert batched.shape == (15, 5)
        for row, user in enumerate(users):
            np.testing.assert_array_equal(batched[row], model.recommend(int(user), k=5))

    def test_chunked_batches_match_single_chunk(self, fitted_bpr, monkeypatch):
        import repro.core.base as base_module

        users = np.arange(20)
        whole = fitted_bpr.recommend_batch(users, k=5)
        # Force a tiny element budget so the batch is split across chunks.
        monkeypatch.setattr(base_module, "_RECOMMEND_BATCH_ELEMENT_BUDGET", 1)
        chunked = fitted_bpr.recommend_batch(users, k=5)
        np.testing.assert_array_equal(whole, chunked)

    def test_exclude_seen_respected(self, fitted_mars, dataset):
        users = np.arange(10)
        batched = fitted_mars.recommend_batch(users, k=8, exclude_seen=True)
        for row, user in enumerate(users):
            seen = set(dataset.train.items_of_user(int(user)).tolist())
            assert not seen.intersection(batched[row].tolist())


class TestBatchedEvaluator:
    @pytest.mark.parametrize("model_fixture", ["fitted_mar", "fitted_mars", "fitted_bpr"])
    def test_metrics_identical_to_per_user_path(self, model_fixture, evaluator, request):
        model = request.getfixturevalue(model_fixture)
        batched = evaluator.evaluate(model, batched=True)
        looped = evaluator.evaluate(model, batched=False)
        assert batched.metrics == looped.metrics
        assert batched.n_users == looped.n_users
        for name in looped.per_user:
            np.testing.assert_array_equal(batched.per_user[name], looped.per_user[name])

    def test_popularity_baseline_through_fallback(self, dataset, evaluator):
        model = Popularity().fit(dataset)
        batched = evaluator.evaluate(model, batched=True)
        looped = evaluator.evaluate(model, batched=False)
        assert batched.metrics == looped.metrics

    def test_batched_is_default(self, fitted_mars, evaluator, monkeypatch):
        calls = []
        original = type(fitted_mars).score_items_batch

        def spy(self, users, item_matrix):
            calls.append(len(np.asarray(users)))
            return original(self, users, item_matrix)

        monkeypatch.setattr(type(fitted_mars), "score_items_batch", spy)
        evaluator.evaluate(fitted_mars)
        assert sum(calls) == len(evaluator.users)

    def test_chunked_scoring_matches_single_chunk(self, fitted_mars, evaluator,
                                                  monkeypatch):
        import repro.eval.protocol as protocol_module

        whole = evaluator.evaluate(fitted_mars)
        # Force one-user score_items_batch calls through the chunking path.
        monkeypatch.setattr(protocol_module, "_EVAL_BATCH_ELEMENT_BUDGET", 1)
        chunked = evaluator.evaluate(fitted_mars)
        assert whole.metrics == chunked.metrics
        for name in whole.per_user:
            np.testing.assert_array_equal(whole.per_user[name], chunked.per_user[name])

    def test_ragged_candidate_widths_grouped_correctly(self):
        # With a tiny catalogue the negative pools are smaller than
        # n_negatives and differ per user, so the batched path must group
        # users by candidate width.
        config = SyntheticConfig(n_users=30, n_items=25, interactions_per_user=10.0)
        ragged = MultiFacetSyntheticGenerator(config, random_state=1).generate_dataset()
        evaluator = LeaveOneOutEvaluator(ragged, n_negatives=20, random_state=0)
        widths = {evaluator.candidate_items(user).size for user in evaluator.users}
        assert len(widths) > 1, "expected ragged candidate lists for this setup"

        model = MAR(n_facets=2, embedding_dim=8, n_epochs=1, batch_size=64,
                    random_state=0).fit(ragged)
        batched = evaluator.evaluate(model, batched=True)
        looped = evaluator.evaluate(model, batched=False)
        assert batched.metrics == looped.metrics
        for name in looped.per_user:
            np.testing.assert_array_equal(batched.per_user[name], looped.per_user[name])

    @pytest.mark.slow
    def test_batched_evaluation_speedup(self):
        """Acceptance: ≥5× faster than the per-user loop, identical metrics."""
        dataset = load_benchmark("delicious", random_state=0)
        model = MARS(n_facets=3, embedding_dim=24, n_epochs=1, batch_size=256,
                     random_state=0).fit(dataset)
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=100, random_state=0)

        batched = evaluator.evaluate(model, batched=True)   # warm-up + result
        looped = evaluator.evaluate(model, batched=False)
        assert batched.metrics == looped.metrics

        def best_of(fn, repeats=3):
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - start)
            return min(samples)

        loop_time = best_of(lambda: evaluator.evaluate(model, batched=False))
        batch_time = best_of(lambda: evaluator.evaluate(model, batched=True))
        speedup = loop_time / batch_time
        assert speedup >= 5.0, (
            f"batched evaluation only {speedup:.1f}x faster "
            f"({loop_time * 1e3:.1f}ms vs {batch_time * 1e3:.1f}ms)"
        )


class TestSaveLoadFreshInstance:
    def test_mar_load_without_fit(self, fitted_mar, tmp_path):
        path = fitted_mar.save(tmp_path / "mar.npz")
        fresh = MAR(n_facets=2, embedding_dim=12)
        fresh.load(path)
        items = np.arange(20)
        for user in (0, 3, 11):
            np.testing.assert_array_equal(fresh.score_items(user, items),
                                          fitted_mar.score_items(user, items))
        np.testing.assert_array_equal(fresh.margins_, fitted_mar.margins_)

    def test_mars_load_without_fit(self, fitted_mars, tmp_path):
        path = fitted_mars.save(tmp_path / "mars.npz")
        fresh = MARS(n_facets=3, embedding_dim=12)
        fresh.load(path)
        items = np.arange(20)
        for user in (0, 5, 13):
            np.testing.assert_array_equal(fresh.score_items(user, items),
                                          fitted_mars.score_items(user, items))

    def test_loaded_model_batch_scores_match(self, fitted_mars, evaluator, tmp_path):
        path = fitted_mars.save(tmp_path / "mars.npz")
        fresh = MARS(n_facets=3, embedding_dim=12).load(path)
        users = np.asarray(evaluator.users[:10], dtype=np.int64)
        matrix = np.stack([evaluator.candidate_items(user) for user in users])
        np.testing.assert_array_equal(fresh.score_items_batch(users, matrix),
                                      fitted_mars.score_items_batch(users, matrix))

    def test_loaded_model_can_rank_without_interactions(self, fitted_mars, tmp_path):
        path = fitted_mars.save(tmp_path / "mars.npz")
        fresh = MARS(n_facets=3, embedding_dim=12).load(path)
        users = np.arange(5)
        np.testing.assert_array_equal(
            fresh.recommend_batch(users, k=4, exclude_seen=False),
            fitted_mars.recommend_batch(users, k=4, exclude_seen=False),
        )
        np.testing.assert_array_equal(fresh.recommend(2, k=4, exclude_seen=False),
                                      fitted_mars.recommend(2, k=4, exclude_seen=False))
        # Filtering seen items still needs the training interactions.
        with pytest.raises(RuntimeError):
            fresh.recommend(0, k=4, exclude_seen=True)

    def test_incomplete_state_rejected(self):
        with pytest.raises(KeyError):
            MARS(n_facets=2, embedding_dim=8).set_parameters(
                {"user_embeddings.weight": np.zeros((4, 8))}
            )


class TestInferencePathBugfixes:
    def test_as_row_empty_keys_returns_empty_row(self):
        result = EvaluationResult(metrics={"hr@10": 0.5, "mrr": 0.2})
        assert result.as_row([]) == []
        assert result.as_row() == [0.5, 0.2]
        assert result.as_row(["mrr"]) == [0.2]

    def test_triplet_batcher_rejects_non_positive_batch_size(self, dataset):
        batcher = TripletBatcher(dataset.train, batch_size=16, random_state=0)
        with pytest.raises(ValueError):
            batcher.sample_batch(batch_size=0)
        with pytest.raises(ValueError):
            batcher.sample_batch(batch_size=-3)
        assert len(batcher.sample_batch(batch_size=7)) == 7
        assert len(batcher.sample_batch()) == 16

    def test_verbose_training_logs_at_info(self, dataset, caplog):
        import logging

        # verbose=True must make the records actually emit even though the
        # library root stays at WARNING: the runtime opts the model logger
        # in for the duration of the loop (caplog's handler captures at
        # level 0, so the logger-level gate is the thing under test).
        MAR(n_facets=2, embedding_dim=8, n_epochs=1, batch_size=64,
            random_state=0, verbose=True).fit(dataset)
        epoch_records = [record for record in caplog.records if "epoch" in record.message]
        assert epoch_records
        assert all(record.levelno == logging.INFO for record in epoch_records)
        # ... and must restore the previous level on exit, so one verbose
        # fit does not leave every later model on this logger chatty.
        assert logging.getLogger(
            "repro.core.multifacet"
        ).getEffectiveLevel() == logging.WARNING
        caplog.clear()
        MAR(n_facets=2, embedding_dim=8, n_epochs=1, batch_size=64,
            random_state=0, verbose=False).fit(dataset)
        assert not [record for record in caplog.records if "epoch" in record.message]
        # set_verbosity stays authoritative over the verbose opt-in.
        from repro.utils.logging import set_verbosity

        set_verbosity(logging.WARNING)
        assert logging.getLogger(
            "repro.core.multifacet"
        ).getEffectiveLevel() == logging.WARNING


class TestVectorisedNegativeSampling:
    def test_uniform_sample_batch_avoids_positives(self, dataset):
        sampler = UniformNegativeSampler(dataset.train, random_state=0)
        users = np.repeat(np.arange(dataset.n_users), 3)
        negatives = sampler.sample_batch(users)
        assert negatives.shape == users.shape
        assert negatives.dtype == np.int64
        for user, item in zip(users, negatives):
            assert (int(user), int(item)) not in dataset.train

    def test_popularity_sample_batch_avoids_positives(self, dataset):
        sampler = PopularityNegativeSampler(dataset.train, random_state=0)
        users = np.arange(dataset.n_users)
        negatives = sampler.sample_batch(users)
        for user, item in zip(users, negatives):
            assert (int(user), int(item)) not in dataset.train

    def test_empty_user_batch(self, dataset):
        sampler = UniformNegativeSampler(dataset.train, random_state=0)
        assert sampler.sample_batch(np.array([], dtype=np.int64)).size == 0

    def test_dense_user_falls_back_to_enumeration(self):
        from repro.data.interactions import InteractionMatrix

        dense = np.ones((3, 5))
        dense[1, 4] = 0  # user 1 has exactly one non-interacted item
        interactions = InteractionMatrix.from_dense(dense)
        sampler = UniformNegativeSampler(interactions, random_state=0,
                                         max_rejections=2)
        negatives = sampler.sample_batch(np.array([1, 1, 1, 1]))
        assert np.all(negatives == 4)
