"""Integration tests for the MAR and MARS recommenders."""

import numpy as np
import pytest

from repro.core import MAR, MARS, MARConfig, MARSConfig
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.eval import LeaveOneOutEvaluator


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=80, n_items=100, n_facets=3,
                             interactions_per_user=14.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


@pytest.fixture(scope="module")
def fitted_mar(dataset):
    return MAR(n_facets=2, embedding_dim=16, n_epochs=8, batch_size=128,
               random_state=0).fit(dataset)


@pytest.fixture(scope="module")
def fitted_mars(dataset):
    return MARS(n_facets=2, embedding_dim=16, n_epochs=8, batch_size=128,
                random_state=0).fit(dataset)


class TestConfigs:
    def test_defaults_valid(self):
        MARConfig()
        MARSConfig()

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            MARConfig(n_facets=0)
        with pytest.raises(ValueError):
            MARConfig(learning_rate=-1.0)
        with pytest.raises(ValueError):
            MARConfig(user_sampling="bogus")
        with pytest.raises(ValueError):
            MARSConfig(euclidean_learning_rate=-0.1)

    def test_model_accepts_config_object(self, dataset):
        config = MARConfig(n_facets=2, embedding_dim=8, n_epochs=1, batch_size=64)
        model = MAR(config)
        assert model.config is config

    def test_model_rejects_config_and_overrides(self):
        with pytest.raises(ValueError):
            MAR(MARConfig(), n_facets=2)


class TestMARTraining:
    def test_fit_returns_self_and_sets_state(self, fitted_mar):
        assert fitted_mar.is_fitted
        assert len(fitted_mar.loss_history_) == 8

    def test_loss_decreases(self, fitted_mar):
        assert fitted_mar.loss_history_[-1] < fitted_mar.loss_history_[0]

    def test_embeddings_respect_unit_ball(self, fitted_mar):
        users = fitted_mar.network.user_embeddings.weight.data
        items = fitted_mar.network.item_embeddings.weight.data
        assert np.all(np.linalg.norm(users, axis=1) <= 1.0 + 1e-8)
        assert np.all(np.linalg.norm(items, axis=1) <= 1.0 + 1e-8)

    def test_adaptive_margins_computed(self, fitted_mar, dataset):
        assert fitted_mar.margins_.shape == (dataset.n_users,)
        assert np.all(fitted_mar.margins_ > 0)

    def test_fixed_margin_mode(self, dataset):
        model = MAR(n_facets=2, embedding_dim=8, n_epochs=1, batch_size=64,
                    adaptive_margin=False, margin=0.7, random_state=0).fit(dataset)
        assert np.allclose(model.margins_, 0.7)

    def test_beats_random_ranking(self, fitted_mar, dataset):
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=50, random_state=0)
        result = evaluator.evaluate(fitted_mar)
        random_hr = 10.0 / 51.0
        assert result["hr@10"] > random_hr

    def test_score_items_shape_and_order(self, fitted_mar):
        scores = fitted_mar.score_items(0, [1, 2, 3, 4])
        assert scores.shape == (4,)
        assert np.all(np.isfinite(scores))

    def test_recommend_excludes_seen(self, fitted_mar, dataset):
        user = int(dataset.evaluable_users()[0])
        seen = set(dataset.train.items_of_user(user).tolist())
        recs = fitted_mar.recommend(user, k=10)
        assert len(recs) == 10
        assert not seen.intersection(recs.tolist())

    def test_recommend_can_include_seen(self, fitted_mar):
        recs = fitted_mar.recommend(0, k=5, exclude_seen=False)
        assert len(recs) == 5

    def test_scoring_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MAR(n_facets=2, embedding_dim=8).score_items(0, [0])

    def test_facet_weights_are_distributions(self, fitted_mar, dataset):
        weights = fitted_mar.facet_weights()
        assert weights.shape == (dataset.n_users, 2)
        assert np.allclose(weights.sum(axis=1), 1.0)
        single = fitted_mar.facet_weights(user=3)
        assert np.allclose(single, weights[3])

    def test_facet_item_embeddings_shape(self, fitted_mar, dataset):
        facets = fitted_mar.facet_item_embeddings()
        assert facets.shape == (2, dataset.n_items, 16)

    def test_save_load_roundtrip(self, fitted_mar, dataset, tmp_path):
        path = fitted_mar.save(tmp_path / "mar.npz")
        clone = MAR(n_facets=2, embedding_dim=16, n_epochs=1, batch_size=128,
                    random_state=0)
        # Build the network without real training, then load weights.
        clone.fit(dataset.train.without_pairs([]))  # same shapes, quick 1 epoch
        clone.load(path)
        assert np.allclose(clone.score_items(0, [1, 2, 3]),
                           fitted_mar.score_items(0, [1, 2, 3]))


class TestMARSTraining:
    def test_embeddings_exactly_on_sphere(self, fitted_mars):
        users = fitted_mars.network.user_embeddings.weight.data
        items = fitted_mars.network.item_embeddings.weight.data
        assert np.allclose(np.linalg.norm(users, axis=1), 1.0, atol=1e-8)
        assert np.allclose(np.linalg.norm(items, axis=1), 1.0, atol=1e-8)

    def test_loss_decreases(self, fitted_mars):
        assert fitted_mars.loss_history_[-1] < fitted_mars.loss_history_[0]

    def test_scores_bounded_by_cosine_range(self, fitted_mars):
        scores = fitted_mars.score_items(0, np.arange(20))
        assert np.all(scores <= 1.0 + 1e-9)
        assert np.all(scores >= -1.0 - 1e-9)

    def test_beats_random_ranking(self, fitted_mars, dataset):
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=50, random_state=0)
        result = evaluator.evaluate(fitted_mars)
        assert result["hr@10"] > 10.0 / 51.0

    def test_facet_item_embeddings_unit_norm(self, fitted_mars):
        facets = fitted_mars.facet_item_embeddings()
        norms = np.linalg.norm(facets, axis=-1)
        assert np.allclose(norms, 1.0, atol=1e-8)

    def test_uncalibrated_variant_trains(self, dataset):
        model = MARS(n_facets=2, embedding_dim=8, n_epochs=2, batch_size=64,
                     calibrate=False, random_state=0).fit(dataset)
        assert model.is_fitted

    def test_uniform_user_sampling_trains(self, dataset):
        model = MARS(n_facets=2, embedding_dim=8, n_epochs=2, batch_size=64,
                     user_sampling="uniform", random_state=0).fit(dataset)
        assert model.is_fitted

    def test_single_facet_configuration(self, dataset):
        model = MARS(n_facets=1, embedding_dim=8, n_epochs=2, batch_size=64,
                     random_state=0).fit(dataset)
        assert model.facet_weights().shape == (dataset.n_users, 1)
        assert np.allclose(model.facet_weights(), 1.0)


class TestReproducibility:
    def test_same_seed_same_model(self, dataset):
        a = MAR(n_facets=2, embedding_dim=8, n_epochs=2, batch_size=64,
                random_state=11).fit(dataset)
        b = MAR(n_facets=2, embedding_dim=8, n_epochs=2, batch_size=64,
                random_state=11).fit(dataset)
        assert np.allclose(a.network.user_embeddings.weight.data,
                           b.network.user_embeddings.weight.data)

    def test_different_seed_different_model(self, dataset):
        a = MAR(n_facets=2, embedding_dim=8, n_epochs=2, batch_size=64,
                random_state=1).fit(dataset)
        b = MAR(n_facets=2, embedding_dim=8, n_epochs=2, batch_size=64,
                random_state=2).fit(dataset)
        assert not np.allclose(a.network.user_embeddings.weight.data,
                               b.network.user_embeddings.weight.data)
