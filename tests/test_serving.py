"""Regression tests for the serving subsystem (artifacts, Query API, service).

The contracts under test:

* the ``recommend``/``recommend_batch``/``score_items_batch`` shims over the
  shared kernel preserve their historical outputs (including the vectorised
  CSR seen-masking and the ``k <= 0`` fix);
* for every model family, an exported :class:`ServingArtifact` answers
  queries **bitwise** like the live model — including after a
  ``save()``/``load()`` round-trip and in a fresh process holding only the
  artifact file;
* :class:`LeaveOneOutEvaluator` reproduces the live metrics through the
  artifact scorer;
* :class:`RecommenderService` micro-batching, caching and registry hot-swap
  return exactly what ``recommend_batch`` would.
"""

import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro import (
    MAR,
    MARS,
    ModelRegistry,
    Query,
    QueryResult,
    RecommenderService,
    ServingArtifact,
)
from repro.baselines.bpr import BPR
from repro.baselines.cml import CML
from repro.baselines.itemknn import ItemKNN
from repro.baselines.lrml import LRML
from repro.baselines.metricf import MetricF
from repro.baselines.neumf import NeuMF
from repro.baselines.nmf import NMF
from repro.baselines.popularity import Popularity
from repro.baselines.sml import SML
from repro.baselines.transcf import TransCF
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.eval import LeaveOneOutEvaluator
from repro.serving.kernel import (
    encode_seen_keys,
    mask_seen_rows,
    run_query,
    seen_candidate_mask,
)


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(n_users=60, n_items=90, interactions_per_user=9.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


_MODEL_FACTORIES = {
    "MAR": lambda: MAR(n_facets=2, embedding_dim=10, n_epochs=2,
                       batch_size=64, random_state=0),
    "MARS": lambda: MARS(n_facets=2, embedding_dim=10, n_epochs=2,
                         batch_size=64, random_state=0),
    "BPR": lambda: BPR(embedding_dim=8, n_epochs=2, random_state=0),
    "CML": lambda: CML(embedding_dim=8, n_epochs=2, random_state=0),
    "MetricF": lambda: MetricF(embedding_dim=8, n_epochs=2, random_state=0),
    "SML": lambda: SML(embedding_dim=8, n_epochs=2, random_state=0),
    "TransCF": lambda: TransCF(embedding_dim=8, n_epochs=2, random_state=0),
    "LRML": lambda: LRML(embedding_dim=8, n_epochs=2, random_state=0),
    "NeuMF": lambda: NeuMF(embedding_dim=8, n_epochs=2, random_state=0),
    "Popularity": Popularity,
    "ItemKNN": lambda: ItemKNN(k_neighbours=10),
    "NMF": lambda: NMF(n_factors=4, n_iterations=10),
}

_EXPECTED_FAMILIES = {
    "MAR": "multifacet", "MARS": "multifacet", "BPR": "dot_bias",
    "CML": "euclidean", "MetricF": "euclidean", "SML": "euclidean",
    "TransCF": "translation", "LRML": "memory", "NeuMF": "mlp",
    "Popularity": "popularity", "ItemKNN": "precomputed", "NMF": "precomputed",
}


@pytest.fixture(scope="module")
def fitted(dataset):
    return {name: factory().fit(dataset)
            for name, factory in _MODEL_FACTORIES.items()}


@pytest.fixture(scope="module")
def fitted_mars(fitted):
    return fitted["MARS"]


# --------------------------------------------------------------------------- #
# Query construction
# --------------------------------------------------------------------------- #
class TestQuery:
    def test_users_normalised_to_int64(self):
        query = Query(users=[3, 1, 2])
        assert query.users.dtype == np.int64
        np.testing.assert_array_equal(query.users, [3, 1, 2])
        assert query.n_users == 3

    def test_scalar_user_promoted(self):
        assert Query(users=5).users.shape == (1,)

    def test_score_mode_requires_candidates(self):
        with pytest.raises(ValueError, match="candidates"):
            Query(users=[0], k=None)

    def test_two_dimensional_users_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Query(users=np.zeros((2, 2), dtype=np.int64))

    def test_frozen(self):
        query = Query(users=[0])
        with pytest.raises(AttributeError):
            query.k = 3


# --------------------------------------------------------------------------- #
# kernel masking (the vectorised CSR scatter / membership test)
# --------------------------------------------------------------------------- #
class TestKernelMasking:
    def test_mask_seen_rows_matches_per_user_loop(self, dataset):
        train = dataset.train
        csr = train.csr()
        rng = np.random.default_rng(0)
        users = rng.choice(train.n_users, size=25, replace=False)
        scores = rng.normal(size=(users.size, train.n_items))

        expected = scores.copy()
        for row, user in enumerate(users):
            expected[row, train.items_of_user(int(user))] = -np.inf

        masked = scores.copy()
        mask_seen_rows(masked, users, csr.indptr, csr.indices)
        np.testing.assert_array_equal(masked, expected)

    def test_seen_candidate_mask_matches_membership(self, dataset):
        train = dataset.train
        csr = train.csr()
        rng = np.random.default_rng(1)
        users = rng.choice(train.n_users, size=20, replace=False)
        candidates = rng.integers(0, train.n_items, size=(20, 15))

        keys = encode_seen_keys(train.n_items, csr.indptr, csr.indices)
        np.testing.assert_array_equal(keys, train.encoded_positive_keys())
        mask = seen_candidate_mask(users, candidates, train.n_items, keys)
        for row, user in enumerate(users):
            seen = set(train.items_of_user(int(user)).tolist())
            expected = np.array([item in seen for item in candidates[row]])
            np.testing.assert_array_equal(mask[row], expected)

    def test_users_without_interactions_mask_nothing(self):
        indptr = np.array([0, 0, 2])
        indices = np.array([1, 3])
        scores = np.zeros((2, 5))
        mask_seen_rows(scores, np.array([0, 1]), indptr, indices)
        assert np.isfinite(scores[0]).all()
        assert np.isinf(scores[1, [1, 3]]).all()


# --------------------------------------------------------------------------- #
# the redesigned shims
# --------------------------------------------------------------------------- #
class TestShims:
    @pytest.mark.parametrize("k", [0, -2])
    def test_non_positive_k_returns_empty(self, fitted_mars, k):
        users = np.arange(6)
        batched = fitted_mars.recommend_batch(users, k=k)
        assert batched.shape == (6, 0)
        assert batched.dtype == np.int64
        single = fitted_mars.recommend(0, k=k)
        assert single.shape == (0,)

    def test_exclude_items_blocklist(self, fitted_mars):
        blocked = np.array([0, 1, 2, 3])
        result = fitted_mars.query(
            Query(users=np.arange(8), k=10, exclude_seen=False,
                  exclude_items=blocked))
        assert not set(result.items.ravel()) & set(blocked.tolist())

    def test_blocklist_tolerates_out_of_catalogue_ids(self, fitted_mars):
        # A retired item id must not crash full-catalogue ranking (and must
        # not wrap around to mask a live item).
        clean = fitted_mars.query(Query(users=[0], k=5, exclude_seen=False))
        result = fitted_mars.query(
            Query(users=[0], k=5, exclude_seen=False,
                  exclude_items=[10_000, -1]))
        np.testing.assert_array_equal(result.items, clean.items)

    def test_candidate_query_ranks_within_candidates(self, fitted_mars):
        candidates = np.array([[5, 6, 7, 8, 9], [10, 11, 12, 13, 14]])
        result = fitted_mars.query(
            Query(users=[0, 1], candidates=candidates, k=3,
                  exclude_seen=False))
        scores = fitted_mars.score_items_batch([0, 1], candidates)
        for row in range(2):
            order = np.argsort(-scores[row], kind="stable")[:3]
            np.testing.assert_array_equal(result.items[row],
                                          candidates[row, order])

    def test_score_mode_query_matches_score_items_batch(self, fitted_mars):
        candidates = np.array([[5, 6, 7], [8, 9, 10]])
        result = fitted_mars.query(
            Query(users=[2, 3], candidates=candidates, k=None,
                  exclude_seen=False))
        np.testing.assert_array_equal(
            result.scores, fitted_mars.score_items_batch([2, 3], candidates))
        np.testing.assert_array_equal(result.items, candidates)

    def test_candidate_query_exclude_seen(self, fitted_mars, dataset):
        train = dataset.train
        user = 4
        seen_items = train.items_of_user(user)
        assert seen_items.size >= 2
        unseen = np.setdiff1d(np.arange(train.n_items), seen_items)[:4]
        candidates = np.concatenate([seen_items[:2], unseen])[None, :]
        result = fitted_mars.query(
            Query(users=[user], candidates=candidates, k=4, exclude_seen=True))
        # k equals the number of unseen candidates, so the masked seen items
        # must never surface.
        assert set(result.items[0].tolist()) == set(unseen.tolist())

    def test_exclude_seen_without_interactions_raises(self, dataset):
        model = MARS(n_facets=2, embedding_dim=10)
        with pytest.raises(RuntimeError, match="fitted"):
            model.recommend_batch([0], k=3)

    def test_recommend_batch_masking_matches_reference_loop(self, fitted_mars,
                                                            dataset):
        # The vectorised CSR scatter must reproduce the historical per-user
        # masking loop exactly.
        train = dataset.train
        users = np.arange(20)
        scores = np.asarray(
            fitted_mars.score_items_batch(users, np.arange(train.n_items)),
            dtype=np.float64).copy()
        for row, user in enumerate(users):
            scores[row, train.items_of_user(int(user))] = -np.inf
        k = 6
        part = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
        part_scores = np.take_along_axis(scores, part, axis=1)
        order = np.argsort(-part_scores, axis=1, kind="stable")
        expected = np.take_along_axis(part, order, axis=1)
        np.testing.assert_array_equal(
            fitted_mars.recommend_batch(users, k=k), expected)


# --------------------------------------------------------------------------- #
# artifact export / parity
# --------------------------------------------------------------------------- #
class TestArtifactParity:
    @pytest.mark.parametrize("name", sorted(_MODEL_FACTORIES))
    def test_bitwise_parity_with_live_model(self, fitted, name, tmp_path):
        model = fitted[name]
        users = np.arange(model._require_fitted().n_users)
        artifact = model.export_serving()
        assert artifact.family == _EXPECTED_FAMILIES[name]
        assert artifact.model_name == model.name

        for exclude_seen in (True, False):
            live = model.recommend_batch(users, k=7, exclude_seen=exclude_seen)
            served = artifact.recommend_batch(users, k=7,
                                              exclude_seen=exclude_seen)
            np.testing.assert_array_equal(served, live)

        # ... and after a save/load round-trip.
        restored = ServingArtifact.load(artifact.save(tmp_path / f"{name}.npz"))
        np.testing.assert_array_equal(restored.recommend_batch(users, k=7),
                                      model.recommend_batch(users, k=7))

    @pytest.mark.parametrize("name", sorted(_MODEL_FACTORIES))
    def test_evaluator_reproduces_live_metrics(self, fitted, name, dataset):
        model = fitted[name]
        evaluator = LeaveOneOutEvaluator(dataset, n_negatives=40,
                                         random_state=0)
        live = evaluator.evaluate(model)
        served = evaluator.evaluate(model.export_serving())
        assert live.metrics == served.metrics
        for metric in live.per_user:
            np.testing.assert_array_equal(live.per_user[metric],
                                          served.per_user[metric])

    def test_per_user_scoring_matches_batch(self, fitted_mars):
        artifact = fitted_mars.export_serving()
        items = np.arange(15)
        np.testing.assert_array_equal(
            artifact.score_items(3, items),
            artifact.score_items_batch([3], items[None, :])[0])

    def test_fresh_process_serves_from_artifact_file_alone(self, fitted_mars,
                                                           tmp_path):
        """A new interpreter with only the artifact file reproduces top-k."""
        path = fitted_mars.export_serving().save(tmp_path / "mars.npz")
        users = np.arange(10)
        expected = fitted_mars.recommend_batch(users, k=5)
        script = (
            "import sys, numpy as np\n"
            f"sys.path.insert(0, {str(Path(__file__).parent.parent / 'src')!r})\n"
            "from repro.serving.artifact import ServingArtifact\n"
            f"artifact = ServingArtifact.load({str(path)!r})\n"
            "top = artifact.recommend_batch(np.arange(10), k=5)\n"
            "np.save(sys.argv[1], top)\n"
        )
        out = tmp_path / "fresh_topk.npy"
        subprocess.run([sys.executable, "-c", script, str(out)], check=True)
        np.testing.assert_array_equal(np.load(out), expected)

    def test_artifact_is_frozen(self, fitted_mars):
        artifact = fitted_mars.export_serving()
        with pytest.raises(AttributeError, match="frozen"):
            artifact.family = "other"
        with pytest.raises(ValueError):
            artifact.tensors["facet_weights"][0, 0] = 1.0
        with pytest.raises(TypeError):
            artifact.tensors["extra"] = np.zeros(3)

    def test_export_does_not_alias_live_tensors(self, dataset):
        model = CML(embedding_dim=8, n_epochs=1, random_state=0).fit(dataset)
        artifact = model.export_serving()
        before = artifact.recommend_batch([0, 1], k=5)
        model.network.user_embeddings.weight.data[:] = 0.0
        np.testing.assert_array_equal(artifact.recommend_batch([0, 1], k=5),
                                      before)

    def test_artifact_without_seen_rejects_exclude_seen(self, fitted_mars,
                                                        tmp_path):
        # A checkpoint-restored model has no training interactions: its
        # artifact must still rank with exclude_seen=False and fail loudly
        # otherwise.
        path = fitted_mars.save(tmp_path / "mars_params.npz")
        restored = MARS(n_facets=2, embedding_dim=10).load(path)
        artifact = restored.export_serving()
        assert not artifact.has_seen
        with pytest.raises(RuntimeError, match="exclude_seen"):
            artifact.recommend_batch([0], k=3)
        np.testing.assert_array_equal(
            artifact.recommend_batch([0, 5], k=4, exclude_seen=False),
            fitted_mars.recommend_batch([0, 5], k=4, exclude_seen=False))

    def test_unfitted_model_cannot_export(self):
        with pytest.raises(RuntimeError):
            MARS(n_facets=2, embedding_dim=8).export_serving()
        with pytest.raises(RuntimeError):
            BPR(embedding_dim=8).export_serving()

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="unknown serving family"):
            ServingArtifact(family="nope", tensors={}, n_users=1, n_items=1)

    def test_load_rejects_plain_parameter_files(self, fitted_mars, tmp_path):
        path = fitted_mars.save(tmp_path / "params.npz")
        with pytest.raises(KeyError, match="not a serving artifact"):
            ServingArtifact.load(path)


# --------------------------------------------------------------------------- #
# registry + service
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_publish_bumps_version(self, fitted):
        registry = ModelRegistry()
        artifact = fitted["CML"].export_serving()
        assert registry.publish("cml", artifact) == 1
        assert registry.publish("cml", artifact) == 2
        assert registry.version("cml") == 2
        assert "cml" in registry and len(registry) == 1

    def test_get_resolves_single_unnamed(self, fitted):
        registry = ModelRegistry()
        registry.publish("only", fitted["CML"].export_serving())
        artifact, version, name = registry.get()
        assert (version, name) == (1, "only")

    def test_get_requires_name_with_many_models(self, fitted):
        registry = ModelRegistry()
        registry.publish("a", fitted["CML"].export_serving())
        registry.publish("b", fitted["BPR"].export_serving())
        with pytest.raises(KeyError, match="specify one by name"):
            registry.get()
        with pytest.raises(KeyError, match="no model named"):
            registry.get("c")

    def test_rejects_non_artifacts(self, fitted):
        with pytest.raises(TypeError, match="export_serving"):
            ModelRegistry().publish("m", fitted["CML"])


class TestService:
    @pytest.mark.parametrize("name", sorted(_MODEL_FACTORIES))
    def test_single_requests_match_recommend_batch(self, fitted, name,
                                                   tmp_path):
        """Service top-k ≡ live ``recommend_batch`` bitwise for every model
        family — served from a save/load round-tripped artifact, and again
        after a registry hot-swap."""
        model = fitted[name]
        restored = ServingArtifact.load(
            model.export_serving().save(tmp_path / f"{name}.npz"))
        service = RecommenderService(restored, max_wait_ms=0.0)
        users = np.arange(model._require_fitted().n_users)
        expected = model.recommend_batch(users, k=6)
        rows = np.stack([service.recommend(int(user), k=6) for user in users])
        np.testing.assert_array_equal(rows, expected)

        # Hot-swap to another model's artifact: the swap must take effect
        # immediately (no stale cache rows) and stay bitwise-exact.
        other = fitted["MARS" if name != "MARS" else "CML"]
        service.publish("default", other.export_serving())
        swapped = np.stack([service.recommend(int(user), k=6)
                            for user in users])
        np.testing.assert_array_equal(swapped,
                                      other.recommend_batch(users, k=6))

    def test_batch_path_matches_live(self, fitted):
        model = fitted["MARS"]
        service = RecommenderService(model.export_serving())
        users = np.arange(30)
        np.testing.assert_array_equal(service.recommend_batch(users, k=5),
                                      model.recommend_batch(users, k=5))

    def test_cache_hits_and_result_isolation(self, fitted):
        service = RecommenderService(fitted["MARS"].export_serving(),
                                     max_wait_ms=0.0)
        first = service.recommend(3, k=5)
        first[:] = -1  # caller-side mutation must not poison the cache
        second = service.recommend(3, k=5)
        assert service.stats["cache_hits"] == 1
        np.testing.assert_array_equal(
            second, fitted["MARS"].recommend_batch([3], k=5)[0])

    def test_hot_swap_serves_new_artifact_and_invalidates_cache(self, fitted):
        service = RecommenderService(fitted["MARS"].export_serving(),
                                     max_wait_ms=0.0)
        before = service.recommend(2, k=5)
        np.testing.assert_array_equal(
            before, fitted["MARS"].recommend_batch([2], k=5)[0])
        service.publish("default", fitted["CML"].export_serving())
        after = service.recommend(2, k=5)
        np.testing.assert_array_equal(
            after, fitted["CML"].recommend_batch([2], k=5)[0])
        # The post-swap request may not be served from the pre-swap cache.
        assert service.stats["cache_hits"] == 0

    def test_named_models(self, fitted):
        service = RecommenderService({
            "mars": fitted["MARS"].export_serving(),
            "cml": fitted["CML"].export_serving(),
        }, max_wait_ms=0.0)
        np.testing.assert_array_equal(
            service.recommend(1, k=4, model="cml"),
            fitted["CML"].recommend_batch([1], k=4)[0])
        with pytest.raises(KeyError):
            service.recommend(1, k=4)  # ambiguous without a name

    def test_concurrent_requests_coalesce_into_one_micro_batch(self, fitted):
        model = fitted["MARS"]
        expected = model.recommend_batch(np.arange(8), k=5)
        # A generous wait means the leader blocks until all 8 compatible
        # requests have queued (max_batch_size reached), then one kernel
        # pass serves everyone.
        service = RecommenderService(model.export_serving(),
                                     max_batch_size=8, max_wait_ms=5000.0)
        results = {}

        def worker(user):
            results[user] = service.recommend(user, k=5)

        threads = [threading.Thread(target=worker, args=(user,))
                   for user in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for user in range(8):
            np.testing.assert_array_equal(results[user], expected[user])
        assert service.stats["micro_batches"] == 1
        assert service.stats["coalesced"] == 8

    def test_overflow_batches_drain_without_a_new_leader(self, fitted):
        # max_batch_size=1 forces every coalesced request into its own
        # micro-batch; the first leader must loop over the overflow instead
        # of stranding the other threads' requests.
        model = fitted["MARS"]
        expected = model.recommend_batch(np.arange(6), k=4)
        service = RecommenderService(model.export_serving(),
                                     max_batch_size=1, max_wait_ms=50.0)
        results = {}

        def worker(user):
            results[user] = service.recommend(user, k=4)

        threads = [threading.Thread(target=worker, args=(user,))
                   for user in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for user in range(6):
            np.testing.assert_array_equal(results[user], expected[user])
        assert service.stats["micro_batches"] == 6

    def test_error_propagates_to_caller(self, fitted):
        service = RecommenderService(fitted["MARS"].export_serving(),
                                     max_wait_ms=0.0)
        with pytest.raises(ValueError, match="out of range"):
            service.recommend(10_000, k=5)  # out-of-range user id
        # ... and the service keeps serving afterwards.
        np.testing.assert_array_equal(
            service.recommend(0, k=5),
            fitted["MARS"].recommend_batch([0], k=5)[0])

    def test_invalid_construction(self, fitted):
        artifact = fitted["MARS"].export_serving()
        with pytest.raises(ValueError, match="not both"):
            RecommenderService(artifact, registry=ModelRegistry())
        with pytest.raises(ValueError):
            RecommenderService(artifact, max_batch_size=0)
        with pytest.raises(ValueError):
            RecommenderService(artifact, max_wait_ms=-1.0)


# --------------------------------------------------------------------------- #
# run_query odds and ends
# --------------------------------------------------------------------------- #
class TestRunQuery:
    def test_scorer_shape_mismatch_rejected(self):
        def bad_scorer(users, item_matrix):
            return np.zeros((users.size, item_matrix.shape[1] + 1))

        with pytest.raises(ValueError, match="scorer returned shape"):
            run_query(Query(users=[0], candidates=[[1, 2]], k=1,
                            exclude_seen=False), bad_scorer, n_items=5)

    def test_exclude_seen_without_csr_raises(self):
        def scorer(users, item_matrix):
            return np.zeros(item_matrix.shape)

        with pytest.raises(RuntimeError, match="exclude_seen"):
            run_query(Query(users=[0], k=2), scorer, n_items=5, seen=None)

    def test_result_properties(self, fitted_mars):
        result = fitted_mars.query(Query(users=[0, 1], k=4))
        assert isinstance(result, QueryResult)
        assert (result.n_users, result.k) == (2, 4)


# --------------------------------------------------------------------------- #
# read-path correctness regressions (sentinels, id validation, aliasing)
# --------------------------------------------------------------------------- #
def _popularity_artifact(n_users, n_items, seen_rows):
    """Tiny popularity artifact with an explicit per-user seen-item list."""
    indptr = np.zeros(n_users + 1, dtype=np.int64)
    indices = []
    for user in range(n_users):
        row = sorted(seen_rows.get(user, ()))
        indptr[user + 1] = indptr[user] + len(row)
        indices.extend(row)
    return ServingArtifact(
        "popularity",
        {"item_scores": np.arange(n_items, dtype=np.float64)},
        n_users=n_users, n_items=n_items,
        seen=(indptr, np.asarray(indices, dtype=np.int64)))


class TestSentinelSlots:
    def test_masked_items_never_leak_into_results(self):
        """A user who has seen all but 2 of the catalogue, asked for k=10,
        gets exactly 2 real items and 8 ``-1``/-inf sentinel slots."""
        n_items = 12
        artifact = _popularity_artifact(
            n_users=2, n_items=n_items,
            seen_rows={0: range(n_items - 2)})  # user 0 has 2 unseen items
        result = artifact.query(Query(users=[0], k=10))
        # The two unseen items rank first (popularity orders by id).
        np.testing.assert_array_equal(result.items[0, :2],
                                      [n_items - 1, n_items - 2])
        np.testing.assert_array_equal(result.items[0, 2:], -1)
        assert np.all(np.isneginf(result.scores[0, 2:]))
        assert np.all(np.isfinite(result.scores[0, :2]))
        # Seen items must not appear anywhere in the answer.
        assert not np.isin(result.items[0], np.arange(n_items - 2)).any()

    def test_sentinels_trail_real_recommendations(self):
        artifact = _popularity_artifact(
            n_users=3, n_items=8, seen_rows={1: range(5)})
        result = artifact.query(Query(users=[0, 1, 2], k=6))
        # Unmasked users get full rows; the masked user gets 3 + 3 sentinel.
        assert not (result.items[0] == -1).any()
        np.testing.assert_array_equal(result.items[1, 3:], -1)
        assert (result.items[1, :3] >= 0).all()

    def test_blocklist_can_exhaust_the_catalogue(self):
        artifact = _popularity_artifact(n_users=1, n_items=4, seen_rows={})
        result = artifact.query(Query(
            users=[0], k=3, exclude_seen=False,
            exclude_items=np.arange(4)))
        np.testing.assert_array_equal(result.items, [[-1, -1, -1]])
        assert np.all(np.isneginf(result.scores))

    def test_candidate_path_sentinels_do_not_wrap(self):
        """On the candidate path the sentinel must be applied *after* the
        candidate-id mapping — a ``-1`` column index would wrap through
        ``take_along_axis`` and resurrect a masked item."""
        artifact = _popularity_artifact(
            n_users=1, n_items=10, seen_rows={0: [2, 5, 7]})
        result = artifact.query(Query(
            users=[0], k=3, candidates=[[2, 5, 7]]))  # all seen
        np.testing.assert_array_equal(result.items, [[-1, -1, -1]])
        assert np.all(np.isneginf(result.scores))


class TestUserIdValidation:
    def test_negative_users_rejected_at_query_construction(self):
        with pytest.raises(ValueError, match="non-negative"):
            Query(users=[3, -1, 2])

    def test_negative_scalar_user_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Query(users=-1)

    def test_artifact_rejects_out_of_range_users(self, fitted_mars):
        artifact = fitted_mars.export_serving()
        with pytest.raises(ValueError, match="out of range"):
            artifact.query(Query(users=[artifact.n_users], k=3))
        with pytest.raises(ValueError, match="out of range"):
            artifact.score_items_batch([artifact.n_users + 7], [[0, 1]])

    def test_in_range_users_still_served(self, fitted_mars):
        artifact = fitted_mars.export_serving()
        result = artifact.query(Query(users=[0, artifact.n_users - 1], k=3))
        assert result.items.shape == (2, 3)


class TestCacheAliasing:
    def test_cached_row_does_not_alias_the_batch_array(self, fitted_mars,
                                                       monkeypatch):
        """``_execute`` must cache a *copy* of each per-user row — a view
        would pin the whole ``(U, k)`` micro-batch allocation in the LRU
        for as long as any single cached row lives."""
        service = RecommenderService(fitted_mars.export_serving(),
                                     max_wait_ms=0.0)
        captured = []
        original = service._guarded_query

        def capturing(name, artifact, query):
            result = original(name, artifact, query)
            captured.append(result.items)
            return result

        monkeypatch.setattr(service, "_guarded_query", capturing)
        service.recommend(4, k=5)
        assert len(captured) == 1

        name = service.registry.names()[0]
        version = service.registry.version(name)
        cached = service._cache.get(
            (name, version, 4, 5, True, "exact", None, None))
        assert cached is not None
        assert not np.shares_memory(cached, captured[0])

    def test_handed_out_row_does_not_alias_the_batch_array(self, fitted_mars,
                                                           monkeypatch):
        service = RecommenderService(fitted_mars.export_serving(),
                                     max_wait_ms=0.0, cache_size=0)
        captured = []
        original = service._guarded_query

        def capturing(name, artifact, query):
            result = original(name, artifact, query)
            captured.append(result.items)
            return result

        monkeypatch.setattr(service, "_guarded_query", capturing)
        row = service.recommend(2, k=4)
        assert not np.shares_memory(row, captured[0])


class TestRegistryErrorMessages:
    def test_version_matches_get_error_contract(self, fitted):
        registry = ModelRegistry()
        registry.publish("cml", fitted["CML"].export_serving())
        with pytest.raises(KeyError, match=r"no model named 'missing'"):
            registry.version("missing")
        with pytest.raises(KeyError, match=r"available: \['cml'\]"):
            registry.version("missing")
        # The happy path is unchanged.
        assert registry.version("cml") == 1
