"""Tests for negative/user samplers and the triplet batcher."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    FrequencyBiasedUserSampler,
    InteractionMatrix,
    PopularityNegativeSampler,
    TripletBatcher,
    UniformNegativeSampler,
)


@pytest.fixture
def interactions():
    rng = np.random.default_rng(0)
    users, items = [], []
    for user in range(30):
        # user u interacts with u+1 items => heterogeneous activity
        chosen = rng.choice(50, size=min(50, user + 1), replace=False)
        users.extend([user] * len(chosen))
        items.extend(chosen.tolist())
    return InteractionMatrix(30, 50, users, items)


class TestUniformNegativeSampler:
    def test_negatives_are_never_positives(self, interactions):
        sampler = UniformNegativeSampler(interactions, random_state=0)
        for user in range(interactions.n_users):
            positives = set(interactions.items_of_user(user).tolist())
            for item in sampler.sample(user, size=20):
                assert item not in positives

    def test_sample_batch_shape(self, interactions):
        sampler = UniformNegativeSampler(interactions, random_state=0)
        users = np.array([0, 5, 5, 29])
        out = sampler.sample_batch(users)
        assert out.shape == (4,)
        assert out.dtype == np.int64

    def test_dense_user_falls_back_to_enumeration(self):
        # user 0 has interacted with all but one item
        m = InteractionMatrix(1, 5, [0, 0, 0, 0], [0, 1, 2, 3])
        sampler = UniformNegativeSampler(m, random_state=0, max_rejections=2)
        for _ in range(5):
            assert sampler.sample(0, 1)[0] == 4

    def test_fully_dense_user_raises(self):
        m = InteractionMatrix(1, 3, [0, 0, 0], [0, 1, 2])
        sampler = UniformNegativeSampler(m, random_state=0)
        with pytest.raises(ValueError):
            sampler.sample(0)


class TestPopularityNegativeSampler:
    def test_negatives_valid(self, interactions):
        sampler = PopularityNegativeSampler(interactions, random_state=0)
        positives = set(interactions.items_of_user(3).tolist())
        for item in sampler.sample(3, size=30):
            assert item not in positives

    def test_popular_items_sampled_more_often(self):
        # item 0 very popular, item 9 never interacted: among negatives for a
        # user who interacted with neither, item 0 should dominate item 9.
        users = list(range(1, 20))
        items = [0] * 19
        m = InteractionMatrix(21, 10, users, items)
        sampler = PopularityNegativeSampler(m, exponent=1.0, random_state=0)
        draws = sampler.sample(20, size=400)
        assert np.sum(draws == 0) > np.sum(draws == 9)

    def test_invalid_exponent_rejected(self, interactions):
        with pytest.raises(ValueError):
            PopularityNegativeSampler(interactions, exponent=-1.0)


class TestFrequencyBiasedUserSampler:
    def test_probabilities_sum_to_one(self, interactions):
        sampler = FrequencyBiasedUserSampler(interactions, beta=0.8, random_state=0)
        assert sampler.probabilities.sum() == pytest.approx(1.0)

    def test_active_users_sampled_more(self, interactions):
        sampler = FrequencyBiasedUserSampler(interactions, beta=1.0, random_state=0)
        draws = sampler.sample(5000)
        # user 29 has 30 interactions, user 0 has 1
        assert np.sum(draws == 29) > np.sum(draws == 0)

    def test_beta_zero_is_uniform_over_active_users(self, interactions):
        sampler = FrequencyBiasedUserSampler(interactions, beta=0.0, random_state=0)
        probs = sampler.probabilities
        active = interactions.user_degrees() > 0
        assert np.allclose(probs[active], 1.0 / active.sum())

    def test_matches_eq10_formula(self, interactions):
        beta = 0.8
        sampler = FrequencyBiasedUserSampler(interactions, beta=beta, random_state=0)
        freq = interactions.user_degrees().astype(float)
        expected = freq ** beta / (freq ** beta).sum()
        assert np.allclose(sampler.probabilities, expected)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            m = InteractionMatrix(2, 2, [0], [0])
            reduced_degrees = m  # matrix with a single interaction is fine...
            # build a matrix with zero interactions by removing impossible:
            FrequencyBiasedUserSampler(
                InteractionMatrix(2, 2, [], []), beta=0.5
            )

    def test_invalid_beta_rejected(self, interactions):
        with pytest.raises(ValueError):
            FrequencyBiasedUserSampler(interactions, beta=-0.5)


class TestTripletBatcher:
    def test_batch_shapes_and_validity(self, interactions):
        batcher = TripletBatcher(interactions, batch_size=64, random_state=0)
        batch = batcher.sample_batch()
        assert len(batch) == 64
        for user, pos, neg in zip(batch.users, batch.positives, batch.negatives):
            assert (int(user), int(pos)) in interactions
            assert (int(user), int(neg)) not in interactions

    def test_epoch_covers_roughly_all_interactions(self, interactions):
        batcher = TripletBatcher(interactions, batch_size=100, random_state=0)
        total = sum(len(batch) for batch in batcher.epoch())
        assert total >= interactions.n_interactions

    def test_uniform_user_sampling_mode(self, interactions):
        batcher = TripletBatcher(interactions, batch_size=32,
                                 user_sampling="uniform", random_state=0)
        batch = batcher.sample_batch()
        assert len(batch) == 32

    def test_invalid_sampling_mode_rejected(self, interactions):
        with pytest.raises(ValueError):
            TripletBatcher(interactions, user_sampling="bogus")

    def test_frequency_mode_prefers_active_users(self, interactions):
        batcher = TripletBatcher(interactions, batch_size=2000, beta=1.0,
                                 random_state=0)
        batch = batcher.sample_batch()
        active_count = np.sum(batch.users >= 25)   # 5 most active users
        inactive_count = np.sum(batch.users < 5)   # 5 least active users
        assert active_count > inactive_count

    def test_custom_batch_size_override(self, interactions):
        batcher = TripletBatcher(interactions, batch_size=16, random_state=0)
        assert len(batcher.sample_batch(batch_size=7)) == 7


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000),
       batch_size=st.integers(min_value=1, max_value=64))
def test_property_triplets_always_consistent(seed, batch_size):
    rng = np.random.default_rng(seed)
    n_users, n_items = 15, 25
    users, items = [], []
    for user in range(n_users):
        chosen = rng.choice(n_items, size=rng.integers(1, 10), replace=False)
        users.extend([user] * len(chosen))
        items.extend(chosen.tolist())
    interactions = InteractionMatrix(n_users, n_items, users, items)
    batcher = TripletBatcher(interactions, batch_size=batch_size, random_state=seed)
    batch = batcher.sample_batch()
    assert len(batch) == batch_size
    for user, pos, neg in zip(batch.users, batch.positives, batch.negatives):
        assert (int(user), int(pos)) in interactions
        assert (int(user), int(neg)) not in interactions
