"""Certification suite for the streaming subsystem.

The contracts under test (ISSUE acceptance criteria):

* **Replay reproducibility** — draining the same seeded event stream twice
  through :class:`StreamingTrainer` + ``fit_more`` produces bitwise-identical
  parameter tables, including through table growth.
* **Delta parity** — a delta-refreshed :class:`ServingArtifact` answers
  bitwise-identically to a full re-export of the same model state, per
  family, including through a ``compressed=False`` save + ``mmap_mode="r"``
  reload.
* **Cold start** — users the model has never seen get non-degenerate
  popularity answers, never an error.
* **Temporal protocol** — no test event precedes its user's train horizon;
  prequential cumulative counters are monotone under replay; the batched
  scoring path matches the per-event reference loop exactly.
* **Durability** — the event log survives torn tails, detects corruption of
  complete frames, and the matrix pair-key cache is never stale after an
  append.
* **Cache invalidation** — a response cached against the pre-delta version
  is never served after ``publish_delta`` hot-swaps the model.
"""

import numpy as np
import pytest

from repro.baselines.bpr import BPR
from repro.baselines.cml import CML
from repro.baselines.transcf import TransCF
from repro.core import MARS
from repro.data.interactions import InteractionMatrix
from repro.data.synthetic import generate_event_stream
from repro.eval.protocol import PrequentialEvaluator, TemporalSplitEvaluator
from repro.reliability.errors import ArtifactIntegrityError
from repro.serving.artifact import (
    ArtifactDelta,
    ServingArtifact,
    load_delta,
    make_delta,
    save_delta,
)
from repro.serving.query import Query
from repro.serving.service import ModelRegistry, RecommenderService
from repro.streaming import (
    ColdStartPolicy,
    EventLog,
    EventLogCorruptionError,
    InMemoryStream,
    InteractionEvent,
    StreamingTrainer,
)

N_USERS, N_ITEMS = 40, 60


def _events(n=300, seed=0, n_users=N_USERS, n_items=N_ITEMS):
    return generate_event_stream(n_users=n_users, n_items=n_items,
                                 n_events=n, random_state=seed)


def _warm_matrix(events):
    users = np.fromiter((e.user for e in events), dtype=np.int64)
    items = np.fromiter((e.item for e in events), dtype=np.int64)
    return InteractionMatrix(int(users.max()) + 1, int(items.max()) + 1,
                             users, items)


def _trainer(model_cls, warm, *, seed=7, **kwargs):
    model = model_cls(embedding_dim=8, n_epochs=2, random_state=3,
                      **kwargs).fit(_warm_matrix(warm))
    return StreamingTrainer(model, epochs_per_refresh=1, random_state=seed)


# --------------------------------------------------------------------------- #
# event streams and the durable log
# --------------------------------------------------------------------------- #
class TestEventStream:
    def test_generator_is_sorted_seeded_and_in_range(self):
        stream = _events(200, seed=4)
        assert [e.timestamp for e in stream] == sorted(
            e.timestamp for e in stream)
        assert all(0 <= e.user < N_USERS and 0 <= e.item < N_ITEMS
                   for e in stream)
        again = _events(200, seed=4)
        assert stream == again
        assert stream != _events(200, seed=5)

    def test_drifting_popularity_changes_head(self):
        stream = _events(4000, seed=1, n_items=50)
        early = np.bincount([e.item for e in stream[:1000]], minlength=50)
        late = np.bincount([e.item for e in stream[-1000:]], minlength=50)
        # The most popular early item should lose its crown under drift.
        assert early.argmax() != late.argmax()

    def test_in_memory_stream_replays(self):
        stream = InMemoryStream(_events(50))
        assert list(stream.events()) == list(stream.events())
        assert len(stream) == 50

    def test_event_log_roundtrip(self, tmp_path):
        log = EventLog(tmp_path / "events.log")
        batch = _events(64, seed=2)
        assert log.append(batch[:40]) == 40
        assert log.append(batch[40:]) == 24
        assert log.append([]) == 0
        replayed = list(EventLog(tmp_path / "events.log").events())
        assert replayed == batch
        assert len(log) == 64

    def test_event_log_tolerates_and_recovers_torn_tail(self, tmp_path):
        path = tmp_path / "events.log"
        log = EventLog(path)
        batch = _events(30, seed=3)
        log.append(batch)
        intact = path.stat().st_size
        log.append(_events(10, seed=9))
        with open(path, "r+b") as handle:  # simulate a crash mid-append
            handle.truncate(intact + 13)
        assert list(EventLog(path).events()) == batch  # tail ignored
        dropped = EventLog(path).recover()
        assert dropped == 13
        assert path.stat().st_size == intact
        assert EventLog(path).recover() == 0  # idempotent

    def test_event_log_detects_corrupt_frame(self, tmp_path):
        path = tmp_path / "events.log"
        EventLog(path).append(_events(20, seed=5))
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # bit-flip inside a complete frame
        path.write_bytes(bytes(data))
        with pytest.raises(EventLogCorruptionError):
            list(EventLog(path).events())

    def test_event_log_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not-a-log"
        path.write_bytes(b"something else entirely")
        with pytest.raises(EventLogCorruptionError):
            EventLog(path)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            InteractionEvent(timestamp=0.0, user=-1, item=0)


# --------------------------------------------------------------------------- #
# matrix append + cache invalidation
# --------------------------------------------------------------------------- #
class TestAppendInteractions:
    def test_incremental_key_merge_matches_rebuild(self):
        matrix = _warm_matrix(_events(200, seed=6))
        matrix.encoded_positive_keys()  # arm the incremental path
        extra = _events(120, seed=8)
        users = np.fromiter((e.user for e in extra), dtype=np.int64)
        items = np.fromiter((e.item for e in extra), dtype=np.int64)
        matrix.append_interactions(users, items)
        incremental = matrix.encoded_positive_keys().copy()
        rebuilt = _warm_matrix(_events(200, seed=6))
        rebuilt.append_interactions(users, items)
        np.testing.assert_array_equal(incremental,
                                      rebuilt.encoded_positive_keys())

    def test_append_bumps_version_and_refreshes_keys(self):
        matrix = _warm_matrix(_events(100, seed=1))
        keys_before = matrix.encoded_positive_keys().copy()
        version = matrix.version
        new_user = matrix.n_users  # grows the matrix
        matrix.append_interactions([new_user], [0],
                                   n_users=new_user + 1)
        assert matrix.version == version + 1
        keys_after = matrix.encoded_positive_keys()
        assert keys_after.size == keys_before.size + 1
        assert np.int64(new_user) * matrix.n_items in keys_after

    def test_growth_changes_key_encoding(self):
        matrix = _warm_matrix(_events(100, seed=1))
        matrix.encoded_positive_keys()
        matrix.append_interactions([0], [matrix.n_items],
                                   n_items=matrix.n_items + 1)
        # Every key re-encodes under the new n_items stride.
        expected = _warm_matrix(_events(100, seed=1))
        expected.append_interactions([0], [expected.n_items],
                                     n_items=expected.n_items + 1)
        np.testing.assert_array_equal(matrix.encoded_positive_keys(),
                                      expected.encoded_positive_keys())


# --------------------------------------------------------------------------- #
# online trainer: replay reproducibility, growth, cold start
# --------------------------------------------------------------------------- #
class TestStreamingTrainer:
    def _run(self, model_cls, seed=7, **kwargs):
        warm, stream = _events(250, seed=0), _events(200, seed=11,
                                                     n_users=N_USERS + 6,
                                                     n_items=N_ITEMS + 9)
        trainer = _trainer(model_cls, warm, seed=seed, **kwargs)
        reports = trainer.drain(InMemoryStream(stream), batch_events=60)
        return trainer, reports

    def test_seeded_replay_is_bitwise_reproducible(self):
        first, _ = self._run(BPR)
        second, _ = self._run(BPR)
        for (name, p1), (_, p2) in zip(
                first.model.network.named_parameters(),
                second.model.network.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data, err_msg=name)
        assert first.model.loss_history_ == second.model.loss_history_

    def test_different_seed_diverges(self):
        first, _ = self._run(BPR, seed=7)
        second, _ = self._run(BPR, seed=8)
        assert any(
            not np.array_equal(p1.data, p2.data)
            for (_, p1), (_, p2) in zip(
                first.model.network.named_parameters(),
                second.model.network.named_parameters()))

    def test_tables_grow_for_new_ids(self):
        trainer, reports = self._run(BPR)
        assert sum(r.n_new_users for r in reports) > 0
        assert sum(r.n_new_items for r in reports) > 0
        net = trainer.model.network
        assert net.user_embeddings.n_embeddings == trainer.interactions.n_users
        assert net.item_embeddings.n_embeddings == trainer.interactions.n_items
        assert net.item_bias.data.shape[0] == trainer.interactions.n_items

    def test_spherical_tables_stay_on_sphere_after_growth(self):
        trainer, _ = self._run(CML)
        weights = trainer.model.network.item_embeddings.weight.data
        norms = np.linalg.norm(weights, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)  # CML censors to the unit ball

    def test_cold_user_gets_nondegenerate_popularity_answer(self):
        warm = _events(250, seed=0)
        trainer = _trainer(BPR, warm)
        cold_user = trainer.interactions.n_users + 100
        ranking = trainer.recommend(cold_user, k=10)
        assert ranking.shape == (10,)
        assert np.unique(ranking).size == 10
        degrees = trainer.interactions.item_degrees()
        # Non-degenerate: the fallback ranks by observed popularity.
        assert degrees[ranking[0]] == degrees.max()
        policy = ColdStartPolicy(trainer.interactions)
        np.testing.assert_array_equal(ranking,
                                      policy.popularity_ranking(10))

    def test_warm_user_uses_model_scores(self):
        warm = _events(250, seed=0)
        trainer = _trainer(BPR, warm)
        busiest = int(trainer.interactions.user_degrees().argmax())
        np.testing.assert_array_equal(
            trainer.recommend(busiest, k=5),
            trainer.model.recommend(busiest, k=5))

    def test_score_candidates_mixes_cold_and_warm_rows(self):
        warm = _events(250, seed=0)
        trainer = _trainer(BPR, warm)
        cold_user = trainer.interactions.n_users + 3
        busiest = int(trainer.interactions.user_degrees().argmax())
        matrix = np.tile(np.arange(6, dtype=np.int64), (2, 1))
        scores = trainer.score_candidates(
            np.array([busiest, cold_user]), matrix)
        assert scores.shape == (2, 6)
        assert np.isfinite(scores).all()
        policy = ColdStartPolicy(trainer.interactions)
        np.testing.assert_array_equal(
            scores[1], policy.popularity_candidate_scores(matrix[1:2])[0])


# --------------------------------------------------------------------------- #
# models with interaction-derived state outside the network
# --------------------------------------------------------------------------- #
class TestStreamingModelHooks:
    """``_on_interactions_changed`` keeps non-network state in sync.

    MARS keeps a per-user margin vector and sphere constraints outside
    the embedding tables; TransCF snapshots a normalised adjacency at
    fit time.  Without the hook both crash (or silently go stale) the
    moment the trainer grows the id ranges.
    """

    def _grown(self, model_cls, **kwargs):
        warm, stream = _events(250, seed=0), _events(
            150, seed=11, n_users=N_USERS + 4, n_items=N_ITEMS + 5)
        trainer = _trainer(model_cls, warm, **kwargs)
        trainer.drain(InMemoryStream(stream), batch_events=50)
        return trainer

    def test_mars_margins_and_sphere_survive_growth(self):
        trainer = self._grown(MARS, n_facets=2)
        model = trainer.model
        assert model.margins_.shape[0] == trainer.interactions.n_users
        for table in (model.network.user_embeddings,
                      model.network.item_embeddings):
            norms = np.linalg.norm(table.weight.data, axis=-1)
            np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_transcf_adjacency_tracks_growth(self):
        trainer = self._grown(TransCF)
        matrix = trainer.interactions
        assert trainer.model._norm_user.shape == (matrix.n_users,
                                                  matrix.n_items)
        assert trainer.model._norm_item.shape == (matrix.n_items,
                                                  matrix.n_users)


# --------------------------------------------------------------------------- #
# temporal evaluation
# --------------------------------------------------------------------------- #
class TestTemporalSplit:
    def test_no_test_event_precedes_the_users_train_horizon(self):
        events = _events(500, seed=2)
        ev = TemporalSplitEvaluator(events, split_time=350.0,
                                    n_users=N_USERS, n_items=N_ITEMS,
                                    n_negatives=20, random_state=1)
        train = ev.train_matrix()
        assert train.n_users == N_USERS and train.n_items == N_ITEMS
        train_users, _, train_stamps = ev._train
        assert (train_stamps < 350.0).all()
        assert (ev._test_stamps >= 350.0).all()
        horizon = {}
        for user, stamp in zip(train_users, train_stamps):
            horizon[int(user)] = min(horizon.get(int(user), np.inf),
                                     float(stamp))
        for user, stamp in zip(ev._test_users, ev._test_stamps):
            assert int(user) in horizon
            assert float(stamp) > horizon[int(user)]

    def test_negatives_never_future_positives(self):
        events = _events(500, seed=2)
        ev = TemporalSplitEvaluator(events, split_time=350.0,
                                    n_negatives=20, random_state=1)
        lifetime = {}
        for event in events:
            lifetime.setdefault(event.user, set()).add(event.item)
        for user, candidates in zip(ev._test_users, ev._candidates):
            assert not (set(candidates[1:].tolist())
                        & lifetime[int(user)])

    def test_batched_matches_per_event_reference(self):
        events = _events(500, seed=2)
        ev = TemporalSplitEvaluator(events, split_time=350.0,
                                    n_negatives=20, random_state=1)
        model = BPR(embedding_dim=8, n_epochs=2,
                    random_state=3).fit(ev.train_matrix())
        batched = ev.evaluate(model, batched=True)
        reference = ev.evaluate(model, batched=False)
        assert batched.metrics == reference.metrics
        for name in batched.per_user:
            np.testing.assert_array_equal(batched.per_user[name],
                                          reference.per_user[name])

    def test_requires_training_history(self):
        with pytest.raises(ValueError):
            TemporalSplitEvaluator(_events(50, seed=1), split_time=-1.0)


class TestPrequential:
    def _run(self, batched, seed=5, n_batches=None):
        warm, stream = _events(250, seed=0), _events(200, seed=11)
        trainer = _trainer(BPR, warm, seed=9)
        evaluator = PrequentialEvaluator(trainer, n_negatives=15,
                                         random_state=seed)
        source = InMemoryStream(
            stream if n_batches is None else stream[:n_batches * 50])
        evaluator.run(source, batch_events=50, batched=batched)
        return evaluator

    def test_batched_matches_per_event_reference(self):
        batched = self._run(batched=True)
        reference = self._run(batched=False)
        assert batched.n_events == reference.n_events
        assert batched.result().metrics == reference.result().metrics
        assert batched.history == reference.history

    def test_counters_monotone_under_replay(self):
        evaluator = self._run(batched=True)
        counts = [entry["n_events"] for entry in evaluator.history]
        assert counts == sorted(counts) and counts[-1] == evaluator.n_events
        for name in evaluator._sums:
            sums = [entry[name] * entry["n_events"]
                    for entry in evaluator.history]
            assert all(b >= a - 1e-9 for a, b in zip(sums, sums[1:]))

    def test_prefix_replay_agrees(self):
        # Replaying a prefix produces exactly the prefix of the history.
        full = self._run(batched=True)
        prefix = self._run(batched=True, n_batches=2)
        assert prefix.history == full.history[:2]

    def test_replay_is_bitwise_reproducible(self):
        assert self._run(batched=True).history == \
            self._run(batched=True).history


# --------------------------------------------------------------------------- #
# artifact delta refresh
# --------------------------------------------------------------------------- #
class TestDeltaRefresh:
    def _delta_pair(self, model_cls, tmp_path, **kwargs):
        warm, stream = _events(250, seed=0), _events(150, seed=11,
                                                     n_users=N_USERS + 4,
                                                     n_items=N_ITEMS + 5)
        trainer = _trainer(model_cls, warm, **kwargs)
        base = trainer.export_serving("m").build_index(n_cells=4,
                                                       random_state=13)
        trainer.drain(InMemoryStream(stream), batch_events=50)
        delta = trainer.export_delta(base)
        full = trainer.export_serving("m")
        return base, delta, full

    @pytest.mark.parametrize("model_cls", [BPR, CML],
                             ids=["dot_bias", "euclidean"])
    def test_delta_matches_full_reexport_bitwise_through_mmap(
            self, model_cls, tmp_path):
        base, delta, full = self._delta_pair(model_cls, tmp_path)
        patched = base.delta_update(delta, index_random_state=13)
        assert patched.n_users == full.n_users
        assert patched.n_items == full.n_items
        for name, tensor in full.tensors.items():
            np.testing.assert_array_equal(np.asarray(tensor),
                                          np.asarray(patched.tensors[name]),
                                          err_msg=name)
        query = Query(users=np.arange(patched.n_users), k=10,
                      exclude_seen=True)
        direct, reference = patched.query(query), full.query(query)
        np.testing.assert_array_equal(direct.items, reference.items)
        np.testing.assert_array_equal(direct.scores, reference.scores)
        # ... and through a raw (uncompressed) save + mmap reload.
        path = patched.save(tmp_path / "patched.npz", compressed=False)
        mapped = ServingArtifact.load(path, mmap_mode="r")
        assert mapped.memory_mapped
        served = mapped.query(query)
        np.testing.assert_array_equal(served.items, reference.items)
        np.testing.assert_array_equal(served.scores, reference.scores)
        assert mapped.content_digest() == patched.content_digest()

    def test_delta_bundle_roundtrip(self, tmp_path):
        base, delta, _ = self._delta_pair(BPR, tmp_path)
        path = save_delta(delta, tmp_path / "refresh.delta.npz")
        loaded = load_delta(path)
        assert loaded.base_digest == delta.base_digest
        assert loaded.n_users == delta.n_users
        assert sorted(loaded.updates) == sorted(delta.updates)
        patched = base.delta_update(loaded, index_random_state=13)
        reference = base.delta_update(delta, index_random_state=13)
        assert patched.content_digest() == reference.content_digest()

    def test_delta_bundle_detects_corruption(self, tmp_path):
        _, delta, _ = self._delta_pair(BPR, tmp_path)
        path = save_delta(delta, tmp_path / "refresh.delta.npz")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(Exception):  # digest or zip-structure failure
            load_delta(path)

    def test_full_loader_refuses_delta_files(self, tmp_path):
        _, delta, _ = self._delta_pair(BPR, tmp_path)
        path = save_delta(delta, tmp_path / "refresh.delta.npz")
        with pytest.raises(ArtifactIntegrityError, match="delta bundle"):
            ServingArtifact.load(path)

    def test_delta_loader_refuses_full_artifacts(self, tmp_path):
        base, _, _ = self._delta_pair(BPR, tmp_path)
        path = base.save(tmp_path / "full.artifact.npz")
        with pytest.raises(ArtifactIntegrityError,
                           match="not a delta bundle"):
            load_delta(path)

    def test_wrong_base_is_refused(self, tmp_path):
        _, delta, full = self._delta_pair(BPR, tmp_path)
        with pytest.raises(ArtifactIntegrityError, match="wrong base"):
            full.delta_update(delta)

    def test_unchanged_index_is_shared_and_patched_index_consistent(
            self, tmp_path):
        base, delta, _ = self._delta_pair(BPR, tmp_path)
        patched = base.delta_update(delta, index_random_state=13)
        index = patched.index
        assert index is not None
        assert index.n_items == patched.n_items
        # Every item sits in the cell whose centroid scores it highest —
        # the invariant both k-means assignment and the patch share.
        from repro.serving.retrieval import APPROX_FAMILIES
        vectors = APPROX_FAMILIES[patched.family].item_vectors(
            dict(patched.tensors))
        cent_sq = np.einsum("cd,cd->c", index.centroids, index.centroids)
        affinity = 2.0 * (vectors @ index.centroids.T) - cent_sq[None, :]
        np.testing.assert_array_equal(index.assignments(),
                                      np.argmax(affinity, axis=1))

    def test_drift_threshold_triggers_full_rebuild(self, tmp_path):
        base, delta, _ = self._delta_pair(BPR, tmp_path)
        rebuilt = base.delta_update(delta, drift_threshold=0.0,
                                    index_random_state=13)
        patched = base.delta_update(delta, drift_threshold=1.0,
                                    index_random_state=13)
        # Patching keeps the base centroids; a rebuild re-clusters.
        np.testing.assert_array_equal(patched.index.centroids,
                                      base.index.centroids)
        assert rebuilt.index.n_cells == base.index.n_cells

    def test_multifacet_growth_ships_facet_tables_wholesale(self, tmp_path):
        warm, stream = _events(250, seed=0), _events(
            150, seed=11, n_users=N_USERS + 4, n_items=N_ITEMS + 5)
        trainer = _trainer(MARS, warm, n_facets=2)
        base = trainer.export_serving("mars")
        trainer.drain(InMemoryStream(stream), batch_events=50)
        delta = trainer.export_delta(base)
        full = trainer.export_serving("mars")
        # The facet tables are (K, n_users, D): growth moves a trailing
        # axis, which row-diffing cannot express, so they ship wholesale.
        wholesale = {name for name, (rows, _) in delta.updates.items()
                     if rows is None}
        assert {"user_facets", "item_facets"} <= wholesale
        assert "spherical" not in delta.updates  # unchanged 0-d scalar
        path = save_delta(delta, tmp_path / "mars.delta.npz")
        loaded = load_delta(path)
        assert {name for name, (rows, _) in loaded.updates.items()
                if rows is None} == wholesale
        patched = base.delta_update(loaded)
        assert patched.content_digest() == full.content_digest()

    def test_scalar_and_new_tensor_ship_wholesale_and_roundtrip(
            self, tmp_path):
        scores = np.linspace(1.0, 2.0, 8)
        base = ServingArtifact("popularity",
                               {"item_scores": scores,
                                "temperature": np.asarray(0.5)},
                               n_users=4, n_items=8, model_name="pop")
        fresh = ServingArtifact("popularity",
                                {"item_scores": scores[::-1].copy(),
                                 "temperature": np.asarray(0.7),
                                 "aux": np.arange(6.0).reshape(2, 3)},
                                n_users=4, n_items=8, model_name="pop")
        delta = make_delta(base, fresh)
        assert delta.updates["temperature"][0] is None   # 0-d scalar
        assert delta.updates["aux"][0] is None           # brand-new tensor
        assert delta.updates["item_scores"][0] is not None  # plain row diff
        loaded = load_delta(save_delta(delta, tmp_path / "pop.delta.npz"))
        assert loaded.updates["temperature"][0] is None
        patched = base.delta_update(loaded)
        assert patched.content_digest() == fresh.content_digest()

    def test_row_updates_for_scalar_tensor_are_refused(self):
        base = ServingArtifact("popularity",
                               {"item_scores": np.arange(8.0),
                                "temperature": np.asarray(0.5)},
                               n_users=4, n_items=8, model_name="pop")
        bogus = ArtifactDelta(
            base_digest=base.content_digest(), family="popularity",
            model_name="pop", n_users=4, n_items=8,
            updates={"temperature": (np.asarray([0], dtype=np.int64),
                                     np.asarray([0.7]))})
        with pytest.raises(ArtifactIntegrityError, match="0-d"):
            base.delta_update(bogus)


# --------------------------------------------------------------------------- #
# registry / service integration
# --------------------------------------------------------------------------- #
class TestPublishDelta:
    def _manual_pair(self):
        """Popularity artifacts whose delta provably flips the top item."""
        scores = np.linspace(1.0, 2.0, 8)
        base = ServingArtifact("popularity", {"item_scores": scores},
                               n_users=4, n_items=8, model_name="pop")
        flipped = scores[::-1].copy()
        fresh = ServingArtifact("popularity", {"item_scores": flipped},
                                n_users=4, n_items=8, model_name="pop")
        return base, make_delta(base, fresh), fresh

    def test_registry_publish_delta_bumps_version(self):
        base, delta, fresh = self._manual_pair()
        registry = ModelRegistry()
        registry.publish("pop", base)
        version = registry.publish_delta("pop", delta)
        assert version == 2
        artifact, _, _ = registry.get("pop")
        assert artifact.content_digest() == fresh.content_digest()

    def test_registry_publish_delta_from_path(self, tmp_path):
        base, delta, fresh = self._manual_pair()
        path = save_delta(delta, tmp_path / "pop.delta.npz")
        registry = ModelRegistry()
        registry.publish("pop", base)
        registry.publish_delta("pop", path)
        artifact, _, _ = registry.get("pop")
        assert artifact.content_digest() == fresh.content_digest()

    def test_stale_delta_leaves_live_version_serving(self):
        base, delta, fresh = self._manual_pair()
        registry = ModelRegistry()
        registry.publish("pop", base)
        registry.publish_delta("pop", delta)
        with pytest.raises(ArtifactIntegrityError):
            registry.publish_delta("pop", delta)  # now diffed vs stale base
        artifact, version, _ = registry.get("pop")
        assert version == 2  # the good swap survived the bad one
        assert artifact.content_digest() == fresh.content_digest()

    def test_cached_pre_delta_answer_never_served_post_swap(self):
        base, delta, fresh = self._manual_pair()
        service = RecommenderService({"pop": base}, max_wait_ms=0.0)
        before = service.recommend(1, k=3, exclude_seen=False)
        assert service.stats["cache_misses"] == 1
        np.testing.assert_array_equal(
            before, service.recommend(1, k=3, exclude_seen=False))
        assert service.stats["cache_hits"] == 1  # the row is truly cached
        service.publish_delta("pop", delta)
        after = service.recommend(1, k=3, exclude_seen=False)
        expected = fresh.recommend_batch([1], k=3, exclude_seen=False)[0]
        np.testing.assert_array_equal(after, expected)
        assert not np.array_equal(after, before)  # the flip is observable
