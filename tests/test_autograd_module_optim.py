"""Tests for Module/Parameter containers, layers and optimizers."""

import numpy as np
import pytest

from repro.autograd import (
    SGD,
    Adagrad,
    Adam,
    Embedding,
    Linear,
    MLP,
    Module,
    Parameter,
    RiemannianSGD,
    Sequential,
    Tensor,
)
from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.module import ReLU, Sigmoid


class TinyModel(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(3, 2, random_state=0)
        self.scale = Parameter(np.ones(2))

    def forward(self, x):
        return self.linear(x) * self.scale


class TestModuleContainer:
    def test_named_parameters_recurse(self):
        model = TinyModel()
        names = {name for name, _ in model.named_parameters()}
        assert names == {"linear.weight", "linear.bias", "scale"}

    def test_n_parameters(self):
        model = TinyModel()
        assert model.n_parameters() == 3 * 2 + 2 + 2

    def test_zero_grad_clears_all(self):
        model = TinyModel()
        out = model(Tensor(np.ones((4, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_roundtrip(self):
        model_a = TinyModel()
        model_b = TinyModel()
        model_b.load_state_dict(model_a.state_dict())
        for (_, pa), (_, pb) in zip(model_a.named_parameters(), model_b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_load_state_dict_rejects_unknown_keys(self):
        model = TinyModel()
        state = model.state_dict()
        state["bogus"] = np.zeros(2)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shapes(self):
        model = TinyModel()
        state = model.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(4, 3, random_state=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self):
        layer = Linear(4, 3, bias=False, random_state=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, random_state=0)
        out = emb(np.array([1, 5, 5]))
        assert out.shape == (3, 4)
        assert np.allclose(out.data[1], out.data[2])

    def test_embedding_spherical_init_unit_norm(self):
        emb = Embedding(20, 6, spherical=True, random_state=0)
        norms = np.linalg.norm(emb.weight.data, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-9)
        assert emb.weight.spherical

    def test_embedding_clip_to_unit_ball(self):
        emb = Embedding(5, 3, random_state=0)
        emb.weight.data = emb.weight.data * 100.0
        emb.clip_to_unit_ball()
        assert np.all(np.linalg.norm(emb.weight.data, axis=1) <= 1.0 + 1e-9)

    def test_embedding_project_to_sphere(self):
        emb = Embedding(5, 3, random_state=0)
        emb.project_to_sphere()
        assert np.allclose(np.linalg.norm(emb.weight.data, axis=1), 1.0, atol=1e-9)

    def test_sequential_composition(self):
        net = Sequential(Linear(3, 4, random_state=0), ReLU(), Linear(4, 1, random_state=1))
        out = net(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 1)
        assert len(net) == 3

    def test_mlp_forward_and_params(self):
        mlp = MLP([6, 4, 1], output_activation=Sigmoid(), random_state=0)
        out = mlp(Tensor(np.zeros((3, 6))))
        assert out.shape == (3, 1)
        assert np.all((out.data > 0) & (out.data < 1))

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])


class TestInitializers:
    def test_normal_shape_and_scale(self):
        w = init.normal((1000,), std=0.5, random_state=0)
        assert abs(w.std() - 0.5) < 0.05

    def test_uniform_bounds(self):
        w = init.uniform((100,), low=-1.0, high=2.0, random_state=0)
        assert w.min() >= -1.0 and w.max() < 2.0

    def test_xavier_uniform_limit(self):
        w = init.xavier_uniform((10, 20), random_state=0)
        limit = np.sqrt(6.0 / 30.0)
        assert np.all(np.abs(w) <= limit + 1e-12)

    def test_xavier_normal_scale(self):
        w = init.xavier_normal((200, 300), random_state=0)
        assert abs(w.std() - np.sqrt(2.0 / 500.0)) < 0.01

    def test_spherical_rows_unit_norm(self):
        w = init.spherical((50, 7), random_state=0)
        assert np.allclose(np.linalg.norm(w, axis=1), 1.0)

    def test_identity_stack_near_identity(self):
        w = init.identity_stack(3, 4, noise=0.0)
        assert w.shape == (3, 4, 4)
        assert np.allclose(w[1], np.eye(4))


def _quadratic_loss(parameter, target):
    diff = parameter - Tensor(target)
    return (diff * diff).sum()


class TestOptimizers:
    def _converges(self, optimizer_factory, iterations=300, tol=1e-2):
        param = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        opt = optimizer_factory([param])
        for _ in range(iterations):
            opt.zero_grad()
            loss = _quadratic_loss(param, target)
            loss.backward()
            opt.step()
        return np.allclose(param.data, target, atol=tol)

    def test_sgd_converges_on_quadratic(self):
        assert self._converges(lambda ps: SGD(ps, lr=0.1))

    def test_sgd_with_momentum_converges(self):
        assert self._converges(lambda ps: SGD(ps, lr=0.05, momentum=0.9))

    def test_adagrad_converges(self):
        assert self._converges(lambda ps: Adagrad(ps, lr=1.0))

    def test_adam_converges(self):
        assert self._converges(lambda ps: Adam(ps, lr=0.1))

    def test_sgd_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([10.0]))
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (param * 0.0).sum().backward()
        opt.step()
        assert abs(param.data[0]) < 10.0

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_negative_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(2))], lr=-0.1)

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(2))], lr=0.1, momentum=1.5)

    def test_step_skips_parameters_without_grad(self):
        param = Parameter(np.array([1.0, 2.0]))
        before = param.data.copy()
        SGD([param], lr=0.5).step()
        assert np.allclose(param.data, before)


class TestRiemannianSGD:
    def test_spherical_rows_stay_on_sphere(self):
        rng = np.random.default_rng(0)
        param = Parameter(init.spherical((8, 5), random_state=0), spherical=True)
        opt = RiemannianSGD([param], lr=0.1)
        for _ in range(20):
            opt.zero_grad()
            target = Tensor(rng.normal(size=(8, 5)))
            loss = (F.cosine_similarity(param, target, axis=-1) * -1.0).sum()
            loss.backward()
            opt.step()
        assert np.allclose(np.linalg.norm(param.data, axis=1), 1.0, atol=1e-8)

    def test_maximizing_cosine_aligns_direction(self):
        target_direction = np.array([[0.0, 1.0, 0.0]])
        param = Parameter(init.spherical((1, 3), random_state=3), spherical=True)
        opt = RiemannianSGD([param], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            loss = (F.cosine_similarity(param, Tensor(target_direction), axis=-1) * -1.0).sum()
            loss.backward()
            opt.step()
        cosine = float((param.data @ target_direction.T).item())
        assert cosine > 0.99

    def test_euclidean_parameters_use_plain_sgd(self):
        param = Parameter(np.array([4.0]))
        opt = RiemannianSGD([param], lr=0.5, euclidean_lr=0.1)
        opt.zero_grad()
        (param * param).sum().backward()
        opt.step()
        assert param.data[0] == pytest.approx(4.0 - 0.1 * 8.0)

    def test_calibration_changes_step_size(self):
        # The calibration factor 1 + x·∇f/‖∇f‖ only differs from 1 when the
        # gradient has a radial component, so use a dot-product loss (whose
        # gradient is not tangent to the sphere) rather than a cosine loss.
        start = init.spherical((1, 4), random_state=1)
        target = np.array([[1.0, 0.0, 0.0, 0.0]])

        def one_step(calibrate):
            param = Parameter(start.copy(), spherical=True)
            opt = RiemannianSGD([param], lr=0.3, calibrate=calibrate)
            opt.zero_grad()
            loss = (F.dot(param, Tensor(target), axis=-1) * -1.0).sum()
            loss.backward()
            opt.step()
            return param.data

        calibrated = one_step(True)
        plain = one_step(False)
        assert not np.allclose(calibrated, plain)

    def test_calibration_factor_is_one_for_tangent_gradients(self):
        # For a pure cosine loss the Euclidean gradient is already tangent,
        # so calibrated and plain Riemannian steps coincide exactly.
        start = init.spherical((1, 4), random_state=1)
        target = np.array([[1.0, 0.0, 0.0, 0.0]])

        def one_step(calibrate):
            param = Parameter(start.copy(), spherical=True)
            opt = RiemannianSGD([param], lr=0.3, calibrate=calibrate)
            opt.zero_grad()
            loss = (F.cosine_similarity(param, Tensor(target), axis=-1) * -1.0).sum()
            loss.backward()
            opt.step()
            return param.data

        assert np.allclose(one_step(True), one_step(False))

    def test_zero_gradient_rows_do_not_move(self):
        param = Parameter(init.spherical((3, 4), random_state=2), spherical=True)
        before = param.data.copy()
        param.grad = np.zeros_like(param.data)
        RiemannianSGD([param], lr=0.5).step()
        assert np.allclose(param.data, before)
