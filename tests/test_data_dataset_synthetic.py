"""Tests for the leave-one-out split, synthetic generator and benchmark presets."""

import numpy as np
import pytest

from repro.data import (
    BENCHMARK_PRESETS,
    ImplicitFeedbackDataset,
    InteractionMatrix,
    MultiFacetSyntheticGenerator,
    SyntheticConfig,
    list_benchmarks,
    load_benchmark,
    train_validation_test_split,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    config = SyntheticConfig(n_users=60, n_items=80, n_facets=3,
                             interactions_per_user=12.0)
    return MultiFacetSyntheticGenerator(config, random_state=0).generate_dataset()


class TestLeaveOneOutSplit:
    def test_holds_out_two_items_per_eligible_user(self):
        interactions = InteractionMatrix(
            2, 6,
            user_indices=[0, 0, 0, 0, 1, 1],
            item_indices=[0, 1, 2, 3, 4, 5],
        )
        ds = train_validation_test_split(interactions, random_state=0, min_interactions=3)
        assert ds.test_items[0] >= 0 and ds.validation_items[0] >= 0
        # user 1 has only 2 interactions -> nothing held out
        assert ds.test_items[1] == -1 and ds.validation_items[1] == -1
        assert ds.train.n_interactions == 6 - 2

    def test_held_out_items_not_in_train(self, tiny_dataset):
        for user in tiny_dataset.evaluable_users("test"):
            test_item = tiny_dataset.held_out_item(user, "test")
            val_item = tiny_dataset.held_out_item(user, "validation")
            assert (user, test_item) not in tiny_dataset.train
            assert (user, val_item) not in tiny_dataset.train
            assert test_item != val_item

    def test_timestamps_pick_latest_item_as_test(self):
        interactions = InteractionMatrix(
            1, 4,
            user_indices=[0, 0, 0, 0],
            item_indices=[0, 1, 2, 3],
            timestamps=[10.0, 40.0, 20.0, 30.0],
        )
        ds = train_validation_test_split(interactions, random_state=0)
        assert ds.test_items[0] == 1      # newest timestamp 40
        assert ds.validation_items[0] == 3  # second newest 30

    def test_unknown_split_name_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.evaluable_users("bogus")

    def test_statistics_include_held_out(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        held = int((tiny_dataset.test_items >= 0).sum()
                   + (tiny_dataset.validation_items >= 0).sum())
        assert stats["n_interactions"] == tiny_dataset.train.n_interactions + held

    def test_split_is_deterministic_given_seed(self):
        config = SyntheticConfig(n_users=40, n_items=50, interactions_per_user=8.0)
        a = MultiFacetSyntheticGenerator(config, random_state=7).generate_dataset()
        b = MultiFacetSyntheticGenerator(config, random_state=7).generate_dataset()
        assert np.array_equal(a.test_items, b.test_items)
        assert np.array_equal(a.train.toarray(), b.train.toarray())


class TestSyntheticGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_users=0)
        with pytest.raises(ValueError):
            SyntheticConfig(noise=2.0)
        with pytest.raises(ValueError):
            SyntheticConfig(item_facet_overlap=-0.1)

    def test_generated_shapes(self, tiny_dataset):
        assert tiny_dataset.n_users == 60
        assert tiny_dataset.n_items == 80
        assert tiny_dataset.item_categories.shape == (80,)
        assert tiny_dataset.user_facet_affinities.shape == (60, 3)

    def test_item_categories_are_valid_facets(self, tiny_dataset):
        assert tiny_dataset.item_categories.min() >= 0
        assert tiny_dataset.item_categories.max() < 3

    def test_user_affinities_are_distributions(self, tiny_dataset):
        sums = tiny_dataset.user_facet_affinities.sum(axis=1)
        assert np.allclose(sums, 1.0, atol=1e-8)

    def test_interactions_reflect_facet_affinity(self):
        # With near-deterministic user affinities and no overlap/noise, users
        # should mostly interact with items of their preferred facet.
        config = SyntheticConfig(n_users=80, n_items=120, n_facets=4,
                                 interactions_per_user=15.0,
                                 facet_concentration=0.05,
                                 item_facet_overlap=0.0, noise=0.0)
        gen = MultiFacetSyntheticGenerator(config, random_state=1)
        interactions, item_categories, affinities = gen.generate_interactions()
        agreement = []
        for user in range(config.n_users):
            items = interactions.items_of_user(user)
            if items.size == 0:
                continue
            preferred = int(np.argmax(affinities[user]))
            agreement.append(np.mean(item_categories[items] == preferred))
        assert np.mean(agreement) > 0.6

    def test_density_scales_with_interactions_per_user(self):
        sparse_cfg = SyntheticConfig(n_users=50, n_items=100, interactions_per_user=4.0)
        dense_cfg = SyntheticConfig(n_users=50, n_items=100, interactions_per_user=30.0)
        sparse = MultiFacetSyntheticGenerator(sparse_cfg, random_state=0).generate_interactions()[0]
        dense = MultiFacetSyntheticGenerator(dense_cfg, random_state=0).generate_interactions()[0]
        assert dense.density > sparse.density


class TestBenchmarkPresets:
    def test_all_six_paper_datasets_present(self):
        assert set(list_benchmarks()) == {
            "delicious", "lastfm", "ciao", "bookx", "ml-1m", "ml-20m"
        }

    def test_paper_statistics_recorded(self):
        spec = BENCHMARK_PRESETS["ciao"]
        assert spec.paper_n_users == 7_000
        assert spec.paper_density_percent == pytest.approx(0.19)

    def test_load_benchmark_returns_dataset(self):
        ds = load_benchmark("delicious", random_state=0)
        assert isinstance(ds, ImplicitFeedbackDataset)
        assert ds.name == "delicious"
        assert ds.n_users == BENCHMARK_PRESETS["delicious"].config.n_users

    def test_load_benchmark_unknown_name(self):
        with pytest.raises(KeyError):
            load_benchmark("netflix")

    def test_ml1m_preset_denser_than_bookx(self):
        ml = load_benchmark("ml-1m", random_state=0)
        bookx = load_benchmark("bookx", random_state=0)
        assert ml.train.density > bookx.train.density

    def test_load_benchmark_deterministic(self):
        a = load_benchmark("lastfm", random_state=3)
        b = load_benchmark("lastfm", random_state=3)
        assert np.array_equal(a.test_items, b.test_items)


class TestCsvLoader:
    def test_load_interactions_csv(self, tmp_path):
        path = tmp_path / "mini.csv"
        path.write_text("u1,i1,5,100\nu1,i2,4,200\nu2,i1,3,50\n")
        from repro.data import load_interactions_csv

        m = load_interactions_csv(path)
        assert m.shape == (2, 2)
        assert m.n_interactions == 3
        assert m.has_timestamps

    def test_load_interactions_tsv_two_columns(self, tmp_path):
        path = tmp_path / "mini.tsv"
        path.write_text("a\tx\nb\ty\nb\tx\n")
        from repro.data import load_interactions_csv

        m = load_interactions_csv(path)
        assert m.shape == (2, 2)
        assert not m.has_timestamps

    def test_missing_file_raises(self, tmp_path):
        from repro.data import load_interactions_csv

        with pytest.raises(FileNotFoundError):
            load_interactions_csv(tmp_path / "nope.csv")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("only_one_column\n")
        from repro.data import load_interactions_csv

        with pytest.raises(ValueError):
            load_interactions_csv(path)

    def test_load_benchmark_prefers_raw_file(self, tmp_path):
        raw = tmp_path / "delicious.csv"
        rows = []
        for user in range(5):
            for item in range(4):
                rows.append(f"u{user},i{item},{item + 1}00\n")
        raw.write_text("".join(rows))
        ds = load_benchmark("delicious", random_state=0, data_dir=tmp_path)
        assert ds.n_users == 5
        assert ds.n_items == 4
