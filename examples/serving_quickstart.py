"""Serving quickstart: fit → export a frozen artifact → serve → hot-swap.

Shows the full life cycle of the serving subsystem: train a model, freeze
its read path into a :class:`ServingArtifact`, ship the artifact file to a
"serving host" (here: just reload it), answer single-user and batched
queries through a micro-batching :class:`RecommenderService`, hot-swap a
newly trained model without dropping a request, and ride out a scorer
outage on a popularity fallback (graceful degradation + circuit breaker).

Run with:  python examples/serving_quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Query, RecommenderService, ServingArtifact
from repro.baselines.cml import CML
from repro.baselines.popularity import Popularity
from repro.core import MARS
from repro.data import load_benchmark
from repro.eval import LeaveOneOutEvaluator
from repro.reliability import FaultInjector


def main() -> None:
    # 1. Train as usual.
    dataset = load_benchmark("delicious", random_state=0)
    model = MARS(n_facets=3, embedding_dim=24, n_epochs=20, batch_size=256,
                 random_state=0).fit(dataset)

    # 2. Export the read path: the pre-projected facet tables, the softmaxed
    #    facet weights and the train-set seen-items CSR — no batchers, no
    #    autograd network, no interaction matrix.
    artifact = model.export_serving()
    print("Exported:", artifact)

    # 3. Ship it.  A serving host needs only this one .npz file.
    path = Path(tempfile.mkdtemp()) / "mars.artifact.npz"
    artifact.save(path)
    served = ServingArtifact.load(path)

    # 4. Serve.  Single-user calls are coalesced into micro-batches and
    #    cached; results are bitwise what the live model would return.
    service = RecommenderService(served, max_batch_size=64, max_wait_ms=2.0)
    top = service.recommend(user=7, k=10)
    assert np.array_equal(top, model.recommend_batch([7], k=10)[0])
    print("user 7 top-10:", top)

    # Batched and candidate-constrained queries go through the same kernel.
    batch = service.recommend_batch(np.arange(32), k=10)
    print("batched top-10 shape:", batch.shape)
    filtered = service.query(Query(users=[7], k=5, exclude_items=top[:3]))
    print("user 7 top-5 with a blocklist:", filtered.items[0])

    # The evaluator accepts the artifact in place of the live model and
    # reproduces its metrics exactly.
    evaluator = LeaveOneOutEvaluator(dataset, n_negatives=100, random_state=0)
    assert evaluator.evaluate(served).metrics == evaluator.evaluate(model).metrics
    print("artifact reproduces live metrics: ok")

    # 5. Hot-swap: publish a retrained (or different) model under the same
    #    name.  The swap is atomic and invalidates the response cache.
    challenger = CML(embedding_dim=24, n_epochs=20, random_state=0).fit(dataset)
    version = service.publish("default", challenger.export_serving())
    swapped = service.recommend(user=7, k=10)
    assert np.array_equal(swapped, challenger.recommend_batch([7], k=10)[0])
    print(f"hot-swapped to version {version}; user 7 now gets:", swapped)

    # 6. Graceful degradation.  Register a cheap, robust fallback; when the
    #    primary scorer fails (here: a deterministic injected fault) the
    #    service answers from it instead of surfacing the error, flags the
    #    response degraded, and the per-model circuit breaker starts
    #    fail-fasting once failures persist.
    service.register_fallback(Popularity().fit(dataset).export_serving())
    injector = FaultInjector()
    injector.fail("serving.scorer", times=1)  # exactly one scorer outage
    with injector.activate():
        degraded = service.query(Query(users=[7], k=10))
    assert degraded.degraded
    print("scorer outage absorbed; degraded top-10:", degraded.items[0])

    recovered = service.query(Query(users=[7], k=10))
    assert not recovered.degraded
    print("primary recovered; circuit:",
          service.health()["circuits"]["default"])
    print("service stats:", service.stats)


if __name__ == "__main__":
    main()
