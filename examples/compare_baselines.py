"""Compare MAR/MARS against the paper's baselines on one dataset.

Reproduces a single-dataset slice of Table II and prints the relative
improvement of the multi-facet models over the best single-space baseline.

Run with:  python examples/compare_baselines.py [dataset] [scale]
           e.g.  python examples/compare_baselines.py ciao quick
"""

import sys

from repro.experiments import format_table
from repro.experiments.table2_overall import run


def main(dataset: str = "ciao", scale: str = "quick") -> None:
    result = run(scale=scale, datasets=[dataset],
                 models=["BPR", "NMF", "CML", "TransCF", "SML", "MAR", "MARS"],
                 random_state=0)
    print(result.to_text())

    improvements = result.metadata["improvements_over_best_baseline"][dataset]
    print()
    for key, value in improvements.items():
        print(f"{key}: {value:+.2f}%")


if __name__ == "__main__":
    dataset_arg = sys.argv[1] if len(sys.argv) > 1 else "ciao"
    scale_arg = sys.argv[2] if len(sys.argv) > 2 else "quick"
    main(dataset_arg, scale_arg)
