"""Streaming quickstart: warm start → drain a live stream → delta-refresh.

Walks the streaming vertical end to end: generate a drifting synthetic
event stream, warm-start a model on its prefix, drain the rest through a
:class:`StreamingTrainer` (micro-batch ingestion, table growth for brand
new users/items, resumable ``fit_more`` refreshes), serve cold users
through the popularity fallback, measure quality prequentially and with a
temporal split, persist events durably in the checksummed
:class:`EventLog`, and finally hot-swap a serving artifact with a
row-wise delta instead of a full re-export.

Run with:  python examples/streaming_quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import RecommenderService
from repro.baselines.bpr import BPR
from repro.data.interactions import InteractionMatrix
from repro.data.synthetic import generate_event_stream
from repro.eval import PrequentialEvaluator, TemporalSplitEvaluator
from repro.serving import save_delta
from repro.streaming import EventLog, InMemoryStream, StreamingTrainer

N_USERS, N_ITEMS, N_EVENTS = 300, 400, 6000
WARM = 3000


def main() -> None:
    # 1. A timestamped stream with drifting popularity and growing id
    #    ranges, so the online path keeps meeting genuinely new users/items.
    events = generate_event_stream(n_users=N_USERS, n_items=N_ITEMS,
                                   n_events=N_EVENTS, random_state=0)
    warm, live = events[:WARM], events[WARM:]

    # 2. Warm-start a model on the historical prefix.
    users = np.fromiter((e.user for e in warm), dtype=np.int64)
    items = np.fromiter((e.item for e in warm), dtype=np.int64)
    matrix = InteractionMatrix(int(users.max()) + 1, int(items.max()) + 1,
                               users, items)
    model = BPR(embedding_dim=24, n_epochs=5, batch_size=512,
                random_state=0).fit(matrix)
    trainer = StreamingTrainer(model, epochs_per_refresh=1, random_state=7)

    # 3. Export the warm state and put it behind a service — this is the
    #    "base" artifact the delta refresh below patches.
    base = trainer.export_serving("bpr-stream").build_index(
        n_cells=16, random_state=3)
    service = RecommenderService({"bpr-stream": base}, max_wait_ms=0.0)

    # 4. Durability: append the live events to the checksummed event log.
    #    A crash mid-append can only tear the tail frame, which replay
    #    skips and recover() truncates — never silent corruption.
    log_path = Path(tempfile.mkdtemp()) / "interactions.events.log"
    log = EventLog(log_path)
    log.append(live)
    print(f"event log: {len(log)} events, {log_path.stat().st_size:,} bytes")

    # 5. Prequential evaluation: each micro-batch is scored by the current
    #    model state and only then ingested, so every event is evaluated
    #    exactly once by a model that never saw it.  Replaying the log
    #    (instead of the in-memory list) gives the same stream.
    evaluator = PrequentialEvaluator(trainer, n_negatives=100,
                                     random_state=1)
    evaluator.run(log, batch_events=500)
    result = evaluator.result()
    grown_users = sum(r.n_new_users for r in trainer.reports)
    grown_items = sum(r.n_new_items for r in trainer.reports)
    print(f"prequential over {evaluator.n_events} events "
          f"(+{grown_users} users, +{grown_items} items grown online): "
          f"hr@10={result['hr@10']:.3f} ndcg@10={result['ndcg@10']:.3f}")

    # 6. Cold start: a user id the model has never seen gets the
    #    popularity ranking — a useful answer, never an error.
    cold = trainer.interactions.n_users + 50
    print(f"cold user {cold} top-5 (popularity fallback): "
          f"{trainer.recommend(cold, k=5)}")

    # 7. Delta refresh: diff the drained model state against the base
    #    artifact and hot-swap row-wise — the cheap path that skips
    #    writing/publishing a full bundle.  The delta pins the base's
    #    content digest, so it can never patch the wrong artifact; the
    #    service purges its response cache on the swap.
    delta = trainer.export_delta(base)
    bundle = save_delta(delta, log_path.parent / "refresh.delta.npz")
    full_bytes = base.save(log_path.parent / "full.artifact.npz").stat().st_size
    print(f"delta: {delta.n_updated_rows()} rows, "
          f"{bundle.stat().st_size:,} bytes on disk "
          f"(full artifact: {full_bytes:,} bytes)")
    version = service.publish_delta("bpr-stream", delta, index_random_state=3)
    print(f"hot-swapped to version {version}; "
          f"user 0 top-5 now: {service.recommend(0, k=5)}")

    # 8. Offline check with the honest temporal protocol: train strictly
    #    before t, test at/after t, negatives never future positives.
    temporal = TemporalSplitEvaluator(events, split_time=float(WARM),
                                      n_users=trainer.interactions.n_users,
                                      n_items=trainer.interactions.n_items,
                                      n_negatives=100, random_state=2)
    offline = temporal.evaluate(trainer)
    print(f"temporal split at t={WARM}: {temporal.n_test_events} test "
          f"events ({temporal.n_skipped_cold} cold skipped), "
          f"hr@10={offline['hr@10']:.3f}")


if __name__ == "__main__":
    main()
