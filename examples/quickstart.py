"""Quickstart: train MARS on a benchmark preset and produce recommendations.

Run with:  python examples/quickstart.py
"""

from repro.core import MARS
from repro.data import load_benchmark
from repro.eval import LeaveOneOutEvaluator


def main() -> None:
    # 1. Load a benchmark preset (a scaled synthetic stand-in for the paper's
    #    Delicious dataset; see DESIGN.md for the substitution rationale).
    dataset = load_benchmark("delicious", random_state=0)
    print("Dataset:", dataset.statistics())

    # 2. Train MARS: 3 facet-specific spherical spaces, calibrated
    #    Riemannian SGD, adaptive margins and frequency-biased sampling.
    model = MARS(n_facets=3, embedding_dim=24, n_epochs=40, batch_size=256,
                 random_state=0)
    model.fit(dataset)
    print(f"Trained {model.name}: final epoch loss {model.loss_history_[-1]:.4f}")

    # 3. Evaluate with the paper's protocol: rank the held-out item against
    #    100 sampled negatives, report HR@K and nDCG@K.
    evaluator = LeaveOneOutEvaluator(dataset, n_negatives=100, random_state=0)
    result = evaluator.evaluate(model)
    for metric in ("hr@10", "hr@20", "ndcg@10", "ndcg@20"):
        print(f"  {metric:8s} = {result[metric]:.4f}")

    # 4. Produce top-10 recommendations for a user and inspect their learned
    #    facet weights Θ_u.
    user = int(dataset.evaluable_users()[0])
    recommendations = model.recommend(user, k=10)
    print(f"Top-10 items for user {user}: {recommendations.tolist()}")
    print(f"Facet weights of user {user}: {model.facet_weights(user).round(3).tolist()}")


if __name__ == "__main__":
    main()
