"""Quickstart: train MARS on a benchmark preset and produce recommendations.

Run with:  python examples/quickstart.py
"""

from repro.core import MARS
from repro.data import load_benchmark
from repro.eval import LeaveOneOutEvaluator


def main() -> None:
    # 1. Load a benchmark preset (a scaled synthetic stand-in for the paper's
    #    Delicious dataset; see DESIGN.md for the substitution rationale).
    dataset = load_benchmark("delicious", random_state=0)
    print("Dataset:", dataset.statistics())

    # 2. Train MARS: 3 facet-specific spherical spaces, calibrated
    #    Riemannian SGD, adaptive margins and frequency-biased sampling.
    model = MARS(n_facets=3, embedding_dim=24, n_epochs=40, batch_size=256,
                 random_state=0)
    model.fit(dataset)
    print(f"Trained {model.name}: final epoch loss {model.loss_history_[-1]:.4f}")

    # 3. Evaluate with the paper's protocol: rank the held-out item against
    #    100 sampled negatives, report HR@K and nDCG@K.  The evaluator stacks
    #    every user's candidate list into one matrix and scores it through the
    #    vectorised `score_items_batch`, so this runs at full NumPy speed.
    evaluator = LeaveOneOutEvaluator(dataset, n_negatives=100, random_state=0)
    result = evaluator.evaluate(model)
    for metric in ("hr@10", "hr@20", "ndcg@10", "ndcg@20"):
        print(f"  {metric:8s} = {result[metric]:.4f}")

    # 4. Produce top-10 recommendations for a user and inspect their learned
    #    facet weights Θ_u.
    user = int(dataset.evaluable_users()[0])
    recommendations = model.recommend(user, k=10)
    print(f"Top-10 items for user {user}: {recommendations.tolist()}")
    print(f"Facet weights of user {user}: {model.facet_weights(user).round(3).tolist()}")

    # 5. Batch inference: rank top-5 items for many users in one call.
    users = dataset.evaluable_users()[:4]
    batch_recommendations = model.recommend_batch(users, k=5)
    for batch_user, row in zip(users, batch_recommendations):
        print(f"Top-5 items for user {int(batch_user)}: {row.tolist()}")


if __name__ == "__main__":
    main()
