"""Hyperparameter search for MARS with the validation-based grid search.

Mirrors the paper's tuning procedure (Section V-A4): a grid over the number of
facets K and the facet-separating weight λ_facet, selected by validation
nDCG@10, followed by a final test-set evaluation of the winner.

Run with:  python examples/hyperparameter_search.py
"""

from repro.core import MARS
from repro.data import load_benchmark
from repro.eval import LeaveOneOutEvaluator
from repro.training import GridSearch


def main() -> None:
    dataset = load_benchmark("delicious", random_state=0)

    grid = GridSearch(
        lambda **params: MARS(embedding_dim=24, n_epochs=30, batch_size=256,
                              random_state=0, **params),
        param_grid={
            "n_facets": [1, 2, 3],
            "lambda_facet": [0.0, 0.01, 0.1],
        },
        monitor="ndcg@10",
        n_negatives=100,
    )
    print(f"Searching {grid.n_candidates()} configurations "
          f"(validation split, nDCG@10)...")
    search = grid.run(dataset)

    print("\nAll configurations (best first):")
    for row in search.as_table():
        print(f"  {row['params']}: validation ndcg@10 = {row['score']:.4f}")
    print(f"\nBest configuration: {search.best_params}")

    test_evaluator = LeaveOneOutEvaluator(dataset, n_negatives=100, split="test",
                                          random_state=0)
    test_metrics = test_evaluator.evaluate(search.best_model).metrics
    print("Test metrics of the best configuration:")
    for metric in ("hr@10", "hr@20", "ndcg@10", "ndcg@20"):
        print(f"  {metric:8s} = {test_metrics[metric]:.4f}")


if __name__ == "__main__":
    main()
