"""Serve a trained model from a pool of memory-mapping worker processes.

The multi-process tier in four steps:

1. fit a model and export its :class:`ServingArtifact`, saved
   **uncompressed** so worker processes can memory-map it (N workers, one
   OS page-cache copy of the tensors);
2. start a :class:`RecommenderServer` — an asyncio socket front-end over
   forked workers, with deadlines, load shedding, worker-death recovery
   and rolling hot-swap;
3. query it over TCP with :class:`ServingClient` (answers are bitwise
   what the in-process read path returns) and measure throughput with the
   closed-loop load generator;
4. hot-swap to a retrained artifact under load, without dropping a
   request.

Run with:  python examples/serving_server_quickstart.py
"""

import tempfile
from pathlib import Path

from repro.core import MARS
from repro.data import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.serving import Query, RecommenderServer, ServingClient, run_closed_loop


def main() -> None:
    config = SyntheticConfig(n_users=800, n_items=600,
                             interactions_per_user=10.0)
    dataset = MultiFacetSyntheticGenerator(
        config, random_state=0).generate_dataset()

    print("fitting MARS ...")
    model = MARS(n_facets=2, embedding_dim=16, n_epochs=2, batch_size=256,
                 random_state=0).fit(dataset)

    workdir = Path(tempfile.mkdtemp(prefix="serving_demo_"))
    artifact_path = model.export_serving().save(
        workdir / "mars.artifact.npz", compressed=False)  # mmap-able
    print(f"artifact: {artifact_path}")

    with RecommenderServer(artifact_path, n_workers=2) as server:
        host, port = server.address
        print(f"serving on {host}:{port} with 2 mmap-sharing workers")

        with ServingClient(server.address) as client:
            result = client.query(Query(users=[0, 1, 2], k=5))
            print(f"top-5 for users 0..2:\n{result.items}")
            print(f"server status: {client.ping()}")

        print("closed-loop load (3 clients, 2 s) ...")
        report = run_closed_loop(
            server.address,
            lambda client_index, turn: Query(
                users=[(client_index * 31 + turn) % config.n_users], k=10),
            clients=3, duration_s=2.0)
        print(f"  {report['qps']:,.0f} q/s, p50 {report['p50_ms']:.2f} ms, "
              f"p99 {report['p99_ms']:.2f} ms, {report['errors']} errors")

        print("retraining and hot-swapping under load ...")
        retrained = MARS(n_facets=2, embedding_dim=16, n_epochs=3,
                         batch_size=256, random_state=1).fit(dataset)
        new_path = retrained.export_serving().save(
            workdir / "mars.v2.artifact.npz", compressed=False)
        version = server.publish("default", new_path)
        with ServingClient(server.address) as client:
            result = client.query(Query(users=[0, 1, 2], k=5))
            print(f"now serving version {version}:\n{result.items}")


if __name__ == "__main__":
    main()
