"""Multi-facet case study: what do the learned facet spaces capture?

Reproduces the spirit of the paper's Figure 7 and Tables V-VI on a synthetic
Ciao-like dataset with known item categories:

* trains CML (single space) and MARS (multi-facet spherical spaces);
* measures how well item categories separate in each embedding space;
* prints the top categories per facet space and example user profiles.

Run with:  python examples/multi_facet_profiling.py
"""

import numpy as np

from repro.analysis import (
    facet_category_profiles,
    user_facet_profiles,
    visualize_item_embeddings,
)
from repro.baselines import CML
from repro.core import MARS
from repro.data import load_benchmark


def main() -> None:
    dataset = load_benchmark("ciao", random_state=0)
    categories = dataset.item_categories
    print(f"Dataset has {dataset.n_items} items across "
          f"{int(categories.max()) + 1} ground-truth categories")

    cml = CML(embedding_dim=24, n_epochs=25, batch_size=256, random_state=0).fit(dataset)
    mars = MARS(n_facets=4, embedding_dim=24, n_epochs=50, batch_size=256,
                random_state=0).fit(dataset)

    # --- Figure 7 analogue: category separation per embedding space -------
    cml_viz = visualize_item_embeddings(
        cml.network.item_embeddings.weight.data, categories, "CML")
    mars_viz = visualize_item_embeddings(
        mars.facet_item_embeddings(), categories, "MARS")
    print("\nCategory separation (inter/intra distance ratio, higher is better):")
    print(f"  CML  (single space):     {cml_viz.mean_separation:.3f}")
    print(f"  MARS (per-facet spaces): mean {mars_viz.mean_separation:.3f}, "
          f"best {mars_viz.best_separation:.3f}")

    # --- Table V analogue: top categories per facet space -----------------
    print("\nTop categories per facet space (Table V analogue):")
    for profile in facet_category_profiles(mars, dataset, top_n=3):
        summary = ", ".join(
            f"category {c} ({p:.0%})"
            for c, p in zip(profile.top_categories, profile.proportions)
        )
        print(f"  facet {profile.facet}: {summary}")

    # --- Table VI analogue: example user profiles -------------------------
    print("\nExample user profiles (Table VI analogue):")
    for profile in user_facet_profiles(mars, dataset, n_users=2):
        weights = np.round(profile.facet_weights, 2).tolist()
        print(f"  user {profile.user}: facet weights {weights}, "
              f"dominant facet {profile.dominant_facet}, "
              f"interacted categories {profile.interacted_categories}")


if __name__ == "__main__":
    main()
