"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that fully offline environments (no ``wheel`` package available) can still
perform an editable install via the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
