"""Setuptools metadata for the ``repro`` package (src layout).

Kept as a plain ``setup.py`` so fully offline environments (no ``wheel``
package available) can still perform an editable install via the legacy
``setup.py develop`` code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.6.0",
    description=("Reproduction of a multi-facet recommender system with "
                 "metric-learning baselines, a unified training runtime and "
                 "a frozen-artifact serving layer"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.8",
    entry_points={
        "console_scripts": [
            # The AST invariant checker (see repro.analysis.static): lints
            # the repo-specific contracts — RNG-DISCIPLINE,
            # DTYPE-DISCIPLINE, PICKLE-FREE-IO, HOGWILD-SAFETY, SLOW-MARKER.
            "repro-lint=repro.analysis.static.cli:main",
        ],
    },
)
