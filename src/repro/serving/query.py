"""The unified read-path request/response types.

A :class:`Query` describes one batched top-N (or plain scoring) request
against a recommender — live model or exported :class:`ServingArtifact` —
and a :class:`QueryResult` carries the ranked items and their scores.  Both
are plain, immutable value objects with no dependency on the model layer,
so they can travel between processes (e.g. a service front-end and its
workers) without dragging training code along.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class Query:
    """One read-path request: rank (or score) items for a batch of users.

    Parameters
    ----------
    users:
        User ids, shape ``(U,)`` (any integer sequence; normalised to
        int64).  Ids must be non-negative — negative ids are rejected at
        construction instead of silently wrapping to other users' rows.
    k:
        Number of recommendations per user.  ``k <= 0`` yields an empty
        ``(U, 0)`` result; ``k=None`` switches to *score mode* — the scores
        of every candidate are returned unranked (requires ``candidates``).
    exclude_seen:
        Mask items each user interacted with in training (requires the
        seen-items CSR — the training interactions on a live model, the
        bundled CSR on a :class:`ServingArtifact`).
    candidates:
        Optional per-user candidate lists, shape ``(U, C)`` (row ``i`` holds
        the candidates of ``users[i]``) or ``(C,)`` for a shared list.
        ``None`` ranks against the full catalogue.
    exclude_items:
        Optional item ids masked for *every* user in the query (e.g. a
        blocklist or out-of-stock filter).
    deadline_ms:
        Optional per-request latency budget in milliseconds.  When the
        request cannot be answered within the budget — whether the time
        went to queueing or to scoring — the serving tier raises
        :class:`~repro.reliability.errors.DeadlineExceededError` instead
        of keeping the caller waiting.  ``None`` means no deadline.
    mode:
        ``"exact"`` (default) ranks through the full scorer;
        ``"approx"`` retrieves candidates from the artifact's IVF index
        (top-``n_probe`` cells per user, O(n_cells) centroid scan) and
        re-ranks them exactly — see :mod:`repro.serving.retrieval`.
        Approx mode generates its own candidate lists, so it is mutually
        exclusive with explicit ``candidates``, and requires an
        artifact whose bundle carries an index.
    n_probe:
        Number of IVF cells scanned per user in approx mode (higher =
        better recall, more re-rank work).  ``None`` uses the index's
        default; only meaningful with ``mode="approx"``.
    """

    users: np.ndarray
    k: Optional[int] = 10
    exclude_seen: bool = True
    candidates: Optional[np.ndarray] = None
    exclude_items: Optional[np.ndarray] = None
    deadline_ms: Optional[float] = None
    mode: str = "exact"
    n_probe: Optional[int] = None

    def __post_init__(self) -> None:
        users = np.atleast_1d(np.asarray(self.users, dtype=np.int64))
        if users.ndim != 1:
            raise ValueError(f"users must be 1-D, got shape {users.shape}")
        if users.size and int(users.min()) < 0:
            bad = users[users < 0][:5]
            raise ValueError(
                f"user ids must be non-negative, got {bad.tolist()} — a "
                "negative id would silently wrap to another user's row "
                "through NumPy fancy indexing")
        object.__setattr__(self, "users", users)
        if self.k is not None:
            object.__setattr__(self, "k", int(self.k))
        if self.candidates is not None:
            object.__setattr__(
                self, "candidates", np.asarray(self.candidates, dtype=np.int64))
        elif self.k is None:
            raise ValueError("score-mode queries (k=None) require candidates")
        if self.exclude_items is not None:
            exclude = np.atleast_1d(np.asarray(self.exclude_items, dtype=np.int64))
            object.__setattr__(self, "exclude_items", exclude)
        if self.deadline_ms is not None:
            deadline_ms = float(self.deadline_ms)
            if deadline_ms <= 0:
                raise ValueError(
                    f"deadline_ms must be positive, got {deadline_ms}")
            object.__setattr__(self, "deadline_ms", deadline_ms)
        if self.mode not in ("exact", "approx"):
            raise ValueError(
                f"mode must be 'exact' or 'approx', got {self.mode!r}")
        if self.mode == "approx" and self.candidates is not None:
            raise ValueError(
                "mode='approx' generates its own candidate lists from the "
                "IVF index and cannot be combined with explicit candidates; "
                "pass candidates with mode='exact' instead")
        if self.n_probe is not None:
            if self.mode != "approx":
                raise ValueError(
                    "n_probe only applies to mode='approx' queries")
            n_probe = int(self.n_probe)
            if n_probe < 1:
                raise ValueError(f"n_probe must be >= 1, got {n_probe}")
            object.__setattr__(self, "n_probe", n_probe)

    @property
    def n_users(self) -> int:
        return int(self.users.size)


@dataclass(frozen=True)
class QueryResult:
    """The answer to a :class:`Query`.

    ``items[i]`` are the top-``k`` item ids of ``users[i]`` (best first) and
    ``scores[i]`` their scores.  For a score-mode query (``k=None``)
    ``items`` is the broadcast ``(U, C)`` candidate matrix and ``scores``
    the candidate scores in the same order.

    When masking (``exclude_seen``/``exclude_items``) leaves a user with
    fewer than ``k`` rankable items, the unfillable trailing slots hold the
    sentinel ``items == -1`` with ``scores == -inf`` — *no recommendable
    item* — instead of leaking the masked items back as recommendations.
    Sentinel slots always trail the real recommendations.

    ``degraded=True`` marks an answer produced by a *fallback* artifact
    (see ``RecommenderService.register_fallback``) because the primary
    scorer failed or its circuit breaker was open — still a valid ranking,
    but from a lower-fidelity model.
    """

    items: np.ndarray
    scores: np.ndarray
    degraded: bool = False

    @property
    def n_users(self) -> int:
        return int(self.items.shape[0])

    @property
    def k(self) -> int:
        return int(self.items.shape[1])
