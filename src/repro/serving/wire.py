"""The pickle-free wire format of the multi-process serving tier.

One frame codec serves both hops of the tier:

- **client ↔ server** over a TCP stream (sync socket helpers for the
  blocking :class:`~repro.serving.client.ServingClient`, asyncio
  reader/writer helpers for the server front-end), and
- **server ↔ worker** over ``multiprocessing.Connection.send_bytes`` /
  ``recv_bytes`` (the already length-delimited pipe transport), so a
  request is encoded once at the socket and relayed to a worker verbatim.

Frame layout (all integers big-endian)::

    MAGIC b"RSV1" | u32 header_len | u32 payload_len | header | payload

The header is a UTF-8 JSON object carrying the frame ``kind`` plus
scalar metadata, and a ``tensors`` manifest — ``[{name, dtype, shape}]``
in payload order — describing the raw little-endian array bytes
concatenated in the payload.  NumPy arrays therefore cross the wire as
``dtype.str`` + shape + ``tobytes()``: no pickle anywhere (malicious
frames cannot execute code), and decoding is a zero-copy
``np.frombuffer`` per tensor.  Only numeric/bool dtypes (NumPy kinds
``biufc``) are accepted on either side.

Frame kinds: ``query`` / ``result`` / ``error`` carry the request
traffic; ``ping`` / ``pong``, ``reload`` / ``ready`` and ``shutdown``
manage the worker lifecycle (see :mod:`repro.serving.server`).

Errors cross the wire by *name*: an ``error`` frame records the
exception's type name and message, and :func:`raise_remote_error`
re-raises the matching class on the receiving side — reliability types
(:class:`DeadlineExceededError`, :class:`ServiceOverloadedError`, ...)
and common builtins map back exactly; anything unknown degrades to
:class:`RemoteServingError`.

Oversized frames (> :data:`MAX_FRAME_BYTES`) are rejected before any
allocation, bounding what a misbehaving peer can make either side buffer.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.reliability.errors import (
    ArtifactIntegrityError,
    CircuitOpenError,
    DeadlineExceededError,
    ReliabilityError,
    ServiceOverloadedError,
)
from repro.serving.query import Query, QueryResult

#: Frame preamble: magic, then big-endian u32 header/payload lengths.
MAGIC = b"RSV1"
_PREFIX = struct.Struct(">4sII")

#: Hard cap on header + payload bytes, enforced before allocation on both
#: encode and decode.  64 MB comfortably fits any sane batch (a 10k-user
#: k=100 int64 result is 8 MB) while bounding a malicious length prefix.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: NumPy dtype *kinds* allowed on the wire: bool, (un)signed int, float,
#: complex.  Object/str/void dtypes are rejected outright.
_SAFE_DTYPE_KINDS = frozenset("biufc")

#: Exception types that cross the wire by name.  The serving tier's whole
#: reliability taxonomy plus the builtins its validation paths raise.
ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        ReliabilityError,
        DeadlineExceededError,
        ServiceOverloadedError,
        CircuitOpenError,
        ArtifactIntegrityError,
        KeyError,
        ValueError,
        TypeError,
        RuntimeError,
    )
}


class RemoteServingError(RuntimeError):
    """A server-side failure whose type has no local equivalent."""


class ProtocolError(RuntimeError):
    """The byte stream is not a well-formed serving frame."""


Frame = Tuple[str, dict, Dict[str, np.ndarray]]


# --------------------------------------------------------------------- #
# encode / decode
# --------------------------------------------------------------------- #
def encode_frame(kind: str, meta: Optional[Mapping] = None,
                 tensors: Optional[Mapping[str, np.ndarray]] = None) -> bytes:
    """Serialise ``(kind, meta, tensors)`` into one wire frame."""
    header: Dict[str, object] = {"kind": str(kind)}
    if meta:
        for key in meta:
            if key in ("kind", "tensors"):
                raise ValueError(f"meta key {key!r} is reserved")
        header.update(meta)
    manifest = []
    chunks = []
    for name, array in (tensors or {}).items():
        array = np.ascontiguousarray(array)
        if array.dtype.kind not in _SAFE_DTYPE_KINDS:
            raise TypeError(
                f"tensor {name!r} has non-numeric dtype {array.dtype} — "
                "only bool/int/float/complex arrays cross the wire")
        # Normalise to little-endian so both sides agree byte-for-byte.
        dtype = array.dtype.newbyteorder("<")
        array = array.astype(dtype, copy=False)
        manifest.append({"name": str(name), "dtype": dtype.str,
                         "shape": list(array.shape)})
        chunks.append(array.tobytes())
    header["tensors"] = manifest
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    payload = b"".join(chunks)
    if len(header_bytes) + len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(header_bytes) + len(payload)} bytes exceeds "
            f"MAX_FRAME_BYTES={MAX_FRAME_BYTES}")
    return (_PREFIX.pack(MAGIC, len(header_bytes), len(payload))
            + header_bytes + payload)


def decode_frame(blob: bytes) -> Frame:
    """Parse one wire frame back into ``(kind, meta, tensors)``."""
    if len(blob) < _PREFIX.size:
        raise ProtocolError(f"frame truncated at {len(blob)} bytes")
    magic, header_len, payload_len = _PREFIX.unpack_from(blob)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if header_len + payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {header_len + payload_len} bytes exceeds "
            f"MAX_FRAME_BYTES={MAX_FRAME_BYTES}")
    if len(blob) != _PREFIX.size + header_len + payload_len:
        raise ProtocolError(
            f"frame length mismatch: prefix promises "
            f"{_PREFIX.size + header_len + payload_len} bytes, got {len(blob)}")
    try:
        header = json.loads(blob[_PREFIX.size:_PREFIX.size + header_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from None
    if not isinstance(header, dict) or "kind" not in header:
        raise ProtocolError("frame header is not an object with a 'kind'")
    kind = str(header.pop("kind"))
    manifest = header.pop("tensors", [])
    payload = memoryview(blob)[_PREFIX.size + header_len:]
    tensors: Dict[str, np.ndarray] = {}
    offset = 0
    for entry in manifest:
        try:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(dim) for dim in entry["shape"])
            name = str(entry["name"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad tensor manifest entry {entry!r}: "
                                f"{exc}") from None
        if dtype.kind not in _SAFE_DTYPE_KINDS:
            raise ProtocolError(
                f"tensor {name!r} declares unsafe dtype {dtype}")
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(payload):
            raise ProtocolError(
                f"tensor {name!r} overruns the frame payload")
        tensors[name] = np.frombuffer(
            payload[offset:offset + nbytes], dtype=dtype).reshape(shape)
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(
            f"{len(payload) - offset} trailing payload bytes after the "
            "declared tensors")
    return kind, header, tensors


# --------------------------------------------------------------------- #
# domain frames
# --------------------------------------------------------------------- #
def encode_query(query: Query, model: Optional[str] = None) -> bytes:
    """Encode a :class:`Query` (plus the target model name) as a frame."""
    meta = {
        "model": model,
        "k": query.k,
        "exclude_seen": bool(query.exclude_seen),
        "deadline_ms": query.deadline_ms,
        "mode": query.mode,
        "n_probe": query.n_probe,
    }
    tensors: Dict[str, np.ndarray] = {"users": query.users}
    if query.candidates is not None:
        tensors["candidates"] = query.candidates
    if query.exclude_items is not None:
        tensors["exclude_items"] = query.exclude_items
    return encode_frame("query", meta, tensors)


def decode_query(meta: dict,
                 tensors: Mapping[str, np.ndarray]) -> Tuple[Query, Optional[str]]:
    """Rebuild the :class:`Query` of a decoded ``query`` frame.

    Runs ``Query.__post_init__`` validation, so malformed requests (negative
    users, bad deadline, score-mode without candidates) fail here with the
    same ``ValueError`` an in-process caller would see.
    """
    if "users" not in tensors:
        raise ProtocolError("query frame is missing the 'users' tensor")
    query = Query(
        users=tensors["users"],
        k=meta.get("k", 10),
        exclude_seen=bool(meta.get("exclude_seen", True)),
        candidates=tensors.get("candidates"),
        exclude_items=tensors.get("exclude_items"),
        deadline_ms=meta.get("deadline_ms"),
        # Frames from pre-retrieval peers carry neither key: exact mode.
        mode=str(meta.get("mode", "exact")),
        n_probe=meta.get("n_probe"),
    )
    model = meta.get("model")
    return query, (None if model is None else str(model))


def encode_result(result: QueryResult) -> bytes:
    """Encode a :class:`QueryResult` as a ``result`` frame."""
    return encode_frame("result", {"degraded": bool(result.degraded)},
                        {"items": result.items, "scores": result.scores})


def decode_result(meta: dict, tensors: Mapping[str, np.ndarray]) -> QueryResult:
    """Rebuild the :class:`QueryResult` of a decoded ``result`` frame."""
    if "items" not in tensors or "scores" not in tensors:
        raise ProtocolError("result frame is missing items/scores tensors")
    return QueryResult(items=tensors["items"], scores=tensors["scores"],
                       degraded=bool(meta.get("degraded", False)))


def encode_error(error: BaseException) -> bytes:
    """Encode an exception as an ``error`` frame (type name + message)."""
    # KeyError repr()s its message; unwrap the bare argument instead.
    if type(error) is KeyError and error.args:
        message = str(error.args[0])
    else:
        message = str(error)
    return encode_frame("error", {"error": type(error).__name__,
                                  "message": message})


def raise_remote_error(meta: dict) -> None:
    """Re-raise the exception carried by a decoded ``error`` frame.

    Known type names (:data:`ERROR_TYPES`) raise the matching local class;
    unknown ones raise :class:`RemoteServingError` with the original type
    name prefixed, so no information is dropped.
    """
    name = str(meta.get("error", "RemoteServingError"))
    message = str(meta.get("message", ""))
    cls = ERROR_TYPES.get(name)
    if cls is not None:
        raise cls(message)
    raise RemoteServingError(f"{name}: {message}")


# --------------------------------------------------------------------- #
# transports
# --------------------------------------------------------------------- #
def send_frame(sock: socket.socket, blob: bytes) -> None:
    """Blocking send of one already-encoded frame over a stream socket."""
    sock.sendall(blob)


def recv_frame(sock: socket.socket) -> bytes:
    """Blocking receive of exactly one frame from a stream socket.

    Raises :class:`ConnectionError` on a cleanly closed peer (EOF before
    any bytes) and :class:`ProtocolError` on garbage or oversized prefixes.
    """
    prefix = _recv_exact(sock, _PREFIX.size)
    magic, header_len, payload_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if header_len + payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {header_len + payload_len}-byte frame "
            f"(> MAX_FRAME_BYTES={MAX_FRAME_BYTES})")
    return prefix + _recv_exact(sock, header_len + payload_len)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({remaining} of {count} "
                "bytes outstanding)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


async def read_frame_async(reader) -> bytes:
    """Read one frame from an :class:`asyncio.StreamReader`."""
    import asyncio

    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:  # clean EOF between frames
            raise ConnectionError("connection closed") from None
        raise ProtocolError("connection closed mid-frame") from None
    magic, header_len, payload_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if header_len + payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {header_len + payload_len}-byte frame "
            f"(> MAX_FRAME_BYTES={MAX_FRAME_BYTES})")
    try:
        body = await reader.readexactly(header_len + payload_len)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return prefix + body
