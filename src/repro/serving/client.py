"""Blocking client for :class:`~repro.serving.server.RecommenderServer`.

:class:`ServingClient` owns one TCP connection and speaks the frame
protocol of :mod:`repro.serving.wire`: it encodes a :class:`Query`, sends
it, and decodes the ``result`` frame back into a :class:`QueryResult` —
or re-raises the server-side exception carried by an ``error`` frame
(:class:`DeadlineExceededError`, :class:`ServiceOverloadedError`,
``KeyError``/``ValueError`` from validation, ...).  One connection serves
any number of sequential requests; concurrency = one client per thread.

:func:`run_closed_loop` is the measurement harness the throughput
benchmark uses: N threads, each with its own connection, each running the
classic closed loop (issue, wait, think, repeat) for a fixed duration,
reporting achieved q/s and latency percentiles.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serving import wire
from repro.serving.query import Query, QueryResult

Address = Tuple[str, int]


class ServingClient:
    """One blocking connection to a :class:`RecommenderServer`."""

    def __init__(self, address: Address,
                 timeout_s: Optional[float] = 60.0) -> None:
        self._sock = socket.create_connection(address, timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()

    def query(self, query: Union[Query, Sequence[int], np.ndarray],
              model: Optional[str] = None, **query_kwargs) -> QueryResult:
        """Execute a query and return its :class:`QueryResult`.

        Accepts a ready :class:`Query`, or raw user ids plus ``Query``
        keyword arguments (``k``, ``exclude_seen``, ``deadline_ms``, ...)
        for convenience.  Server-side failures re-raise locally with their
        original exception type where one exists.
        """
        if not isinstance(query, Query):
            query = Query(users=query, **query_kwargs)
        elif query_kwargs:
            raise TypeError("pass Query kwargs only with raw user ids")
        with self._lock:
            wire.send_frame(self._sock, wire.encode_query(query, model))
            blob = wire.recv_frame(self._sock)
        kind, meta, tensors = wire.decode_frame(blob)
        if kind == "error":
            wire.raise_remote_error(meta)
        if kind != "result":
            raise wire.ProtocolError(
                f"server answered {kind!r} to a query frame")
        return wire.decode_result(meta, tensors)

    def ping(self) -> dict:
        """Server status: model versions, live workers, counters."""
        with self._lock:
            wire.send_frame(self._sock, wire.encode_frame("ping", {}))
            blob = wire.recv_frame(self._sock)
        kind, meta, _ = wire.decode_frame(blob)
        if kind == "error":
            wire.raise_remote_error(meta)
        return meta

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_closed_loop(address: Address,
                    make_query: Callable[[int, int], Query], *,
                    clients: int = 4, duration_s: float = 2.0,
                    think_time_s: float = 0.0,
                    model: Optional[str] = None) -> Dict[str, float]:
    """Closed-loop load generation against a running server.

    ``clients`` threads each open their own connection and run the
    classic closed loop — issue ``make_query(client_index, iteration)``,
    wait for the answer, sleep ``think_time_s``, repeat — until
    ``duration_s`` elapses.

    Returns
    -------
    dict
        ``qps`` (completed queries / wall time), latency percentiles
        ``p50_ms`` / ``p90_ms`` / ``p99_ms`` and ``mean_ms`` over
        successful requests, plus ``requests``, ``errors`` (failed
        requests, e.g. shed or deadline-exceeded — never raised out of
        the loop), ``clients`` and ``duration_s`` (measured wall time).
    """
    latencies: list = [None] * clients
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)
    stop_at = [0.0]  # set before the barrier releases the clients

    def client_loop(index: int) -> None:
        own_latencies = []
        with ServingClient(address) as client:
            barrier.wait()
            iteration = 0
            while time.monotonic() < stop_at[0]:
                query = make_query(index, iteration)
                iteration += 1
                begin = time.monotonic()
                try:
                    client.query(query, model=model)
                except Exception:
                    errors[index] += 1
                else:
                    own_latencies.append(time.monotonic() - begin)
                if think_time_s:
                    time.sleep(think_time_s)
        latencies[index] = own_latencies

    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    stop_at[0] = time.monotonic() + float(duration_s)
    barrier.wait()  # all connections are up; the measured window begins
    started = time.monotonic()
    for thread in threads:
        thread.join()
    elapsed = max(time.monotonic() - started, 1e-9)

    merged = np.array(
        [value for chunk in latencies if chunk for value in chunk],
        dtype=np.float64)
    completed = int(merged.size)

    def percentile(q: float) -> float:
        return float(np.percentile(merged, q) * 1000.0) if completed else 0.0
    return {
        "qps": completed / elapsed,
        "p50_ms": percentile(50),
        "p90_ms": percentile(90),
        "p99_ms": percentile(99),
        "mean_ms": float(merged.mean() * 1000.0) if completed else 0.0,
        "requests": completed + sum(errors),
        "errors": sum(errors),
        "clients": clients,
        "duration_s": elapsed,
    }
