"""The blockwise top-k ranking kernel shared by every read path.

One function, :func:`run_query`, consumes a :class:`~repro.serving.query.Query`
plus a batch scorer callback and produces ranked recommendations.  Both the
live-model shims (:meth:`BaseRecommender.recommend` /
:meth:`~repro.core.base.BaseRecommender.recommend_batch`) and the exported
:class:`~repro.serving.artifact.ServingArtifact` delegate here, which is what
makes artifact-backed serving bitwise-identical to the live model: identical
user chunking, identical seen-item masking, identical partial sorts.

Masking is fully vectorised.  Full-catalogue queries scatter ``-inf`` into
the score block through the training CSR (one `repeat`/`cumsum` gather per
chunk — no per-user Python loop); candidate queries test membership with a
single ``searchsorted`` against the sorted ``user * n_items + item`` keys.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.serving.query import Query, QueryResult

#: Cap on the number of score-matrix elements a full-catalogue ranking chunk
#: asks the scorer for.  The vectorised scorers materialise intermediates
#: ~D times this size, so 500k elements keeps peak scratch memory in the
#: low hundreds of MB even for dim-64 models.  (`repro.core.base` re-exports
#: this as ``_RECOMMEND_BATCH_ELEMENT_BUDGET`` for backwards compatibility.)
RECOMMEND_ELEMENT_BUDGET = 500_000

#: ``scorer(users, item_matrix) -> scores`` — scores a ``(U,)`` user batch
#: against a ``(U, C)`` candidate matrix, returning ``(U, C)`` floats.
Scorer = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Seen-items CSR: ``(indptr, indices)`` over the full user range.
SeenCSR = Tuple[np.ndarray, np.ndarray]


def broadcast_candidates(users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
    """Normalise ``item_matrix`` to shape ``(len(users), C)``."""
    item_matrix = np.asarray(item_matrix, dtype=np.int64)
    if item_matrix.ndim == 1:
        item_matrix = np.broadcast_to(item_matrix, (users.size, item_matrix.size))
    if item_matrix.ndim != 2 or item_matrix.shape[0] != users.size:
        raise ValueError(
            f"item_matrix must have shape ({users.size}, C) or (C,), "
            f"got {item_matrix.shape}"
        )
    return item_matrix


def mask_seen_rows(scores: np.ndarray, users: np.ndarray,
                   indptr: np.ndarray, indices: np.ndarray) -> None:
    """Set ``scores[i, j] = -inf`` for every item ``j`` seen by ``users[i]``.

    ``scores`` has one full-catalogue row per user.  The per-user CSR
    segments are gathered with a single ``repeat``/``cumsum`` flat-index
    construction — the vectorised replacement for the historical
    ``for row, user in enumerate(users)`` masking loop.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    starts = indptr[users]
    counts = indptr[users + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return
    # flat[t] walks user i's CSR segment: starts[i], starts[i]+1, ...
    offsets = np.repeat(starts - (np.cumsum(counts) - counts), counts)
    flat = np.arange(total, dtype=np.int64) + offsets
    rows = np.repeat(np.arange(users.size, dtype=np.int64), counts)
    scores[rows, np.asarray(indices, dtype=np.int64)[flat]] = -np.inf


def encode_seen_keys(n_items: int, indptr: np.ndarray,
                     indices: np.ndarray) -> np.ndarray:
    """Sorted ``user * n_items + item`` keys of a seen-items CSR.

    The membership index behind :func:`seen_candidate_mask`.  ``O(nnz)`` to
    build, so callers that answer many candidate queries (the live-model
    path via ``InteractionMatrix.encoded_positive_keys()``, the artifacts at
    construction) compute it once and pass it through ``run_query``.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    counts = np.diff(indptr)
    owners = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    return owners * n_items + indices  # sorted: CSR rows hold sorted indices


def seen_candidate_mask(users: np.ndarray, candidates: np.ndarray,
                        n_items: int, seen_keys: np.ndarray) -> np.ndarray:
    """Boolean ``(U, C)`` mask: which candidates has each user seen?

    Membership is one ``searchsorted`` of the encoded ``user * n_items +
    item`` query keys against ``seen_keys`` (:func:`encode_seen_keys`).
    """
    if seen_keys.size == 0:
        return np.zeros(candidates.shape, dtype=bool)
    query_keys = users[:, None] * np.int64(n_items) + candidates
    position = np.searchsorted(seen_keys, query_keys)
    position = np.minimum(position, seen_keys.size - 1)
    return seen_keys[position] == query_keys


def _rank_rows(scores: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-``k`` column indices per row (best first) and their scores."""
    part = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    part_scores = np.take_along_axis(scores, part, axis=1)
    order = np.argsort(-part_scores, axis=1, kind="stable")
    return (np.take_along_axis(part, order, axis=1).astype(np.int64),
            np.take_along_axis(part_scores, order, axis=1))


def _mask_unrankable(items: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """Replace items ranked at ``-inf`` with the ``-1`` sentinel, in place.

    A ``-inf`` slot means masking (``exclude_seen``/``exclude_items``) left
    the user with fewer than ``k`` rankable items; the historical behaviour
    leaked the *masked* items into those slots as if they were
    recommendations.  Masked slots always sort behind every finite score,
    so the sentinels trail the real recommendations.
    """
    items[np.isneginf(scores)] = -1
    return items


def _empty_result(n_users: int) -> QueryResult:
    return QueryResult(items=np.empty((n_users, 0), dtype=np.int64),
                       scores=np.empty((n_users, 0), dtype=np.float64))


def run_query(query: Query, scorer: Scorer, n_items: int,
              seen: Optional[SeenCSR] = None,
              seen_keys: Optional[np.ndarray] = None,
              element_budget: Optional[int] = None) -> QueryResult:
    """Execute a :class:`Query` against a batch scorer.

    Parameters
    ----------
    query:
        The request.  ``query.exclude_seen=True`` requires ``seen``.
    scorer:
        Batch scoring callback ``(users, item_matrix) -> (U, C) scores``.
    n_items:
        Catalogue size (defines the full-catalogue ranking range and the
        key encoding of the candidate membership test).
    seen:
        ``(indptr, indices)`` CSR of train-set seen items, or ``None``.
    seen_keys:
        Optional pre-built :func:`encode_seen_keys` index (must match
        ``seen`` and ``n_items``); candidate queries rebuild it from the
        CSR when absent.
    element_budget:
        Cap on ``chunk_users * n_items`` score elements per scorer call on
        the full-catalogue path (default :data:`RECOMMEND_ELEMENT_BUDGET`).

    Returns
    -------
    QueryResult
        Ranked ``(U, k)`` items/scores — or the raw ``(U, C)`` candidate
        scores for a score-mode query (``k=None``).
    """
    if query.mode != "exact":
        # Approx retrieval is an artifact-level concern: ServingArtifact
        # probes its IVF index and re-enters this kernel with an exact
        # candidate re-rank query.  A live model has no index to probe.
        raise ValueError(
            f"run_query only executes exact queries (got mode="
            f"{query.mode!r}); approximate retrieval requires a "
            "ServingArtifact with a built IVF index")
    if query.exclude_seen and seen is None:
        raise RuntimeError(
            "exclude_seen=True requires the seen-items CSR (fit the model on "
            "interactions, or export the artifact from a fitted model); "
            "rank with exclude_seen=False instead")

    if query.candidates is None:
        return _run_full_catalogue(query, scorer, n_items, seen, element_budget)
    return _run_candidates(query, scorer, n_items, seen, seen_keys)


def _run_full_catalogue(query: Query, scorer: Scorer, n_items: int,
                        seen: Optional[SeenCSR],
                        element_budget: Optional[int]) -> QueryResult:
    users = query.users
    k = min(query.k, n_items)
    if k <= 0:
        return _empty_result(users.size)
    if element_budget is None:
        element_budget = RECOMMEND_ELEMENT_BUDGET
    if query.exclude_seen:
        # Hoist the int64 view/copy of the CSR (scipy stores int32) out of
        # the chunk loop: one O(nnz) conversion per query, not per chunk.
        seen = (np.asarray(seen[0], dtype=np.int64),
                np.asarray(seen[1], dtype=np.int64))

    all_items = np.arange(n_items, dtype=np.int64)
    top_items = np.empty((users.size, k), dtype=np.int64)
    top_scores = np.empty((users.size, k), dtype=np.float64)
    # Bound the (chunk, n_items[, D]) scratch arrays the vectorised scorers
    # materialise; catalogue-sized batches stream through.
    chunk = max(1, element_budget // max(1, n_items))
    for start in range(0, users.size, chunk):
        stop = min(start + chunk, users.size)
        chunk_users = users[start:stop]
        scores = np.asarray(
            scorer(chunk_users, broadcast_candidates(chunk_users, all_items)),
            dtype=np.float64,
        ).copy()
        if query.exclude_seen:
            mask_seen_rows(scores, chunk_users, seen[0], seen[1])
        if query.exclude_items is not None:
            # Tolerate out-of-catalogue blocklist ids (retired items), like
            # the membership test on the candidate path.
            blocked = query.exclude_items
            scores[:, blocked[(blocked >= 0) & (blocked < n_items)]] = -np.inf
        top_items[start:stop], top_scores[start:stop] = _rank_rows(scores, k)
    return QueryResult(items=_mask_unrankable(top_items, top_scores),
                       scores=top_scores)


def _run_candidates(query: Query, scorer: Scorer, n_items: int,
                    seen: Optional[SeenCSR],
                    seen_keys: Optional[np.ndarray]) -> QueryResult:
    users = query.users
    candidates = broadcast_candidates(users, query.candidates)
    if query.k is not None and query.k <= 0:
        return _empty_result(users.size)

    # Ragged candidate lists (e.g. per-user IVF probe unions) arrive as a
    # rectangle right-padded with -1.  Pad slots are scored on item 0 (any
    # valid id — the score is discarded) and forced to -inf after masking.
    pad_mask = candidates < 0
    any_pads = bool(pad_mask.any())
    scoreable = np.where(pad_mask, np.int64(0), candidates) if any_pads \
        else candidates
    scores = np.asarray(scorer(users, scoreable), dtype=np.float64)
    if scores.shape != candidates.shape:
        raise ValueError(
            f"scorer returned shape {scores.shape}, expected {candidates.shape}")

    if query.exclude_seen or query.exclude_items is not None or any_pads:
        scores = scores.copy()
        if query.exclude_seen:
            if seen_keys is None:
                seen_keys = encode_seen_keys(n_items, seen[0], seen[1])
            scores[seen_candidate_mask(users, candidates, n_items,
                                       seen_keys)] = -np.inf
        if query.exclude_items is not None:
            scores[np.isin(candidates, query.exclude_items)] = -np.inf
        if any_pads:
            # Last, unconditionally: a pad key user*n_items - 1 aliases the
            # previous user's final item in the seen-membership test, but a
            # pad slot must stay -inf regardless of what masking computed.
            scores[pad_mask] = -np.inf

    if query.k is None:
        # Score mode: candidate order preserved.  `candidates` may be a
        # stride-0 broadcast view of a shared list; returning the view
        # avoids materialising a (U, C) copy that the score_items_batch
        # shim (which only reads .scores) would immediately discard.
        return QueryResult(items=candidates, scores=scores)

    k = min(query.k, candidates.shape[1])
    columns, top_scores = _rank_rows(scores, k)
    items = np.take_along_axis(candidates, columns, axis=1)
    return QueryResult(items=_mask_unrankable(items, top_scores),
                       scores=top_scores)
