"""repro.serving — the redesigned read path: artifacts, queries, a service.

Training (PRs 2-4) and inference now scale independently.  The serving
subsystem has three layers:

1. **Artifacts** — :class:`ServingArtifact`, a frozen, ``save()``/``load()``-
   able bundle of the read-only tensors a model family needs to score, plus
   the train-set seen-items CSR so ``exclude_seen`` works without the live
   model.  Every fitted :class:`~repro.core.base.BaseRecommender` exports
   one via :meth:`~repro.core.base.BaseRecommender.export_serving`; a fresh
   process needs only the artifact file to serve.
2. **Query API** — one :class:`Query` value object (users, ``k``,
   ``exclude_seen``, optional per-user candidates, optional item blocklist)
   consumed by a single blockwise argpartition top-k kernel
   (:func:`~repro.serving.kernel.run_query`) with fully vectorised CSR
   seen-masking.  The live models' ``recommend`` / ``recommend_batch`` /
   ``score_items_batch`` are thin shims over the same kernel, which is what
   makes artifact-backed serving bitwise-identical to the live model.
3. **Service** — :class:`RecommenderService`, a thread-safe front-end over a
   :class:`ModelRegistry` of named, versioned artifacts with atomic
   hot-swap, micro-batch coalescing of single-user requests (size- and
   latency-bounded) and an LRU response cache invalidated on swap.
4. **Server** — :class:`RecommenderServer` (:mod:`repro.serving.server`),
   the multi-process tier: an asyncio socket front-end over a pool of
   forked workers that memory-map the published artifact files (one OS
   page-cache copy for N processes), with deadlines, load shedding,
   worker-death re-dispatch and rolling hot-swap.  :class:`ServingClient`
   / :func:`run_closed_loop` are the matching client and load generator.

Quick example
-------------
>>> artifact = model.export_serving()          # fitted MAR/MARS/baseline
>>> artifact.save("mars.artifact.npz")         # ship to a serving host
>>> served = ServingArtifact.load("mars.artifact.npz")
>>> service = RecommenderService(served)
>>> service.recommend(user=7, k=10)            # == model.recommend_batch([7], 10)[0]
>>> service.publish("default", new_artifact)   # atomic hot-swap

The heavyweight modules (artifact/scorers/service) are loaded lazily so
that :mod:`repro.core.base` can import the dependency-free kernel and query
types at module load without an import cycle.
"""

from repro.serving.kernel import (
    RECOMMEND_ELEMENT_BUDGET,
    broadcast_candidates,
    encode_seen_keys,
    mask_seen_rows,
    run_query,
    seen_candidate_mask,
)
from repro.serving.query import Query, QueryResult

_LAZY = {
    "ServingArtifact": "repro.serving.artifact",
    "ARTIFACT_FORMAT_VERSION": "repro.serving.artifact",
    "ArtifactDelta": "repro.serving.artifact",
    "DELTA_FORMAT_VERSION": "repro.serving.artifact",
    "make_delta": "repro.serving.artifact",
    "save_delta": "repro.serving.artifact",
    "load_delta": "repro.serving.artifact",
    "ModelRegistry": "repro.serving.service",
    "RecommenderService": "repro.serving.service",
    "DEFAULT_MODEL": "repro.serving.service",
    "RecommenderServer": "repro.serving.server",
    "ServingClient": "repro.serving.client",
    "run_closed_loop": "repro.serving.client",
    "IVFIndex": "repro.serving.retrieval",
    "build_ivf_index": "repro.serving.retrieval",
    "kmeans_cells": "repro.serving.retrieval",
    "APPROX_FAMILIES": "repro.serving.retrieval",
    "SCORER_FAMILIES": "repro.serving.scorers",
    "get_family_scorer": "repro.serving.scorers",
    "ArtifactIntegrityError": "repro.reliability.errors",
    "CircuitOpenError": "repro.reliability.errors",
    "DeadlineExceededError": "repro.reliability.errors",
    "ServiceOverloadedError": "repro.reliability.errors",
}

__all__ = [
    "Query",
    "QueryResult",
    "run_query",
    "broadcast_candidates",
    "encode_seen_keys",
    "mask_seen_rows",
    "seen_candidate_mask",
    "RECOMMEND_ELEMENT_BUDGET",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    if name in _LAZY:
        from importlib import import_module

        return getattr(import_module(_LAZY[name]), name)
    raise AttributeError(f"module 'repro.serving' has no attribute {name!r}")
