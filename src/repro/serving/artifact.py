"""Frozen, persistable serving bundles.

A :class:`ServingArtifact` is the read-only half of a fitted recommender:
the family-specific tensors needed to score (see
:mod:`repro.serving.scorers`), plus the train-set seen-items CSR so
``exclude_seen`` works without the live model, its batchers or its autograd
network.  Artifacts are immutable (arrays are frozen, attributes locked),
``save()``/``load()`` round-trip through a single pickle-free ``.npz`` file,
and answer the same :class:`~repro.serving.query.Query` API as live models —
bitwise-identically, because both delegate to the same kernel and the same
family scoring functions.

The pickle-free claim is *enforced*, not aspirational: the
``PICKLE-FREE-IO`` rule of :mod:`repro.analysis.static` lints ``serving/``
and ``utils/io.py`` on every test run — no ``import pickle``, no
``np.load`` without ``allow_pickle=False`` — so artifact files stay safe
to load from untrusted storage.  ``DTYPE-DISCIPLINE`` likewise pins the
hot scorer/kernel allocations to explicit dtypes (see the "Enforced
invariants" section of ``ROADMAP.md``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.reliability.errors import ArtifactIntegrityError
from repro.serving.kernel import broadcast_candidates, encode_seen_keys, run_query
from repro.serving.query import Query, QueryResult
from repro.serving.retrieval import (
    APPROX_FAMILIES,
    DEFAULT_KMEANS_ITERATIONS,
    IVFIndex,
    build_ivf_index,
    coarse_cell_scores,
)
from repro.serving.scorers import get_family_scorer
from repro.utils.io import (
    is_memory_mapped,
    load_arrays,
    pack_scalar,
    save_arrays,
    unpack_scalar,
)
from repro.utils.rng import RandomState

_TENSOR_PREFIX = "tensor."
_META_PREFIX = "meta."
_IVF_PREFIX = "ivf."

#: On-disk artifact format version.  Bump when the bundle layout changes;
#: :meth:`ServingArtifact.load` rejects versions it does not understand
#: with :class:`ArtifactIntegrityError` instead of misreading the file.
#: Version 2 added the optional IVF retrieval index (``ivf.*`` entries +
#: ``meta.has_ivf``); version-1 bundles still load (no index).
ARTIFACT_FORMAT_VERSION = 2

#: Format versions :meth:`ServingArtifact.load` understands.
_SUPPORTED_FORMAT_VERSIONS = (1, 2)

#: On-disk format version of *delta* bundles — sparse row-wise updates
#: against a published base artifact (see :class:`ArtifactDelta`,
#: :func:`save_delta` / :func:`load_delta`).  Deltas are a different kind
#: of file from full artifacts: :meth:`ServingArtifact.load` refuses them
#: with a pointer at the delta path instead of misreading them.
DELTA_FORMAT_VERSION = 3

_DELTA_PREFIX = "delta."


class ServingArtifact:
    """An immutable, self-contained scoring bundle for one fitted model.

    Parameters
    ----------
    family:
        Scoring-family key (must be registered in
        :data:`repro.serving.scorers.SCORER_FAMILIES`).
    tensors:
        The family's read-only arrays.  Copied and frozen at construction.
    n_users, n_items:
        The id ranges the artifact can score.
    seen:
        Optional ``(indptr, indices)`` CSR of train-set seen items (enables
        ``exclude_seen``).  Column indices must be sorted within each row —
        the canonical CSR layout — so the membership test can binary-search.
    model_name:
        Human-readable provenance label (e.g. ``"MARS"``).
    index:
        Optional :class:`~repro.serving.retrieval.IVFIndex` enabling
        ``Query(mode="approx")``.  Usually attached via
        :meth:`build_index` rather than passed directly.
    """

    __slots__ = ("family", "tensors", "n_users", "n_items", "model_name",
                 "_seen", "_seen_keys", "_scorer", "_index", "_frozen")

    def __init__(self, family: str, tensors: Mapping[str, np.ndarray],
                 n_users: int, n_items: int,
                 seen: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                 model_name: str = "",
                 index: Optional[IVFIndex] = None) -> None:
        scorer = get_family_scorer(family)
        object.__setattr__(self, "family", str(family))
        object.__setattr__(self, "tensors", MappingProxyType(
            {name: _freeze(array) for name, array in tensors.items()}))
        object.__setattr__(self, "n_users", int(n_users))
        object.__setattr__(self, "n_items", int(n_items))
        object.__setattr__(self, "model_name", str(model_name))
        seen_keys = None
        if seen is not None:
            indptr = _freeze(np.asarray(seen[0], dtype=np.int64))
            indices = _freeze(np.asarray(seen[1], dtype=np.int64))
            if indptr.size != self.n_users + 1:
                raise ValueError(
                    f"seen indptr has {indptr.size} entries, expected "
                    f"n_users + 1 = {self.n_users + 1}")
            seen = (indptr, indices)
            # Build the candidate-membership key index once; every
            # exclude_seen candidate query binary-searches it.
            seen_keys = _freeze(encode_seen_keys(self.n_items, indptr, indices))
        object.__setattr__(self, "_seen", seen)
        object.__setattr__(self, "_seen_keys", seen_keys)
        object.__setattr__(self, "_scorer", scorer)
        if index is not None and index.n_items != self.n_items:
            raise ValueError(
                f"IVF index covers {index.n_items} items but the artifact "
                f"catalogue has {self.n_items}")
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_frozen", True)

    # ------------------------------------------------------------------ #
    # immutability
    # ------------------------------------------------------------------ #
    def __setattr__(self, name, value):
        raise AttributeError(
            f"ServingArtifact is frozen; cannot set {name!r} — build a new "
            "artifact and publish it to the registry instead")

    def __delattr__(self, name):
        raise AttributeError("ServingArtifact is frozen")

    # ------------------------------------------------------------------ #
    # scoring / ranking
    # ------------------------------------------------------------------ #
    @property
    def has_seen(self) -> bool:
        """Whether the train-set CSR is bundled (``exclude_seen`` support)."""
        return self._seen is not None

    @property
    def has_index(self) -> bool:
        """Whether an IVF index is bundled (``mode="approx"`` support)."""
        return self._index is not None

    @property
    def index(self) -> Optional[IVFIndex]:
        """The bundled :class:`~repro.serving.retrieval.IVFIndex`, if any."""
        return self._index

    def _score_candidates(self, users: np.ndarray,
                          item_matrix: np.ndarray) -> np.ndarray:
        return self._scorer(self.tensors, users, item_matrix)

    def _validate_users(self, users: np.ndarray) -> None:
        """Reject ids outside ``[0, n_users)`` with a clean error.

        Without this, a negative id silently wraps to another user's
        embedding row *and* masks the wrong CSR row in ``exclude_seen``,
        while an over-range id surfaces as a raw IndexError from deep
        inside a family scorer.
        """
        if users.size == 0:
            return
        if int(users.min()) < 0 or int(users.max()) >= self.n_users:
            bad = users[(users < 0) | (users >= self.n_users)][:5]
            raise ValueError(
                f"user ids out of range for this artifact "
                f"(n_users={self.n_users}): {bad.tolist()}")

    def score_items_batch(self, users: Sequence[int],
                          item_matrix: np.ndarray) -> np.ndarray:
        """Scores for a user batch against per-user candidate lists.

        Same contract as
        :meth:`~repro.core.base.BaseRecommender.score_items_batch`, which is
        what lets :class:`~repro.eval.protocol.LeaveOneOutEvaluator` consume
        an artifact in place of the live model.
        """
        users = np.asarray(users, dtype=np.int64)
        self._validate_users(users)
        return self._score_candidates(users,
                                      broadcast_candidates(users, item_matrix))

    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        """Scores of ``items`` for a single ``user``."""
        items = np.asarray(items, dtype=np.int64)
        return self.score_items_batch([user], items[None, :])[0]

    def query(self, query: Query) -> QueryResult:
        """Execute a :class:`Query` against this artifact.

        User ids outside ``[0, n_users)`` raise :class:`ValueError` before
        any scoring happens (see :meth:`_validate_users`).
        ``mode="approx"`` probes the bundled IVF index for candidates and
        re-ranks them exactly (requires :attr:`has_index`).
        """
        self._validate_users(query.users)
        if query.mode == "approx":
            return self._approx_query(query)
        return run_query(query, self._score_candidates, self.n_items,
                         seen=self._seen, seen_keys=self._seen_keys)

    def probe_candidates(self, users: Sequence[int],
                         n_probe: Optional[int] = None,
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """IVF candidate lists for a user batch, before re-ranking.

        Returns ``(candidates, counts)``: the ``(U, C)`` ``-1``-padded
        candidate matrix the approx path re-ranks, and the ``(U,)`` true
        per-user candidate counts — the observable behind the sub-linearity
        gate (``counts < n_items`` whenever fewer than all cells are
        probed).
        """
        if self._index is None:
            raise RuntimeError(
                "this artifact has no IVF index; attach one with "
                "build_index() before probing or querying mode='approx'")
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        self._validate_users(users)
        cell_scores = coarse_cell_scores(self.family, self.tensors, users,
                                         self._index)
        return self._index.probe(cell_scores, n_probe=n_probe)

    def _approx_query(self, query: Query) -> QueryResult:
        """Probe the IVF index, then exact-re-rank the candidate union."""
        candidates, _ = self.probe_candidates(query.users,
                                              n_probe=query.n_probe)
        rerank = Query(users=query.users, k=query.k,
                       exclude_seen=query.exclude_seen,
                       candidates=candidates,
                       exclude_items=query.exclude_items)
        result = run_query(rerank, self._score_candidates, self.n_items,
                           seen=self._seen, seen_keys=self._seen_keys)
        # Keep the result shape mode-independent: when the probed union is
        # narrower than k, right-pad with the no-recommendable-item
        # sentinel (-1 / -inf) up to the exact path's min(k, n_items).
        width = min(query.k, self.n_items)
        if result.items.shape[1] < width:
            items = np.full((result.n_users, width), -1, dtype=np.int64)
            scores = np.full((result.n_users, width), -np.inf,
                             dtype=np.float64)
            items[:, :result.items.shape[1]] = result.items
            scores[:, :result.scores.shape[1]] = result.scores
            result = QueryResult(items=items, scores=scores,
                                 degraded=result.degraded)
        return result

    def build_index(self, n_cells: int, random_state: RandomState = None,
                    n_iterations: int = DEFAULT_KMEANS_ITERATIONS,
                    ) -> "ServingArtifact":
        """Return a new artifact with a freshly built IVF index attached.

        The artifact itself is immutable, so index construction — seeded
        k-means over this family's item vectors (see
        :func:`repro.serving.retrieval.build_ivf_index`) — produces a new
        bundle sharing the same frozen semantics; :meth:`save` then packs
        the index arrays next to the tensors.
        """
        index = build_ivf_index(self.family, self.tensors, n_cells,
                                random_state=random_state,
                                n_iterations=n_iterations)
        return ServingArtifact(family=self.family, tensors=self.tensors,
                               n_users=self.n_users, n_items=self.n_items,
                               seen=self._seen, model_name=self.model_name,
                               index=index)

    def recommend_batch(self, users: Sequence[int], k: int = 10,
                        exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for a batch of users, shape ``(U, k)``.

        Bitwise-identical to the exporting model's ``recommend_batch`` for
        the same user batch (shared kernel, shared family scorer).
        """
        return self.query(Query(users=users, k=k,
                                exclude_seen=exclude_seen)).items

    def recommend(self, user: int, k: int = 10,
                  exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for one user, best first."""
        return self.recommend_batch([user], k=k, exclude_seen=exclude_seen)[0]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path], *,
             compressed: bool = True) -> Path:
        """Persist the artifact to one pickle-free ``.npz``.

        The write is atomic (temp file + fsync + rename) and embeds a
        format-version field plus a SHA-256 digest per entry, so
        :meth:`load` can reject truncated or bit-flipped files with a
        clean :class:`ArtifactIntegrityError`.

        ``compressed=False`` stores the tensors raw (``ZIP_STORED``),
        which is what lets serving workers :meth:`load` the file with
        ``mmap_mode="r"`` and share one OS page-cache copy of the
        read-only tensors across N processes.
        """
        arrays: Dict[str, np.ndarray] = {
            _META_PREFIX + "format_version": pack_scalar(ARTIFACT_FORMAT_VERSION),
            _META_PREFIX + "family": pack_scalar(self.family),
            _META_PREFIX + "model_name": pack_scalar(self.model_name),
            _META_PREFIX + "n_users": pack_scalar(self.n_users),
            _META_PREFIX + "n_items": pack_scalar(self.n_items),
            _META_PREFIX + "has_seen": pack_scalar(self.has_seen),
            _META_PREFIX + "has_ivf": pack_scalar(self.has_index),
        }
        for name, tensor in self.tensors.items():
            arrays[_TENSOR_PREFIX + name] = tensor
        if self._seen is not None:
            arrays["seen_indptr"], arrays["seen_indices"] = self._seen
        if self._index is not None:
            arrays[_IVF_PREFIX + "centroids"] = self._index.centroids
            arrays[_IVF_PREFIX + "cell_indptr"] = self._index.cell_indptr
            arrays[_IVF_PREFIX + "cell_items"] = self._index.cell_items
        return save_arrays(path, arrays, digests=True, compressed=compressed)

    @classmethod
    def load(cls, path: Union[str, Path], *,
             mmap_mode: Optional[str] = None) -> "ServingArtifact":
        """Restore an artifact written by :meth:`save`.

        Integrity is verified before anything is scored: embedded digests
        are checked against the loaded tensors, and files that are
        truncated, bit-flipped, digest-mismatching or of an unknown
        format version raise :class:`ArtifactIntegrityError`.  Files that
        are valid bundles but not serving artifacts at all (e.g. plain
        parameter files) raise ``KeyError``.

        ``mmap_mode="r"`` memory-maps the tensors of a bundle saved with
        ``compressed=False`` instead of copying them into the heap — the
        open path of the multi-process serving workers (compressed bundles
        silently fall back to an eager load; see
        :func:`repro.utils.io.load_arrays`).  Digest verification runs
        either way.
        """
        arrays = load_arrays(path, digests="auto", mmap_mode=mmap_mode)
        try:
            family = unpack_scalar(arrays[_META_PREFIX + "family"])
            n_users = unpack_scalar(arrays[_META_PREFIX + "n_users"])
            n_items = unpack_scalar(arrays[_META_PREFIX + "n_items"])
            has_seen = unpack_scalar(arrays[_META_PREFIX + "has_seen"])
        except KeyError as error:
            raise KeyError(
                f"{path} is not a serving artifact (missing {error})") from None
        version_entry = arrays.get(_META_PREFIX + "format_version")
        version = (unpack_scalar(version_entry)
                   if version_entry is not None else None)
        kind_entry = arrays.get(_META_PREFIX + "kind")
        if kind_entry is not None and unpack_scalar(kind_entry) == "delta":
            raise ArtifactIntegrityError(
                f"{path} is a delta bundle (format v{version}), not a full "
                "artifact; read it with load_delta() and apply it via "
                "ServingArtifact.delta_update() or "
                "ModelRegistry.publish_delta()")
        if version not in _SUPPORTED_FORMAT_VERSIONS:
            raise ArtifactIntegrityError(
                f"{path} has serving-artifact format version {version!r}; "
                f"this build reads versions {_SUPPORTED_FORMAT_VERSIONS}")
        model_name = unpack_scalar(arrays.get(_META_PREFIX + "model_name",
                                              np.asarray("")))
        tensors = {name[len(_TENSOR_PREFIX):]: array
                   for name, array in arrays.items()
                   if name.startswith(_TENSOR_PREFIX)}
        seen = ((arrays["seen_indptr"], arrays["seen_indices"])
                if has_seen else None)
        # Version-1 bundles predate the IVF layer: no has_ivf flag, no index.
        has_ivf_entry = arrays.get(_META_PREFIX + "has_ivf")
        has_ivf = (unpack_scalar(has_ivf_entry)
                   if has_ivf_entry is not None else False)
        index = None
        if has_ivf:
            try:
                index = IVFIndex(arrays[_IVF_PREFIX + "centroids"],
                                 arrays[_IVF_PREFIX + "cell_indptr"],
                                 arrays[_IVF_PREFIX + "cell_items"])
            except (KeyError, ValueError) as error:
                # A structurally broken index (missing entries, non-CSR
                # indptr, items dropped from the partition) is corruption
                # the per-entry digests cannot express — same failure
                # class, same exception.
                raise ArtifactIntegrityError(
                    f"{path} declares an IVF index but it is missing or "
                    f"inconsistent: {error}") from error
        return cls(family=family, tensors=tensors, n_users=n_users,
                   n_items=n_items, seen=seen, model_name=model_name,
                   index=index)

    # ------------------------------------------------------------------ #
    # delta refresh
    # ------------------------------------------------------------------ #
    def content_digest(self) -> str:
        """SHA-256 over everything that defines this artifact's answers.

        Covers the family, the id ranges, every tensor (name, dtype, shape
        and bytes), the seen CSR and the IVF index arrays.  Two artifacts
        with equal digests answer every query bitwise-identically; a delta
        records its base's digest so :meth:`delta_update` can refuse to
        patch the wrong base.  Memory-mapped and heap-resident copies of
        the same bundle hash the same (the hash reads bytes, not storage).
        """
        digest = hashlib.sha256()
        digest.update(self.family.encode("utf-8"))
        digest.update(f"|{self.n_users}|{self.n_items}|".encode("ascii"))
        for name in sorted(self.tensors):
            tensor = self.tensors[name]
            digest.update(name.encode("utf-8"))
            digest.update(f"|{tensor.dtype.str}|{tensor.shape}|".encode("ascii"))
            digest.update(np.ascontiguousarray(tensor).tobytes())
        if self._seen is not None:
            digest.update(b"|seen|")
            digest.update(np.ascontiguousarray(self._seen[0]).tobytes())
            digest.update(np.ascontiguousarray(self._seen[1]).tobytes())
        if self._index is not None:
            digest.update(b"|ivf|")
            digest.update(np.ascontiguousarray(self._index.centroids).tobytes())
            digest.update(np.ascontiguousarray(self._index.cell_indptr).tobytes())
            digest.update(np.ascontiguousarray(self._index.cell_items).tobytes())
        return digest.hexdigest()

    def delta_update(self, delta: "ArtifactDelta", *,
                     drift_threshold: float = 0.25,
                     index_random_state: RandomState = 0,
                     n_iterations: int = DEFAULT_KMEANS_ITERATIONS,
                     ) -> "ServingArtifact":
        """Apply a row-wise :class:`ArtifactDelta`, returning a new artifact.

        Copy-on-write: tensors the delta does not touch are *shared* with
        this artifact (both are frozen, so sharing is safe); touched
        tensors are rebuilt once with the updated rows scattered in, and
        rows past the old height grow the tensor (streaming growth).
        Updates whose ``rows`` is ``None`` replace the tensor wholesale
        (new tensors, 0-d scalars, non-leading-axis reshapes).  The
        delta must target exactly this artifact — its recorded base digest
        is checked against :meth:`content_digest` and a mismatch raises
        :class:`ArtifactIntegrityError` before anything is patched.

        A bundled IVF index is *patched*, not rebuilt: only items whose
        vectors changed (or are new) are reassigned to their nearest
        existing centroid — the same assignment rule k-means itself uses —
        so a small refresh costs O(changed x cells) instead of a full
        clustering pass.  When more than ``drift_threshold`` of the
        catalogue moved, patching would let centroids drift arbitrarily far
        from the data, so the index is rebuilt from scratch with the same
        cell count (seeded by ``index_random_state``).
        """
        if delta.family != self.family:
            raise ArtifactIntegrityError(
                f"delta targets family {delta.family!r}; this artifact is "
                f"{self.family!r}")
        base_digest = self.content_digest()
        if delta.base_digest != base_digest:
            raise ArtifactIntegrityError(
                f"delta was diffed against base {delta.base_digest[:12]}..., "
                f"but this artifact's content digest is "
                f"{base_digest[:12]}...; refusing to patch the wrong base")
        if delta.n_users < self.n_users or delta.n_items < self.n_items:
            raise ArtifactIntegrityError(
                f"delta shrinks the id ranges ({delta.n_users} users / "
                f"{delta.n_items} items vs {self.n_users} / {self.n_items}); "
                "artifacts only grow")
        tensors: Dict[str, np.ndarray] = dict(self.tensors)
        for name, (rows, values) in delta.updates.items():
            if rows is None:
                # Wholesale replacement: a brand-new tensor, a 0-d scalar,
                # or a reshape row-diffing cannot express (e.g. growth along
                # a non-leading axis of the (K, U, D) facet tables).
                tensors[name] = values
                continue
            base = tensors.get(name)
            if base is None:
                raise ArtifactIntegrityError(
                    f"delta updates unknown tensor {name!r}; this artifact "
                    f"has {sorted(tensors)}")
            if base.ndim == 0:
                raise ArtifactIntegrityError(
                    f"delta ships row updates for 0-d tensor {name!r}; "
                    "scalars can only be replaced wholesale")
            if values.shape[1:] != base.shape[1:] or values.dtype != base.dtype:
                raise ArtifactIntegrityError(
                    f"delta rows for {name!r} have dtype/shape "
                    f"{values.dtype}/{values.shape[1:]}, tensor has "
                    f"{base.dtype}/{base.shape[1:]}")
            old_height = base.shape[0]
            new_height = max(old_height,
                             int(rows.max()) + 1 if rows.size else 0)
            grown = np.arange(old_height, new_height, dtype=np.int64)
            if grown.size and not np.isin(grown, rows).all():
                raise ArtifactIntegrityError(
                    f"delta grows {name!r} to {new_height} rows but does "
                    "not provide every row past the old height")
            patched = np.empty((new_height,) + base.shape[1:],
                               dtype=base.dtype)
            patched[:old_height] = base
            patched[rows] = values
            tensors[name] = patched
        seen = delta.seen
        if seen is None and self._seen is not None:
            indptr, indices = self._seen
            if delta.n_users > self.n_users:
                # Grown users have no train-set history yet: extend the
                # CSR with empty rows instead of dropping exclude_seen.
                indptr = np.concatenate([
                    indptr,
                    np.full(delta.n_users - self.n_users, indptr[-1],
                            dtype=np.int64)])
            seen = (indptr, indices)
        index = None
        if self._index is not None:
            index = self._patch_index(tensors, delta.n_items,
                                      drift_threshold=drift_threshold,
                                      index_random_state=index_random_state,
                                      n_iterations=n_iterations)
        return ServingArtifact(family=self.family, tensors=tensors,
                               n_users=delta.n_users, n_items=delta.n_items,
                               seen=seen,
                               model_name=delta.model_name or self.model_name,
                               index=index)

    def _patch_index(self, new_tensors: Dict[str, np.ndarray], n_items: int,
                     *, drift_threshold: float,
                     index_random_state: RandomState,
                     n_iterations: int) -> IVFIndex:
        """Reassign only moved/new items; full k-means rebuild past drift."""
        spec = APPROX_FAMILIES[self.family]
        old_vectors = spec.item_vectors(dict(self.tensors))
        new_vectors = spec.item_vectors(new_tensors)
        centroids = self._index.centroids
        if new_vectors.shape[1] != centroids.shape[1]:
            # The item-vector dimensionality changed: old centroids are
            # meaningless, only a rebuild makes sense.
            return build_ivf_index(self.family, new_tensors,
                                   self._index.n_cells,
                                   random_state=index_random_state,
                                   n_iterations=n_iterations)
        old_n = old_vectors.shape[0]
        common = min(old_n, new_vectors.shape[0])
        changed = np.flatnonzero(np.any(
            old_vectors[:common] != new_vectors[:common], axis=1))
        touched = np.concatenate([
            changed, np.arange(old_n, n_items, dtype=np.int64)])
        if touched.size == 0 and n_items == old_n:
            return self._index  # nothing moved: share the frozen index
        if touched.size / max(n_items, 1) > drift_threshold:
            return build_ivf_index(self.family, new_tensors,
                                   self._index.n_cells,
                                   random_state=index_random_state,
                                   n_iterations=n_iterations)
        assignments = np.empty(n_items, dtype=np.int64)
        assignments[:old_n] = self._index.assignments()
        # Nearest-centroid via the Gram expansion — identical tie-breaking
        # (argmax -> lowest cell id) to the k-means assignment step, so a
        # patched cell list is exactly what assignment against these
        # centroids would have produced.
        cent_sq = np.einsum("cd,cd->c", centroids, centroids)
        affinity = 2.0 * (new_vectors[touched] @ centroids.T) \
            - cent_sq[None, :]
        assignments[touched] = np.argmax(affinity, axis=1)
        cell_items = np.argsort(assignments, kind="stable").astype(np.int64)
        sizes = np.bincount(assignments, minlength=centroids.shape[0])
        cell_indptr = np.zeros(centroids.shape[0] + 1, dtype=np.int64)
        np.cumsum(sizes, out=cell_indptr[1:])
        return IVFIndex(centroids, cell_indptr, cell_items)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def nbytes(self) -> int:
        """Total tensor payload in bytes (excluding the seen CSR)."""
        return int(sum(tensor.nbytes for tensor in self.tensors.values()))

    @property
    def memory_mapped(self) -> bool:
        """Whether every scoring tensor reads from a shared file mapping."""
        return bool(self.tensors) and all(
            is_memory_mapped(tensor) for tensor in self.tensors.values())

    def __repr__(self) -> str:
        seen = "with seen CSR" if self.has_seen else "no seen CSR"
        ivf = (f"ivf[{self._index.n_cells} cells]" if self.has_index
               else "no ivf index")
        return (f"ServingArtifact(family={self.family!r}, "
                f"model={self.model_name!r}, users={self.n_users}, "
                f"items={self.n_items}, {seen}, {ivf}, "
                f"{self.nbytes() / 1e6:.1f} MB)")


@dataclass(frozen=True)
class ArtifactDelta:
    """Sparse row-wise difference between two serving artifacts.

    ``updates`` maps each touched tensor name to ``(rows, values)``:
    ``rows`` the sorted int64 row indices that changed (or are new) and
    ``values`` the replacement rows, ``(len(rows),) + tensor.shape[1:]``.
    ``rows`` may instead be ``None``, meaning ``values`` *replaces* the
    whole tensor — used for brand-new tensors, 0-d scalars, and reshapes
    row-diffing cannot express (growth along a non-leading axis, e.g. the
    multifacet family's ``(K, n_users, D)`` facet tables).
    ``base_digest`` pins the artifact the delta was diffed against —
    :meth:`ServingArtifact.delta_update` refuses any other base.  ``seen``
    (when present) *replaces* the base's seen CSR wholesale: the CSR is a
    compact train-set summary whose rows re-pack on every append, so
    row-diffing it would save nothing.
    """

    base_digest: str
    family: str
    model_name: str
    n_users: int
    n_items: int
    updates: Mapping[str, Tuple[Optional[np.ndarray], np.ndarray]]
    seen: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def n_updated_rows(self) -> int:
        """Total updated/new rows across all touched tensors.

        A wholesale replacement counts its leading-axis height (1 for a
        0-d scalar), matching what a row-wise update of the same payload
        would report.
        """
        total = 0
        for rows, values in self.updates.values():
            if rows is None:
                total += int(values.shape[0]) if values.ndim else 1
            else:
                total += int(rows.size)
        return total

    def nbytes(self) -> int:
        """Payload bytes the delta ships (rows + values + seen CSR)."""
        total = sum((rows.nbytes if rows is not None else 0) + values.nbytes
                    for rows, values in self.updates.values())
        if self.seen is not None:
            total += self.seen[0].nbytes + self.seen[1].nbytes
        return int(total)


def make_delta(base: ServingArtifact, fresh: ServingArtifact) -> ArtifactDelta:
    """Diff ``fresh`` against ``base`` into a row-wise :class:`ArtifactDelta`.

    Both artifacts must be the same family and ``fresh`` must cover at
    least ``base``'s id ranges (streaming state only grows).  Per tensor,
    the rows that differ on the common height plus every row past it are
    recorded; tensors that did not move contribute nothing.  Tensors
    row-diffing cannot express — brand new, 0-d scalars, reshaped along a
    non-leading axis (the multifacet ``(K, n_users, D)`` facet tables grow
    this way) — ship wholesale with ``rows=None``.  ``fresh``'s
    seen CSR (when bundled) rides along wholesale.  ``fresh`` does *not*
    need an IVF index — applying the delta patches the base's index from
    the updated item vectors instead (see
    :meth:`ServingArtifact.delta_update`).
    """
    if fresh.family != base.family:
        raise ValueError(
            f"cannot diff family {fresh.family!r} against {base.family!r}")
    if fresh.n_users < base.n_users or fresh.n_items < base.n_items:
        raise ValueError(
            f"fresh artifact shrinks the id ranges ({fresh.n_users} users / "
            f"{fresh.n_items} items vs {base.n_users} / {base.n_items}); "
            "deltas only grow")
    missing = set(base.tensors) - set(fresh.tensors)
    if missing:
        raise ValueError(
            f"fresh artifact is missing tensors {sorted(missing)} present "
            "in the base")
    updates: Dict[str, Tuple[Optional[np.ndarray], np.ndarray]] = {}
    for name, new in fresh.tensors.items():
        old = base.tensors.get(name)
        if old is None or old.ndim == 0 or new.ndim == 0 \
                or old.shape[1:] != new.shape[1:] or old.dtype != new.dtype:
            # Brand-new tensor, 0-d scalar, or a reshape row-diffing cannot
            # express (growth along a non-leading axis, e.g. the multifacet
            # (K, n_users, D) facet tables): ship the whole tensor.
            if old is not None and np.array_equal(old, new) \
                    and old.dtype == new.dtype:
                continue
            # np.ascontiguousarray would promote 0-d to (1,); asarray with
            # order="C" makes contiguous while preserving the shape.
            updates[name] = (None, np.asarray(new, order="C"))
            continue
        common = min(old.shape[0], new.shape[0])
        if new.ndim == 1:
            moved = old[:common] != new[:common]
        else:
            tail_axes = tuple(range(1, new.ndim))
            moved = np.any(old[:common] != new[:common], axis=tail_axes)
        rows = np.concatenate([
            np.flatnonzero(moved).astype(np.int64),
            np.arange(common, new.shape[0], dtype=np.int64)])
        if rows.size == 0:
            continue
        updates[name] = (rows, np.ascontiguousarray(new[rows]))
    seen = None
    if fresh.has_seen:
        seen = (np.asarray(fresh._seen[0], dtype=np.int64),
                np.asarray(fresh._seen[1], dtype=np.int64))
    return ArtifactDelta(base_digest=base.content_digest(),
                         family=base.family,
                         model_name=fresh.model_name or base.model_name,
                         n_users=fresh.n_users, n_items=fresh.n_items,
                         updates=updates, seen=seen)


def save_delta(delta: ArtifactDelta, path: Union[str, Path], *,
               compressed: bool = True) -> Path:
    """Persist a delta bundle (format v3) — atomic and digest-verified.

    Same write discipline as :meth:`ServingArtifact.save`: one pickle-free
    ``.npz``, temp-file + fsync + rename, SHA-256 per entry, so
    :func:`load_delta` rejects truncated or bit-flipped delta files before
    anything is patched.
    """
    arrays: Dict[str, np.ndarray] = {
        _META_PREFIX + "format_version": pack_scalar(DELTA_FORMAT_VERSION),
        _META_PREFIX + "kind": pack_scalar("delta"),
        _META_PREFIX + "family": pack_scalar(delta.family),
        _META_PREFIX + "model_name": pack_scalar(delta.model_name),
        _META_PREFIX + "base_digest": pack_scalar(delta.base_digest),
        _META_PREFIX + "n_users": pack_scalar(delta.n_users),
        _META_PREFIX + "n_items": pack_scalar(delta.n_items),
        _META_PREFIX + "has_seen": pack_scalar(delta.seen is not None),
    }
    for name, (rows, values) in delta.updates.items():
        if rows is None:
            arrays[_DELTA_PREFIX + name + ".full"] = values
        else:
            arrays[_DELTA_PREFIX + name + ".rows"] = rows
            arrays[_DELTA_PREFIX + name + ".values"] = values
    if delta.seen is not None:
        arrays["seen_indptr"], arrays["seen_indices"] = delta.seen
    return save_arrays(path, arrays, digests=True, compressed=compressed)


def load_delta(path: Union[str, Path]) -> ArtifactDelta:
    """Restore a delta bundle written by :func:`save_delta`.

    Entry digests are verified by :func:`~repro.utils.io.load_arrays`;
    files that are not v3 delta bundles raise
    :class:`ArtifactIntegrityError` (a *full* artifact file points back at
    :meth:`ServingArtifact.load`).
    """
    arrays = load_arrays(path, digests="auto")
    version_entry = arrays.get(_META_PREFIX + "format_version")
    version = (unpack_scalar(version_entry)
               if version_entry is not None else None)
    kind_entry = arrays.get(_META_PREFIX + "kind")
    kind = unpack_scalar(kind_entry) if kind_entry is not None else None
    if kind != "delta":
        raise ArtifactIntegrityError(
            f"{path} is not a delta bundle"
            + ("; it looks like a full serving artifact — read it with "
               "ServingArtifact.load()" if version in
               _SUPPORTED_FORMAT_VERSIONS else ""))
    if version != DELTA_FORMAT_VERSION:
        raise ArtifactIntegrityError(
            f"{path} has delta format version {version!r}; this build "
            f"reads version {DELTA_FORMAT_VERSION}")
    updates: Dict[str, Tuple[Optional[np.ndarray], np.ndarray]] = {}
    for name, array in arrays.items():
        if name.startswith(_DELTA_PREFIX) and name.endswith(".rows"):
            tensor = name[len(_DELTA_PREFIX):-len(".rows")]
            try:
                values = arrays[_DELTA_PREFIX + tensor + ".values"]
            except KeyError:
                raise ArtifactIntegrityError(
                    f"{path}: delta rows for {tensor!r} have no matching "
                    "values entry") from None
            rows = np.asarray(array, dtype=np.int64)
            if rows.ndim != 1 or values.shape[:1] != rows.shape:
                raise ArtifactIntegrityError(
                    f"{path}: delta entry {tensor!r} is malformed "
                    f"(rows {rows.shape}, values {values.shape})")
            updates[tensor] = (rows, values)
        elif name.startswith(_DELTA_PREFIX) and name.endswith(".full"):
            tensor = name[len(_DELTA_PREFIX):-len(".full")]
            updates[tensor] = (None, array)
    seen = None
    if unpack_scalar(arrays[_META_PREFIX + "has_seen"]):
        seen = (np.asarray(arrays["seen_indptr"], dtype=np.int64),
                np.asarray(arrays["seen_indices"], dtype=np.int64))
    return ArtifactDelta(
        base_digest=unpack_scalar(arrays[_META_PREFIX + "base_digest"]),
        family=unpack_scalar(arrays[_META_PREFIX + "family"]),
        model_name=unpack_scalar(arrays[_META_PREFIX + "model_name"]),
        n_users=unpack_scalar(arrays[_META_PREFIX + "n_users"]),
        n_items=unpack_scalar(arrays[_META_PREFIX + "n_items"]),
        updates=updates, seen=seen)


def _freeze(array: np.ndarray) -> np.ndarray:
    """Copy an array and make the copy read-only.

    Read-only *memory-mapped* arrays pass through untouched: copying one
    would pull a private heap copy of exactly the tensors the mmap serving
    path exists to share between worker processes, and a mode-``"r"`` map
    is already immutable through every view.
    """
    if not array.flags.writeable and is_memory_mapped(array):
        return array
    frozen = np.array(array, copy=True)
    frozen.flags.writeable = False
    return frozen
