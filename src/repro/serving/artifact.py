"""Frozen, persistable serving bundles.

A :class:`ServingArtifact` is the read-only half of a fitted recommender:
the family-specific tensors needed to score (see
:mod:`repro.serving.scorers`), plus the train-set seen-items CSR so
``exclude_seen`` works without the live model, its batchers or its autograd
network.  Artifacts are immutable (arrays are frozen, attributes locked),
``save()``/``load()`` round-trip through a single pickle-free ``.npz`` file,
and answer the same :class:`~repro.serving.query.Query` API as live models —
bitwise-identically, because both delegate to the same kernel and the same
family scoring functions.

The pickle-free claim is *enforced*, not aspirational: the
``PICKLE-FREE-IO`` rule of :mod:`repro.analysis.static` lints ``serving/``
and ``utils/io.py`` on every test run — no ``import pickle``, no
``np.load`` without ``allow_pickle=False`` — so artifact files stay safe
to load from untrusted storage.  ``DTYPE-DISCIPLINE`` likewise pins the
hot scorer/kernel allocations to explicit dtypes (see the "Enforced
invariants" section of ``ROADMAP.md``).
"""

from __future__ import annotations

from pathlib import Path
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.reliability.errors import ArtifactIntegrityError
from repro.serving.kernel import broadcast_candidates, encode_seen_keys, run_query
from repro.serving.query import Query, QueryResult
from repro.serving.scorers import get_family_scorer
from repro.utils.io import (
    is_memory_mapped,
    load_arrays,
    pack_scalar,
    save_arrays,
    unpack_scalar,
)

_TENSOR_PREFIX = "tensor."
_META_PREFIX = "meta."

#: On-disk artifact format version.  Bump when the bundle layout changes;
#: :meth:`ServingArtifact.load` rejects versions it does not understand
#: with :class:`ArtifactIntegrityError` instead of misreading the file.
ARTIFACT_FORMAT_VERSION = 1


class ServingArtifact:
    """An immutable, self-contained scoring bundle for one fitted model.

    Parameters
    ----------
    family:
        Scoring-family key (must be registered in
        :data:`repro.serving.scorers.SCORER_FAMILIES`).
    tensors:
        The family's read-only arrays.  Copied and frozen at construction.
    n_users, n_items:
        The id ranges the artifact can score.
    seen:
        Optional ``(indptr, indices)`` CSR of train-set seen items (enables
        ``exclude_seen``).  Column indices must be sorted within each row —
        the canonical CSR layout — so the membership test can binary-search.
    model_name:
        Human-readable provenance label (e.g. ``"MARS"``).
    """

    __slots__ = ("family", "tensors", "n_users", "n_items", "model_name",
                 "_seen", "_seen_keys", "_scorer", "_frozen")

    def __init__(self, family: str, tensors: Mapping[str, np.ndarray],
                 n_users: int, n_items: int,
                 seen: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                 model_name: str = "") -> None:
        scorer = get_family_scorer(family)
        object.__setattr__(self, "family", str(family))
        object.__setattr__(self, "tensors", MappingProxyType(
            {name: _freeze(array) for name, array in tensors.items()}))
        object.__setattr__(self, "n_users", int(n_users))
        object.__setattr__(self, "n_items", int(n_items))
        object.__setattr__(self, "model_name", str(model_name))
        seen_keys = None
        if seen is not None:
            indptr = _freeze(np.asarray(seen[0], dtype=np.int64))
            indices = _freeze(np.asarray(seen[1], dtype=np.int64))
            if indptr.size != self.n_users + 1:
                raise ValueError(
                    f"seen indptr has {indptr.size} entries, expected "
                    f"n_users + 1 = {self.n_users + 1}")
            seen = (indptr, indices)
            # Build the candidate-membership key index once; every
            # exclude_seen candidate query binary-searches it.
            seen_keys = _freeze(encode_seen_keys(self.n_items, indptr, indices))
        object.__setattr__(self, "_seen", seen)
        object.__setattr__(self, "_seen_keys", seen_keys)
        object.__setattr__(self, "_scorer", scorer)
        object.__setattr__(self, "_frozen", True)

    # ------------------------------------------------------------------ #
    # immutability
    # ------------------------------------------------------------------ #
    def __setattr__(self, name, value):
        raise AttributeError(
            f"ServingArtifact is frozen; cannot set {name!r} — build a new "
            "artifact and publish it to the registry instead")

    def __delattr__(self, name):
        raise AttributeError("ServingArtifact is frozen")

    # ------------------------------------------------------------------ #
    # scoring / ranking
    # ------------------------------------------------------------------ #
    @property
    def has_seen(self) -> bool:
        """Whether the train-set CSR is bundled (``exclude_seen`` support)."""
        return self._seen is not None

    def _score_candidates(self, users: np.ndarray,
                          item_matrix: np.ndarray) -> np.ndarray:
        return self._scorer(self.tensors, users, item_matrix)

    def _validate_users(self, users: np.ndarray) -> None:
        """Reject ids outside ``[0, n_users)`` with a clean error.

        Without this, a negative id silently wraps to another user's
        embedding row *and* masks the wrong CSR row in ``exclude_seen``,
        while an over-range id surfaces as a raw IndexError from deep
        inside a family scorer.
        """
        if users.size == 0:
            return
        if int(users.min()) < 0 or int(users.max()) >= self.n_users:
            bad = users[(users < 0) | (users >= self.n_users)][:5]
            raise ValueError(
                f"user ids out of range for this artifact "
                f"(n_users={self.n_users}): {bad.tolist()}")

    def score_items_batch(self, users: Sequence[int],
                          item_matrix: np.ndarray) -> np.ndarray:
        """Scores for a user batch against per-user candidate lists.

        Same contract as
        :meth:`~repro.core.base.BaseRecommender.score_items_batch`, which is
        what lets :class:`~repro.eval.protocol.LeaveOneOutEvaluator` consume
        an artifact in place of the live model.
        """
        users = np.asarray(users, dtype=np.int64)
        self._validate_users(users)
        return self._score_candidates(users,
                                      broadcast_candidates(users, item_matrix))

    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        """Scores of ``items`` for a single ``user``."""
        items = np.asarray(items, dtype=np.int64)
        return self.score_items_batch([user], items[None, :])[0]

    def query(self, query: Query) -> QueryResult:
        """Execute a :class:`Query` against this artifact.

        User ids outside ``[0, n_users)`` raise :class:`ValueError` before
        any scoring happens (see :meth:`_validate_users`).
        """
        self._validate_users(query.users)
        return run_query(query, self._score_candidates, self.n_items,
                         seen=self._seen, seen_keys=self._seen_keys)

    def recommend_batch(self, users: Sequence[int], k: int = 10,
                        exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for a batch of users, shape ``(U, k)``.

        Bitwise-identical to the exporting model's ``recommend_batch`` for
        the same user batch (shared kernel, shared family scorer).
        """
        return self.query(Query(users=users, k=k,
                                exclude_seen=exclude_seen)).items

    def recommend(self, user: int, k: int = 10,
                  exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for one user, best first."""
        return self.recommend_batch([user], k=k, exclude_seen=exclude_seen)[0]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path], *,
             compressed: bool = True) -> Path:
        """Persist the artifact to one pickle-free ``.npz``.

        The write is atomic (temp file + fsync + rename) and embeds a
        format-version field plus a SHA-256 digest per entry, so
        :meth:`load` can reject truncated or bit-flipped files with a
        clean :class:`ArtifactIntegrityError`.

        ``compressed=False`` stores the tensors raw (``ZIP_STORED``),
        which is what lets serving workers :meth:`load` the file with
        ``mmap_mode="r"`` and share one OS page-cache copy of the
        read-only tensors across N processes.
        """
        arrays: Dict[str, np.ndarray] = {
            _META_PREFIX + "format_version": pack_scalar(ARTIFACT_FORMAT_VERSION),
            _META_PREFIX + "family": pack_scalar(self.family),
            _META_PREFIX + "model_name": pack_scalar(self.model_name),
            _META_PREFIX + "n_users": pack_scalar(self.n_users),
            _META_PREFIX + "n_items": pack_scalar(self.n_items),
            _META_PREFIX + "has_seen": pack_scalar(self.has_seen),
        }
        for name, tensor in self.tensors.items():
            arrays[_TENSOR_PREFIX + name] = tensor
        if self._seen is not None:
            arrays["seen_indptr"], arrays["seen_indices"] = self._seen
        return save_arrays(path, arrays, digests=True, compressed=compressed)

    @classmethod
    def load(cls, path: Union[str, Path], *,
             mmap_mode: Optional[str] = None) -> "ServingArtifact":
        """Restore an artifact written by :meth:`save`.

        Integrity is verified before anything is scored: embedded digests
        are checked against the loaded tensors, and files that are
        truncated, bit-flipped, digest-mismatching or of an unknown
        format version raise :class:`ArtifactIntegrityError`.  Files that
        are valid bundles but not serving artifacts at all (e.g. plain
        parameter files) raise ``KeyError``.

        ``mmap_mode="r"`` memory-maps the tensors of a bundle saved with
        ``compressed=False`` instead of copying them into the heap — the
        open path of the multi-process serving workers (compressed bundles
        silently fall back to an eager load; see
        :func:`repro.utils.io.load_arrays`).  Digest verification runs
        either way.
        """
        arrays = load_arrays(path, digests="auto", mmap_mode=mmap_mode)
        try:
            family = unpack_scalar(arrays[_META_PREFIX + "family"])
            n_users = unpack_scalar(arrays[_META_PREFIX + "n_users"])
            n_items = unpack_scalar(arrays[_META_PREFIX + "n_items"])
            has_seen = unpack_scalar(arrays[_META_PREFIX + "has_seen"])
        except KeyError as error:
            raise KeyError(
                f"{path} is not a serving artifact (missing {error})") from None
        version_entry = arrays.get(_META_PREFIX + "format_version")
        version = (unpack_scalar(version_entry)
                   if version_entry is not None else None)
        if version != ARTIFACT_FORMAT_VERSION:
            raise ArtifactIntegrityError(
                f"{path} has serving-artifact format version {version!r}; "
                f"this build reads version {ARTIFACT_FORMAT_VERSION}")
        model_name = unpack_scalar(arrays.get(_META_PREFIX + "model_name",
                                              np.asarray("")))
        tensors = {name[len(_TENSOR_PREFIX):]: array
                   for name, array in arrays.items()
                   if name.startswith(_TENSOR_PREFIX)}
        seen = ((arrays["seen_indptr"], arrays["seen_indices"])
                if has_seen else None)
        return cls(family=family, tensors=tensors, n_users=n_users,
                   n_items=n_items, seen=seen, model_name=model_name)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def nbytes(self) -> int:
        """Total tensor payload in bytes (excluding the seen CSR)."""
        return int(sum(tensor.nbytes for tensor in self.tensors.values()))

    @property
    def memory_mapped(self) -> bool:
        """Whether every scoring tensor reads from a shared file mapping."""
        return bool(self.tensors) and all(
            is_memory_mapped(tensor) for tensor in self.tensors.values())

    def __repr__(self) -> str:
        seen = "with seen CSR" if self.has_seen else "no seen CSR"
        return (f"ServingArtifact(family={self.family!r}, "
                f"model={self.model_name!r}, users={self.n_users}, "
                f"items={self.n_items}, {seen}, "
                f"{self.nbytes() / 1e6:.1f} MB)")


def _freeze(array: np.ndarray) -> np.ndarray:
    """Copy an array and make the copy read-only.

    Read-only *memory-mapped* arrays pass through untouched: copying one
    would pull a private heap copy of exactly the tensors the mmap serving
    path exists to share between worker processes, and a mode-``"r"`` map
    is already immutable through every view.
    """
    if not array.flags.writeable and is_memory_mapped(array):
        return array
    frozen = np.array(array, copy=True)
    frozen.flags.writeable = False
    return frozen
