"""Frozen, persistable serving bundles.

A :class:`ServingArtifact` is the read-only half of a fitted recommender:
the family-specific tensors needed to score (see
:mod:`repro.serving.scorers`), plus the train-set seen-items CSR so
``exclude_seen`` works without the live model, its batchers or its autograd
network.  Artifacts are immutable (arrays are frozen, attributes locked),
``save()``/``load()`` round-trip through a single pickle-free ``.npz`` file,
and answer the same :class:`~repro.serving.query.Query` API as live models —
bitwise-identically, because both delegate to the same kernel and the same
family scoring functions.

The pickle-free claim is *enforced*, not aspirational: the
``PICKLE-FREE-IO`` rule of :mod:`repro.analysis.static` lints ``serving/``
and ``utils/io.py`` on every test run — no ``import pickle``, no
``np.load`` without ``allow_pickle=False`` — so artifact files stay safe
to load from untrusted storage.  ``DTYPE-DISCIPLINE`` likewise pins the
hot scorer/kernel allocations to explicit dtypes (see the "Enforced
invariants" section of ``ROADMAP.md``).
"""

from __future__ import annotations

from pathlib import Path
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.reliability.errors import ArtifactIntegrityError
from repro.serving.kernel import broadcast_candidates, encode_seen_keys, run_query
from repro.serving.query import Query, QueryResult
from repro.serving.retrieval import (
    DEFAULT_KMEANS_ITERATIONS,
    IVFIndex,
    build_ivf_index,
    coarse_cell_scores,
)
from repro.serving.scorers import get_family_scorer
from repro.utils.io import (
    is_memory_mapped,
    load_arrays,
    pack_scalar,
    save_arrays,
    unpack_scalar,
)
from repro.utils.rng import RandomState

_TENSOR_PREFIX = "tensor."
_META_PREFIX = "meta."
_IVF_PREFIX = "ivf."

#: On-disk artifact format version.  Bump when the bundle layout changes;
#: :meth:`ServingArtifact.load` rejects versions it does not understand
#: with :class:`ArtifactIntegrityError` instead of misreading the file.
#: Version 2 added the optional IVF retrieval index (``ivf.*`` entries +
#: ``meta.has_ivf``); version-1 bundles still load (no index).
ARTIFACT_FORMAT_VERSION = 2

#: Format versions :meth:`ServingArtifact.load` understands.
_SUPPORTED_FORMAT_VERSIONS = (1, 2)


class ServingArtifact:
    """An immutable, self-contained scoring bundle for one fitted model.

    Parameters
    ----------
    family:
        Scoring-family key (must be registered in
        :data:`repro.serving.scorers.SCORER_FAMILIES`).
    tensors:
        The family's read-only arrays.  Copied and frozen at construction.
    n_users, n_items:
        The id ranges the artifact can score.
    seen:
        Optional ``(indptr, indices)`` CSR of train-set seen items (enables
        ``exclude_seen``).  Column indices must be sorted within each row —
        the canonical CSR layout — so the membership test can binary-search.
    model_name:
        Human-readable provenance label (e.g. ``"MARS"``).
    index:
        Optional :class:`~repro.serving.retrieval.IVFIndex` enabling
        ``Query(mode="approx")``.  Usually attached via
        :meth:`build_index` rather than passed directly.
    """

    __slots__ = ("family", "tensors", "n_users", "n_items", "model_name",
                 "_seen", "_seen_keys", "_scorer", "_index", "_frozen")

    def __init__(self, family: str, tensors: Mapping[str, np.ndarray],
                 n_users: int, n_items: int,
                 seen: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                 model_name: str = "",
                 index: Optional[IVFIndex] = None) -> None:
        scorer = get_family_scorer(family)
        object.__setattr__(self, "family", str(family))
        object.__setattr__(self, "tensors", MappingProxyType(
            {name: _freeze(array) for name, array in tensors.items()}))
        object.__setattr__(self, "n_users", int(n_users))
        object.__setattr__(self, "n_items", int(n_items))
        object.__setattr__(self, "model_name", str(model_name))
        seen_keys = None
        if seen is not None:
            indptr = _freeze(np.asarray(seen[0], dtype=np.int64))
            indices = _freeze(np.asarray(seen[1], dtype=np.int64))
            if indptr.size != self.n_users + 1:
                raise ValueError(
                    f"seen indptr has {indptr.size} entries, expected "
                    f"n_users + 1 = {self.n_users + 1}")
            seen = (indptr, indices)
            # Build the candidate-membership key index once; every
            # exclude_seen candidate query binary-searches it.
            seen_keys = _freeze(encode_seen_keys(self.n_items, indptr, indices))
        object.__setattr__(self, "_seen", seen)
        object.__setattr__(self, "_seen_keys", seen_keys)
        object.__setattr__(self, "_scorer", scorer)
        if index is not None and index.n_items != self.n_items:
            raise ValueError(
                f"IVF index covers {index.n_items} items but the artifact "
                f"catalogue has {self.n_items}")
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_frozen", True)

    # ------------------------------------------------------------------ #
    # immutability
    # ------------------------------------------------------------------ #
    def __setattr__(self, name, value):
        raise AttributeError(
            f"ServingArtifact is frozen; cannot set {name!r} — build a new "
            "artifact and publish it to the registry instead")

    def __delattr__(self, name):
        raise AttributeError("ServingArtifact is frozen")

    # ------------------------------------------------------------------ #
    # scoring / ranking
    # ------------------------------------------------------------------ #
    @property
    def has_seen(self) -> bool:
        """Whether the train-set CSR is bundled (``exclude_seen`` support)."""
        return self._seen is not None

    @property
    def has_index(self) -> bool:
        """Whether an IVF index is bundled (``mode="approx"`` support)."""
        return self._index is not None

    @property
    def index(self) -> Optional[IVFIndex]:
        """The bundled :class:`~repro.serving.retrieval.IVFIndex`, if any."""
        return self._index

    def _score_candidates(self, users: np.ndarray,
                          item_matrix: np.ndarray) -> np.ndarray:
        return self._scorer(self.tensors, users, item_matrix)

    def _validate_users(self, users: np.ndarray) -> None:
        """Reject ids outside ``[0, n_users)`` with a clean error.

        Without this, a negative id silently wraps to another user's
        embedding row *and* masks the wrong CSR row in ``exclude_seen``,
        while an over-range id surfaces as a raw IndexError from deep
        inside a family scorer.
        """
        if users.size == 0:
            return
        if int(users.min()) < 0 or int(users.max()) >= self.n_users:
            bad = users[(users < 0) | (users >= self.n_users)][:5]
            raise ValueError(
                f"user ids out of range for this artifact "
                f"(n_users={self.n_users}): {bad.tolist()}")

    def score_items_batch(self, users: Sequence[int],
                          item_matrix: np.ndarray) -> np.ndarray:
        """Scores for a user batch against per-user candidate lists.

        Same contract as
        :meth:`~repro.core.base.BaseRecommender.score_items_batch`, which is
        what lets :class:`~repro.eval.protocol.LeaveOneOutEvaluator` consume
        an artifact in place of the live model.
        """
        users = np.asarray(users, dtype=np.int64)
        self._validate_users(users)
        return self._score_candidates(users,
                                      broadcast_candidates(users, item_matrix))

    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        """Scores of ``items`` for a single ``user``."""
        items = np.asarray(items, dtype=np.int64)
        return self.score_items_batch([user], items[None, :])[0]

    def query(self, query: Query) -> QueryResult:
        """Execute a :class:`Query` against this artifact.

        User ids outside ``[0, n_users)`` raise :class:`ValueError` before
        any scoring happens (see :meth:`_validate_users`).
        ``mode="approx"`` probes the bundled IVF index for candidates and
        re-ranks them exactly (requires :attr:`has_index`).
        """
        self._validate_users(query.users)
        if query.mode == "approx":
            return self._approx_query(query)
        return run_query(query, self._score_candidates, self.n_items,
                         seen=self._seen, seen_keys=self._seen_keys)

    def probe_candidates(self, users: Sequence[int],
                         n_probe: Optional[int] = None,
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """IVF candidate lists for a user batch, before re-ranking.

        Returns ``(candidates, counts)``: the ``(U, C)`` ``-1``-padded
        candidate matrix the approx path re-ranks, and the ``(U,)`` true
        per-user candidate counts — the observable behind the sub-linearity
        gate (``counts < n_items`` whenever fewer than all cells are
        probed).
        """
        if self._index is None:
            raise RuntimeError(
                "this artifact has no IVF index; attach one with "
                "build_index() before probing or querying mode='approx'")
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        self._validate_users(users)
        cell_scores = coarse_cell_scores(self.family, self.tensors, users,
                                         self._index)
        return self._index.probe(cell_scores, n_probe=n_probe)

    def _approx_query(self, query: Query) -> QueryResult:
        """Probe the IVF index, then exact-re-rank the candidate union."""
        candidates, _ = self.probe_candidates(query.users,
                                              n_probe=query.n_probe)
        rerank = Query(users=query.users, k=query.k,
                       exclude_seen=query.exclude_seen,
                       candidates=candidates,
                       exclude_items=query.exclude_items)
        result = run_query(rerank, self._score_candidates, self.n_items,
                           seen=self._seen, seen_keys=self._seen_keys)
        # Keep the result shape mode-independent: when the probed union is
        # narrower than k, right-pad with the no-recommendable-item
        # sentinel (-1 / -inf) up to the exact path's min(k, n_items).
        width = min(query.k, self.n_items)
        if result.items.shape[1] < width:
            items = np.full((result.n_users, width), -1, dtype=np.int64)
            scores = np.full((result.n_users, width), -np.inf,
                             dtype=np.float64)
            items[:, :result.items.shape[1]] = result.items
            scores[:, :result.scores.shape[1]] = result.scores
            result = QueryResult(items=items, scores=scores,
                                 degraded=result.degraded)
        return result

    def build_index(self, n_cells: int, random_state: RandomState = None,
                    n_iterations: int = DEFAULT_KMEANS_ITERATIONS,
                    ) -> "ServingArtifact":
        """Return a new artifact with a freshly built IVF index attached.

        The artifact itself is immutable, so index construction — seeded
        k-means over this family's item vectors (see
        :func:`repro.serving.retrieval.build_ivf_index`) — produces a new
        bundle sharing the same frozen semantics; :meth:`save` then packs
        the index arrays next to the tensors.
        """
        index = build_ivf_index(self.family, self.tensors, n_cells,
                                random_state=random_state,
                                n_iterations=n_iterations)
        return ServingArtifact(family=self.family, tensors=self.tensors,
                               n_users=self.n_users, n_items=self.n_items,
                               seen=self._seen, model_name=self.model_name,
                               index=index)

    def recommend_batch(self, users: Sequence[int], k: int = 10,
                        exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for a batch of users, shape ``(U, k)``.

        Bitwise-identical to the exporting model's ``recommend_batch`` for
        the same user batch (shared kernel, shared family scorer).
        """
        return self.query(Query(users=users, k=k,
                                exclude_seen=exclude_seen)).items

    def recommend(self, user: int, k: int = 10,
                  exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for one user, best first."""
        return self.recommend_batch([user], k=k, exclude_seen=exclude_seen)[0]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path], *,
             compressed: bool = True) -> Path:
        """Persist the artifact to one pickle-free ``.npz``.

        The write is atomic (temp file + fsync + rename) and embeds a
        format-version field plus a SHA-256 digest per entry, so
        :meth:`load` can reject truncated or bit-flipped files with a
        clean :class:`ArtifactIntegrityError`.

        ``compressed=False`` stores the tensors raw (``ZIP_STORED``),
        which is what lets serving workers :meth:`load` the file with
        ``mmap_mode="r"`` and share one OS page-cache copy of the
        read-only tensors across N processes.
        """
        arrays: Dict[str, np.ndarray] = {
            _META_PREFIX + "format_version": pack_scalar(ARTIFACT_FORMAT_VERSION),
            _META_PREFIX + "family": pack_scalar(self.family),
            _META_PREFIX + "model_name": pack_scalar(self.model_name),
            _META_PREFIX + "n_users": pack_scalar(self.n_users),
            _META_PREFIX + "n_items": pack_scalar(self.n_items),
            _META_PREFIX + "has_seen": pack_scalar(self.has_seen),
            _META_PREFIX + "has_ivf": pack_scalar(self.has_index),
        }
        for name, tensor in self.tensors.items():
            arrays[_TENSOR_PREFIX + name] = tensor
        if self._seen is not None:
            arrays["seen_indptr"], arrays["seen_indices"] = self._seen
        if self._index is not None:
            arrays[_IVF_PREFIX + "centroids"] = self._index.centroids
            arrays[_IVF_PREFIX + "cell_indptr"] = self._index.cell_indptr
            arrays[_IVF_PREFIX + "cell_items"] = self._index.cell_items
        return save_arrays(path, arrays, digests=True, compressed=compressed)

    @classmethod
    def load(cls, path: Union[str, Path], *,
             mmap_mode: Optional[str] = None) -> "ServingArtifact":
        """Restore an artifact written by :meth:`save`.

        Integrity is verified before anything is scored: embedded digests
        are checked against the loaded tensors, and files that are
        truncated, bit-flipped, digest-mismatching or of an unknown
        format version raise :class:`ArtifactIntegrityError`.  Files that
        are valid bundles but not serving artifacts at all (e.g. plain
        parameter files) raise ``KeyError``.

        ``mmap_mode="r"`` memory-maps the tensors of a bundle saved with
        ``compressed=False`` instead of copying them into the heap — the
        open path of the multi-process serving workers (compressed bundles
        silently fall back to an eager load; see
        :func:`repro.utils.io.load_arrays`).  Digest verification runs
        either way.
        """
        arrays = load_arrays(path, digests="auto", mmap_mode=mmap_mode)
        try:
            family = unpack_scalar(arrays[_META_PREFIX + "family"])
            n_users = unpack_scalar(arrays[_META_PREFIX + "n_users"])
            n_items = unpack_scalar(arrays[_META_PREFIX + "n_items"])
            has_seen = unpack_scalar(arrays[_META_PREFIX + "has_seen"])
        except KeyError as error:
            raise KeyError(
                f"{path} is not a serving artifact (missing {error})") from None
        version_entry = arrays.get(_META_PREFIX + "format_version")
        version = (unpack_scalar(version_entry)
                   if version_entry is not None else None)
        if version not in _SUPPORTED_FORMAT_VERSIONS:
            raise ArtifactIntegrityError(
                f"{path} has serving-artifact format version {version!r}; "
                f"this build reads versions {_SUPPORTED_FORMAT_VERSIONS}")
        model_name = unpack_scalar(arrays.get(_META_PREFIX + "model_name",
                                              np.asarray("")))
        tensors = {name[len(_TENSOR_PREFIX):]: array
                   for name, array in arrays.items()
                   if name.startswith(_TENSOR_PREFIX)}
        seen = ((arrays["seen_indptr"], arrays["seen_indices"])
                if has_seen else None)
        # Version-1 bundles predate the IVF layer: no has_ivf flag, no index.
        has_ivf_entry = arrays.get(_META_PREFIX + "has_ivf")
        has_ivf = (unpack_scalar(has_ivf_entry)
                   if has_ivf_entry is not None else False)
        index = None
        if has_ivf:
            try:
                index = IVFIndex(arrays[_IVF_PREFIX + "centroids"],
                                 arrays[_IVF_PREFIX + "cell_indptr"],
                                 arrays[_IVF_PREFIX + "cell_items"])
            except (KeyError, ValueError) as error:
                # A structurally broken index (missing entries, non-CSR
                # indptr, items dropped from the partition) is corruption
                # the per-entry digests cannot express — same failure
                # class, same exception.
                raise ArtifactIntegrityError(
                    f"{path} declares an IVF index but it is missing or "
                    f"inconsistent: {error}") from error
        return cls(family=family, tensors=tensors, n_users=n_users,
                   n_items=n_items, seen=seen, model_name=model_name,
                   index=index)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def nbytes(self) -> int:
        """Total tensor payload in bytes (excluding the seen CSR)."""
        return int(sum(tensor.nbytes for tensor in self.tensors.values()))

    @property
    def memory_mapped(self) -> bool:
        """Whether every scoring tensor reads from a shared file mapping."""
        return bool(self.tensors) and all(
            is_memory_mapped(tensor) for tensor in self.tensors.values())

    def __repr__(self) -> str:
        seen = "with seen CSR" if self.has_seen else "no seen CSR"
        ivf = (f"ivf[{self._index.n_cells} cells]" if self.has_index
               else "no ivf index")
        return (f"ServingArtifact(family={self.family!r}, "
                f"model={self.model_name!r}, users={self.n_users}, "
                f"items={self.n_items}, {seen}, {ivf}, "
                f"{self.nbytes() / 1e6:.1f} MB)")


def _freeze(array: np.ndarray) -> np.ndarray:
    """Copy an array and make the copy read-only.

    Read-only *memory-mapped* arrays pass through untouched: copying one
    would pull a private heap copy of exactly the tensors the mmap serving
    path exists to share between worker processes, and a mode-``"r"`` map
    is already immutable through every view.
    """
    if not array.flags.writeable and is_memory_mapped(array):
        return array
    frozen = np.array(array, copy=True)
    frozen.flags.writeable = False
    return frozen
