"""The serving front-end: model registry, micro-batching, response cache.

:class:`ModelRegistry` holds named, versioned
:class:`~repro.serving.artifact.ServingArtifact` bundles with atomic
hot-swap — publishing a new artifact under an existing name bumps its
version; in-flight queries finish on the artifact they resolved, new
queries see the new one.  :meth:`ModelRegistry.publish_path` loads and
*verifies* an artifact file before swapping, so a corrupt file can never
evict a good live version.

:class:`RecommenderService` is the request-facing layer.  Batched calls
(:meth:`RecommenderService.recommend_batch`, :meth:`RecommenderService.query`)
go straight to the kernel.  Single-user :meth:`RecommenderService.recommend`
calls are *coalesced*: the first caller becomes the micro-batch leader and
waits until either ``max_batch_size`` compatible requests have queued or
``max_wait_ms`` has elapsed, then scores the whole batch with one kernel
pass and distributes the rows — turning a thundering herd of per-user
requests into a handful of vectorised scorer calls.  A bounded LRU cache
keyed by the *full query identity* — ``(model, version, user, k,
exclude_seen, mode, n_probe, candidate-list hash)`` — short-circuits
repeat requests and is invalidated by version bump on hot-swap; queries
that differ in any knob never share a cache row.

The failure paths are first-class (see ``ROADMAP.md``, "Reliability
contract"):

- **Deadlines** — ``Query(deadline_ms=...)`` / ``recommend(deadline_ms=...)``
  bound how long the caller waits; late answers raise
  :class:`DeadlineExceededError` (the background work may still complete).
- **Load shedding** — the admission queue is bounded by ``max_queue``;
  requests beyond it are refused with :class:`ServiceOverloadedError`
  instead of growing an unbounded backlog.
- **Circuit breaking** — every primary scoring pass routes through a
  per-model :class:`~repro.reliability.circuit.CircuitBreaker`; after
  ``failure_threshold`` consecutive scorer failures the model fails fast
  (:class:`CircuitOpenError`) until a half-open probe succeeds.
- **Graceful degradation** — models with a fallback artifact registered
  via :meth:`RecommenderService.register_fallback` answer from the
  fallback (``QueryResult.degraded=True``) whenever the primary scorer
  fails or its circuit is open.  Degraded rows are never cached.
- :meth:`RecommenderService.health` exposes queue depth and per-model
  circuit state for external monitoring.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.reliability.circuit import CircuitBreaker
from repro.reliability.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceOverloadedError,
)
from repro.reliability.faults import fire as _fire
from repro.serving.artifact import ArtifactDelta, ServingArtifact, load_delta
from repro.serving.query import Query, QueryResult
from repro.utils.io import PathLike

DEFAULT_MODEL = "default"


class ModelRegistry:
    """Named, versioned artifacts with atomic publish (hot-swap)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries: Dict[str, Tuple[ServingArtifact, int]] = {}

    def publish(self, name: str, artifact: ServingArtifact) -> int:
        """Install ``artifact`` under ``name``; returns the new version.

        Atomic: readers either see the previous ``(artifact, version)`` pair
        or the new one, never a mixture.
        """
        if not isinstance(artifact, ServingArtifact):
            raise TypeError(
                f"registry accepts ServingArtifact bundles, got "
                f"{type(artifact).__name__}; call model.export_serving() first")
        with self._lock:
            version = self._entries.get(name, (None, 0))[1] + 1
            self._entries[name] = (artifact, version)
            return version

    def publish_path(self, name: str, path: PathLike) -> int:
        """Load, verify and publish an artifact file under ``name``.

        The file's embedded digests and format version are checked by
        :meth:`ServingArtifact.load` *before* the registry is touched: a
        truncated, bit-flipped or wrong-version file raises
        :class:`~repro.reliability.errors.ArtifactIntegrityError` and the
        currently-published version (if any) keeps serving.
        """
        artifact = ServingArtifact.load(path)
        return self.publish(name, artifact)

    def publish_delta(self, name: str,
                      delta: Union[ArtifactDelta, PathLike], *,
                      drift_threshold: float = 0.25,
                      index_random_state: int = 0) -> int:
        """Apply a delta to the live artifact and hot-swap the result.

        ``delta`` is either an in-memory
        :class:`~repro.serving.artifact.ArtifactDelta` or the path of a v3
        delta bundle (verified by
        :func:`~repro.serving.artifact.load_delta` before anything is
        touched).  The patch itself
        (:meth:`~repro.serving.artifact.ServingArtifact.delta_update`)
        checks the delta's base digest against the *currently published*
        version, so a delta diffed against a stale base — or a corrupt
        delta file — leaves the live version serving, exactly like
        :meth:`publish_path`.  The swap is the same atomic publish as
        always; in-flight queries finish on the pre-delta artifact.
        """
        if not isinstance(delta, ArtifactDelta):
            delta = load_delta(delta)
        artifact, _, resolved = self.get(name)
        updated = artifact.delta_update(
            delta, drift_threshold=drift_threshold,
            index_random_state=index_random_state)
        return self.publish(resolved, updated)

    def get(self, name: Optional[str] = None) -> Tuple[ServingArtifact, int, str]:
        """Resolve ``(artifact, version, name)``; ``name=None`` works when
        exactly one model is registered."""
        with self._lock:
            if name is None:
                if len(self._entries) != 1:
                    raise KeyError(
                        f"registry holds {len(self._entries)} models "
                        f"({sorted(self._entries)}); specify one by name")
                name = next(iter(self._entries))
            try:
                artifact, version = self._entries[name]
            except KeyError:
                raise KeyError(
                    f"no model named {name!r} is published; available: "
                    f"{sorted(self._entries)}") from None
            return artifact, version, name

    def version(self, name: str) -> int:
        with self._lock:
            try:
                return self._entries[name][1]
            except KeyError:
                raise KeyError(
                    f"no model named {name!r} is published; available: "
                    f"{sorted(self._entries)}") from None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _LRUCache:
    """Thread-safe bounded LRU for per-user top-k responses."""

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

    def get(self, key) -> Optional[np.ndarray]:
        if self.capacity <= 0:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key, value: np.ndarray) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def purge_model(self, name: str) -> None:
        with self._lock:
            for key in [key for key in self._entries if key[0] == name]:
                del self._entries[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _Request:
    """One pending single-user recommendation awaiting a micro-batch."""

    __slots__ = ("group", "artifact", "user", "candidates", "done", "result",
                 "error", "degraded")

    def __init__(self, group: tuple, artifact: ServingArtifact, user: int,
                 candidates: Optional[np.ndarray] = None) -> None:
        # (name, version, k, exclude_seen, mode, n_probe, candidates_hash)
        self.group = group
        self.artifact = artifact    # resolved at request time: in-flight
        self.user = user            # requests finish on the swap-out artifact
        self.candidates = candidates  # shared 1-D list; hash lives in group
        self.done = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.degraded = False


class RecommenderService:
    """Micro-batching, caching, failure-hardened front-end over a registry.

    Parameters
    ----------
    models:
        Either a single :class:`ServingArtifact` (published as
        ``"default"``), a ``{name: artifact}`` mapping, or ``None`` to start
        empty and :meth:`publish` later.
    registry:
        Use an existing registry instead of building one (mutually
        exclusive with ``models``).
    max_batch_size:
        Coalesce at most this many single-user requests per micro-batch.
    max_wait_ms:
        How long a micro-batch leader waits for co-arriving requests before
        flushing.  ``0`` flushes immediately (still batching whatever is
        already queued), which is the right setting for single-threaded
        callers.
    cache_size:
        Capacity of the per-user top-k LRU cache (``0`` disables it).
    max_queue:
        Admission bound on queued single-user requests.  Arrivals beyond
        it are shed with :class:`ServiceOverloadedError` (counted in
        ``stats["shed"]``).  ``None`` disables shedding.
    failure_threshold, reset_timeout_s:
        Per-model circuit-breaker tuning (consecutive scorer failures to
        trip; seconds open before a half-open probe).
    clock:
        Monotonic time source for the circuit breakers (injectable so
        tests drive open → half-open transitions without sleeping).
    """

    def __init__(self,
                 models: Union[ServingArtifact, Mapping[str, ServingArtifact],
                               None] = None,
                 *, registry: Optional[ModelRegistry] = None,
                 max_batch_size: int = 64, max_wait_ms: float = 2.0,
                 cache_size: int = 4096, max_queue: Optional[int] = 1024,
                 failure_threshold: int = 5, reset_timeout_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if registry is not None and models is not None:
            raise ValueError("pass either models or a registry, not both")
        self.registry = registry if registry is not None else ModelRegistry()
        if isinstance(models, ServingArtifact):
            self.registry.publish(DEFAULT_MODEL, models)
        elif models is not None:
            for name, artifact in models.items():
                self.registry.publish(name, artifact)
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be at least 1 (or None)")
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait_ms) / 1e3
        self.max_queue = None if max_queue is None else int(max_queue)
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._cache = _LRUCache(cache_size)
        self._cond = threading.Condition()
        self._pending: List[_Request] = []
        self._leader_active = False
        self._breaker_lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._fallbacks: Dict[str, ServingArtifact] = {}
        self._stats_lock = threading.Lock()
        self._stats = {
            "requests": 0,          # single-user recommend() calls
            "batch_requests": 0,    # recommend_batch()/query() calls
            "micro_batches": 0,     # kernel passes executed for coalesced calls
            "coalesced": 0,         # single-user requests served by those passes
            "cache_hits": 0,
            "cache_misses": 0,
            "shed": 0,              # requests refused at admission (queue full)
            "deadline_exceeded": 0,  # callers released late with an error
            "degraded": 0,          # kernel passes answered by a fallback
        }

    # ------------------------------------------------------------------ #
    # registry surface
    # ------------------------------------------------------------------ #
    def publish(self, name: str, artifact: ServingArtifact) -> int:
        """Hot-swap ``name`` to ``artifact``; invalidates its cached rows."""
        version = self.registry.publish(name, artifact)
        self._cache.purge_model(name)
        return version

    def publish_path(self, name: str, path: PathLike) -> int:
        """Verify-then-swap an artifact file (see
        :meth:`ModelRegistry.publish_path`); invalidates cached rows."""
        version = self.registry.publish_path(name, path)
        self._cache.purge_model(name)
        return version

    def publish_delta(self, name: str,
                      delta: Union[ArtifactDelta, PathLike], *,
                      drift_threshold: float = 0.25,
                      index_random_state: int = 0) -> int:
        """Delta-patch the live artifact and hot-swap (see
        :meth:`ModelRegistry.publish_delta`); invalidates cached rows, so
        a response cached against the pre-delta version can never be
        served after the swap."""
        version = self.registry.publish_delta(
            name, delta, drift_threshold=drift_threshold,
            index_random_state=index_random_state)
        self._cache.purge_model(name)
        return version

    def register_fallback(self, artifact: ServingArtifact,
                          model: Optional[str] = None) -> None:
        """Register a degradation artifact for ``model``.

        When the primary scorer raises (or its circuit is open) the
        service answers from this artifact instead, flagging the response
        ``QueryResult.degraded=True``.  A cheap, robust model — e.g. a
        popularity artifact — is the intended fallback.
        """
        if not isinstance(artifact, ServingArtifact):
            raise TypeError(
                f"fallback must be a ServingArtifact, got "
                f"{type(artifact).__name__}")
        _, _, name = self.registry.get(model)
        self._fallbacks[name] = artifact

    # ------------------------------------------------------------------ #
    # guarded scoring funnel (circuit breaker + fault site + degradation)
    # ------------------------------------------------------------------ #
    def _breaker(self, name: str) -> CircuitBreaker:
        with self._breaker_lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    reset_timeout_s=self.reset_timeout_s, clock=self._clock)
                self._breakers[name] = breaker
            return breaker

    def _primary_query(self, name: str, artifact: ServingArtifact,
                       query: Query) -> QueryResult:
        """Every primary scoring pass funnels through here."""
        breaker = self._breaker(name)
        if not breaker.allow():
            raise CircuitOpenError(
                f"circuit for model {name!r} is open after "
                f"{self.failure_threshold} consecutive scorer failures")
        try:
            _fire("serving.scorer")
            result = artifact.query(query)
        except BaseException:
            breaker.record_failure()
            raise
        breaker.record_success()
        return result

    def _guarded_query(self, name: str, artifact: ServingArtifact,
                       query: Query) -> QueryResult:
        """Primary scoring with graceful degradation to the fallback."""
        try:
            return self._primary_query(name, artifact, query)
        except BaseException:
            fallback = self._fallbacks.get(name)
            if fallback is None:
                raise
            self._bump("degraded")
            result = fallback.query(query)
            return QueryResult(items=result.items, scores=result.scores,
                               degraded=True)

    # ------------------------------------------------------------------ #
    # read path
    # ------------------------------------------------------------------ #
    def recommend_batch(self, users: Sequence[int], k: int = 10,
                        exclude_seen: bool = True,
                        model: Optional[str] = None) -> np.ndarray:
        """Top-``k`` for a caller-assembled user batch (no coalescing)."""
        artifact, _, name = self.registry.get(model)
        self._bump("batch_requests")
        return self._guarded_query(
            name, artifact,
            Query(users=users, k=k, exclude_seen=exclude_seen)).items

    def query(self, query: Query, model: Optional[str] = None) -> QueryResult:
        """Execute a full :class:`Query` against a published artifact.

        Honours ``query.deadline_ms``: if the scoring pass (primary or
        degraded) finishes past the budget the caller gets
        :class:`DeadlineExceededError` instead of a late answer.
        """
        started = time.monotonic() if query.deadline_ms is not None else None
        artifact, _, name = self.registry.get(model)
        self._bump("batch_requests")
        result = self._guarded_query(name, artifact, query)
        if started is not None:
            elapsed_ms = (time.monotonic() - started) * 1e3
            if elapsed_ms > query.deadline_ms:
                self._bump("deadline_exceeded")
                raise DeadlineExceededError(
                    f"query answered in {elapsed_ms:.1f} ms, past its "
                    f"{query.deadline_ms:.1f} ms deadline")
        return result

    def recommend(self, user: int, k: int = 10, exclude_seen: bool = True,
                  model: Optional[str] = None,
                  deadline_ms: Optional[float] = None, *,
                  mode: str = "exact", n_probe: Optional[int] = None,
                  candidates: Optional[Sequence[int]] = None) -> np.ndarray:
        """Top-``k`` for one user — cached, and coalesced into micro-batches.

        Concurrent callers of compatible requests (same model version, same
        ``k``/``exclude_seen``/``mode``/``n_probe``/candidate list) share
        one vectorised kernel pass; the result is bitwise what
        :meth:`recommend_batch` returns for the coalesced user batch.
        ``mode="approx"`` routes through the artifact's IVF index (see
        :class:`~repro.serving.query.Query`); ``candidates`` restricts
        ranking to a shared 1-D item list (exact mode only).
        ``deadline_ms`` bounds the caller's wait
        (:class:`DeadlineExceededError`); a full admission queue sheds the
        request at the door (:class:`ServiceOverloadedError`).

        The cache key covers the full query identity — two requests that
        differ only in ``mode``, ``n_probe`` or the candidate list can
        never serve each other's rows.
        """
        artifact, version, name = self.registry.get(model)
        self._bump("requests")
        if mode not in ("exact", "approx"):
            raise ValueError(f"mode must be 'exact' or 'approx', got {mode!r}")
        if n_probe is not None:
            if mode != "approx":
                raise ValueError("n_probe only applies to mode='approx'")
            n_probe = int(n_probe)
            if n_probe < 1:
                raise ValueError(f"n_probe must be >= 1, got {n_probe}")
        candidates_hash = None
        if candidates is not None:
            if mode == "approx":
                raise ValueError(
                    "mode='approx' generates its own candidates from the "
                    "IVF index; explicit candidates require mode='exact'")
            candidates = np.atleast_1d(np.asarray(candidates, dtype=np.int64))
            if candidates.ndim != 1:
                raise ValueError(
                    "recommend() takes a shared 1-D candidate list; use "
                    "query() for per-user candidate matrices")
            candidates_hash = hashlib.sha256(candidates.tobytes()).hexdigest()
        deadline = None
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
            if deadline_ms <= 0:
                raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
            deadline = time.monotonic() + deadline_ms / 1e3
        key = (name, version, int(user), int(k), bool(exclude_seen),
               mode, n_probe, candidates_hash)
        cached = self._cache.get(key)
        if cached is not None:
            self._bump("cache_hits")
            return cached.copy()
        self._bump("cache_misses")

        request = _Request(group=(name, version, int(k), bool(exclude_seen),
                                  mode, n_probe, candidates_hash),
                           artifact=artifact, user=int(user),
                           candidates=candidates)
        with self._cond:
            if self.max_queue is not None \
                    and len(self._pending) >= self.max_queue:
                self._bump("shed")
                raise ServiceOverloadedError(
                    f"admission queue is full ({len(self._pending)} pending, "
                    f"max_queue={self.max_queue}); request for user {user} "
                    f"shed")
            self._pending.append(request)
            self._cond.notify_all()  # wake a leader waiting for batch fill
            leader = not self._leader_active
            if leader:
                self._leader_active = True
        if leader:
            self._lead_micro_batch()
        # The leader fulfils every request it drained (including its own).
        # Followers poll so that a request orphaned by a crashed leader
        # re-elects itself instead of blocking forever.
        while not request.done.wait(timeout=0.05):
            if deadline is not None and time.monotonic() > deadline:
                self._bump("deadline_exceeded")
                raise DeadlineExceededError(
                    f"request for user {user} missed its "
                    f"{deadline_ms:.1f} ms deadline while awaiting a "
                    f"micro-batch")
            with self._cond:
                takeover = (not request.done.is_set()
                            and not self._leader_active
                            and bool(self._pending))
                if takeover:
                    self._leader_active = True
            if takeover:
                self._lead_micro_batch()
        if deadline is not None and time.monotonic() > deadline:
            self._bump("deadline_exceeded")
            raise DeadlineExceededError(
                f"request for user {user} completed past its "
                f"{deadline_ms:.1f} ms deadline")
        if request.error is not None:
            raise request.error
        return request.result.copy()

    # ------------------------------------------------------------------ #
    # micro-batching internals
    # ------------------------------------------------------------------ #
    def _lead_micro_batch(self) -> None:
        # Loop (not recurse) over micro-batches until the queue is drained.
        # Leadership release happens atomically with the empty-queue check,
        # so a request either lands in some leader's batch or finds
        # `_leader_active` false and elects itself.  If the leader dies, the
        # except releases leadership, fails every request it had drained but
        # not fulfilled (they are in no queue, so nobody else could serve
        # them), and still-queued followers take over through the poll loop
        # in :meth:`recommend` — no caller can hang.
        batch: List[_Request] = []
        try:
            while True:
                deadline = time.monotonic() + self.max_wait
                with self._cond:
                    while len(self._pending) < self.max_batch_size:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._pending:
                            break
                        self._cond.wait(remaining)
                    batch = self._pending[:self.max_batch_size]
                    del self._pending[:self.max_batch_size]
                    if not batch:
                        self._leader_active = False
                        return
                self._execute(batch)
                with self._cond:
                    if not self._pending:
                        self._leader_active = False
                        return
        except BaseException as error:
            with self._cond:
                self._leader_active = False
            for request in batch:
                if not request.done.is_set():
                    request.error = error
                    request.done.set()
            raise

    def _execute(self, batch: List[_Request]) -> None:
        if not batch:
            return
        groups: "OrderedDict[tuple, List[_Request]]" = OrderedDict()
        for request in batch:
            groups.setdefault(request.group, []).append(request)
        for group, requests in groups.items():
            name, version, k, exclude_seen, mode, n_probe, candidates_hash = \
                group
            users = np.array([request.user for request in requests],
                             dtype=np.int64)
            try:
                result = self._guarded_query(
                    name, requests[0].artifact,
                    Query(users=users, k=k, exclude_seen=exclude_seen,
                          candidates=requests[0].candidates, mode=mode,
                          n_probe=n_probe))
            except BaseException as error:  # propagate to every waiter
                for request in requests:
                    request.error = error
                    request.done.set()
                continue
            self._bump("micro_batches")
            self._bump("coalesced", len(requests))
            for request, row in zip(requests, result.items):
                # Copy the row out of the (U, k) batch array: caching (or
                # handing a caller) a view would pin the whole batch
                # allocation for as long as any single row lives.
                row = row.copy()
                if not result.degraded:  # degraded rows are never cached
                    self._cache.put((name, version, request.user, k,
                                     exclude_seen, mode, n_probe,
                                     candidates_hash), row)
                request.degraded = result.degraded
                request.result = row
                request.done.set()

    # ------------------------------------------------------------------ #
    # stats / health
    # ------------------------------------------------------------------ #
    def _bump(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._stats[key] += amount

    @property
    def stats(self) -> Dict[str, int]:
        """Counters: requests, micro_batches, coalesced, cache hits/misses,
        shed, deadline_exceeded, degraded."""
        with self._stats_lock:
            return dict(self._stats)

    def health(self) -> Dict[str, object]:
        """Operational snapshot: queue depth, circuit state, fallbacks.

        ``circuits`` maps each model that has taken traffic to its
        breaker's :meth:`~repro.reliability.circuit.CircuitBreaker.snapshot`
        (state, consecutive failures, times opened).
        """
        with self._cond:
            queue_depth = len(self._pending)
        with self._breaker_lock:
            circuits = {name: breaker.snapshot()
                        for name, breaker in sorted(self._breakers.items())}
        return {
            "queue_depth": queue_depth,
            "max_queue": self.max_queue,
            "models": self.registry.names(),
            "circuits": circuits,
            "fallbacks": sorted(self._fallbacks),
        }
