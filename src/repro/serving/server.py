"""Multi-process serving tier: asyncio front-end over a worker-process pool.

:class:`RecommenderServer` scales the read path past one GIL.  A single
asyncio event loop (running in a background thread, so the surrounding
program stays synchronous) accepts TCP connections, and a pool of forked
``multiprocessing`` workers does the actual scoring.  Every worker opens
the published artifact ``.npz`` files with ``mmap_mode="r"``; because the
artifacts are written uncompressed (``ZIP_STORED``), the workers'
read-only tensors resolve to ``np.memmap`` views of the same file — N
workers, one OS page-cache copy, no per-process heap duplication.

Wire protocol
-------------
Both hops — client ↔ server over TCP, and server ↔ worker over a
``multiprocessing`` pipe — speak the frame format of
:mod:`repro.serving.wire`::

    MAGIC b"RSV1" | u32 header_len | u32 payload_len | JSON header | payload

The JSON header carries the frame ``kind``, scalar metadata and a tensor
manifest (``[{name, dtype, shape}]``); the payload is the concatenated
raw little-endian array bytes, decoded zero-copy with ``np.frombuffer``.
No pickle crosses either hop.  Client-visible kinds:

- ``query``   → ``result`` | ``error`` — a :class:`Query` (users tensor,
  ``k``, ``exclude_seen``, optional candidates/blocklist tensors,
  optional ``deadline_ms``, optional ``model`` name) answered with a
  :class:`QueryResult` (items/scores tensors, ``degraded`` flag) or an
  ``error`` frame carrying an exception type name + message that
  :func:`repro.serving.wire.raise_remote_error` re-raises client-side.
- ``ping``    → ``pong`` — health/introspection: model versions, live
  worker count, server stats.

A connection handles any number of sequential request frames; concurrent
load uses concurrent connections (see
:func:`repro.serving.client.run_closed_loop`).

**Cross-connection coalescing** — plain single-user top-k queries (one
user, no candidates/blocklist, no caller deadline) that are pending at
the same moment for the same ``(model, k, exclude_seen, mode, n_probe)``
are merged into *one* batched frame and answered by one worker round
trip, then the result rows are split back per connection.  This recovers
the in-process micro-batcher's vectorisation win at the socket tier; the
``ping`` counter ``coalesced_queries`` counts queries served through a
merged frame.

Worker lifecycle
----------------
1. **Spawn** — the parent forks ``n_workers`` processes *before* starting
   the event-loop thread, hands each a ``{name: (artifact_path,
   version)}`` table over its pipe, and waits for a ``ready`` frame
   confirming the artifacts loaded (and whether they memory-mapped).
2. **Serve** — idle workers sit in an in-loop queue.  Each admitted query
   frame is relayed verbatim to one worker (exclusive ownership from
   acquisition to release, so pipes never interleave) and the worker's
   ``result``/``error`` frame is relayed back.
3. **Deadlines & shedding** — ``deadline_ms`` is enforced at the parent:
   waiting for a worker and the worker round trip both count, and an
   elapsed budget raises
   :class:`~repro.reliability.errors.DeadlineExceededError` while a
   background drain collects the worker's late reply before re-admitting
   it.  Admission beyond ``max_pending`` in-flight requests is shed
   immediately with
   :class:`~repro.reliability.errors.ServiceOverloadedError` — the
   bounded-queue contract of the in-process service, kept at the socket.
4. **Death** — a broken pipe or dead process mid-request is detected, the
   request is **re-dispatched once** to another worker (fail-fast with
   the original error if the retry also dies), and a replacement worker
   is forked in the background from the current model table.
5. **Hot swap** — :meth:`publish` bumps the model version and performs a
   rolling reload: each worker is drained (acquired from the idle queue,
   so it is not mid-request), sent a ``reload`` frame pointing at the new
   artifact path, and re-admitted once it answers ``ready``.  Traffic
   keeps flowing through the not-yet-swapped workers; no request fails.
6. **Shutdown** — :meth:`stop` closes the listener, stops the loop, asks
   each worker to exit with a ``shutdown`` frame and terminates any that
   linger.

The fault-injection site ``serving.worker`` fires in the worker before
each query (``REPRO_FAULTS`` is inherited through the fork), so delays
and failures can be injected per-worker for resilience tests.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.reliability.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
)
from repro.serving import wire
from repro.serving.query import Query, QueryResult
from repro.serving.worker import worker_main

PathLike = Union[str, Path]

#: Seconds a freshly forked worker gets to load its artifacts and report
#: ``ready`` before the spawn is declared failed.
_SPAWN_TIMEOUT_S = 60.0
#: Seconds a drained worker gets to complete a ``reload`` round trip.
_RELOAD_TIMEOUT_S = 60.0


class _RoundTripTimeout(Exception):
    """Internal: the worker did not answer within the request's budget."""


class _Worker:
    """Parent-side handle of one worker process (exclusive-use resource)."""

    __slots__ = ("id", "process", "conn")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.id = worker_id
        self.process = process
        self.conn = conn

    def alive(self) -> bool:
        return self.process.is_alive()


class _PendingSingle:
    """One coalescable single-user query awaiting a shared worker trip."""

    __slots__ = ("user", "blob", "future")

    def __init__(self, user: int, blob: bytes,
                 future: "asyncio.Future") -> None:
        self.user = user
        self.blob = blob      # original frame, relayed verbatim if alone
        self.future = future  # resolves to this request's reply bytes


class RecommenderServer:
    """Socket front-end + worker pool over published serving artifacts.

    Parameters
    ----------
    models:
        ``{name: artifact_path}`` of the initial model table, or a single
        path (registered under ``"default"``).  Artifacts should be saved
        with ``compressed=False`` so the workers can memory-map them.
    n_workers:
        Worker processes to fork (>= 1; the end-to-end contract wants 2+).
    host, port:
        Listen address; ``port=0`` picks a free port (see :attr:`address`).
    max_pending:
        In-flight request cap; admissions beyond it are shed with
        :class:`ServiceOverloadedError`.
    default_deadline_ms:
        Deadline applied to queries that do not carry their own.
    """

    def __init__(self, models: Union[PathLike, Mapping[str, PathLike]],
                 n_workers: int = 2, host: str = "127.0.0.1", port: int = 0,
                 max_pending: int = 64,
                 default_deadline_ms: Optional[float] = None) -> None:
        if isinstance(models, (str, Path)):
            models = {"default": models}
        if not models:
            raise ValueError("at least one model artifact is required")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._table: Dict[str, Tuple[str, int]] = {
            str(name): (str(path), 1) for name, path in models.items()}
        self.n_workers = int(n_workers)
        self.host = host
        self.port = int(port)
        self.max_pending = int(max_pending)
        self.default_deadline_ms = default_deadline_ms
        self.address: Optional[Tuple[str, int]] = None

        self._ctx = multiprocessing.get_context("fork")
        self._workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._idle: Optional[asyncio.Queue] = None
        self._in_flight = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._shutdown_future: Optional[asyncio.Future] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._closing = False
        self._publish_lock = threading.Lock()
        # Cross-connection coalescing state (event-loop-thread only): the
        # pending bucket per compatible-query key, and the keys whose
        # bucket currently has an active leader draining it.
        self._coalesce: Dict[tuple, list] = {}
        self._coalesce_leaders: set = set()
        self._stats: Dict[str, int] = {
            "requests": 0, "answered": 0, "errors": 0, "shed": 0,
            "deadline_exceeded": 0, "worker_deaths": 0, "redispatched": 0,
            "respawns": 0, "reloads": 0, "coalesced_queries": 0,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "RecommenderServer":
        """Fork the worker pool, then start the event-loop thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        # Workers are forked before any background thread exists — the
        # only thread-safe moment to fork — and handshaken synchronously.
        workers = []
        try:
            for _ in range(self.n_workers):
                workers.append(self._spawn_worker_sync())
        except BaseException:
            for worker in workers:
                self._kill_worker(worker)
            raise
        for worker in workers:
            self._workers[worker.id] = worker
        self._executor = ThreadPoolExecutor(
            max_workers=2 * self.n_workers + 4,
            thread_name_prefix="serving-io")
        self._thread = threading.Thread(
            target=self._run_loop, name="serving-loop", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._start_error is not None:
            self.stop()
            raise RuntimeError(
                f"server failed to start: {self._start_error}")
        return self

    def stop(self) -> None:
        """Stop accepting, stop the loop, shut the workers down."""
        self._closing = True
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._request_shutdown)
            self._thread.join(timeout=10.0)
        for worker in list(self._workers.values()):
            self._shutdown_worker(worker)
        self._workers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    def __enter__(self) -> "RecommenderServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # worker pool (sync halves)
    # ------------------------------------------------------------------ #
    def _spawn_worker_sync(self) -> _Worker:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, dict(self._table), worker_id),
            name=f"serving-worker-{worker_id}", daemon=True)
        process.start()
        child_conn.close()
        worker = _Worker(worker_id, process, parent_conn)
        try:
            if not parent_conn.poll(_SPAWN_TIMEOUT_S):
                raise RuntimeError(
                    f"worker {worker_id} did not report ready within "
                    f"{_SPAWN_TIMEOUT_S:.0f}s")
            kind, meta, _ = wire.decode_frame(parent_conn.recv_bytes())
            if kind == "error":
                wire.raise_remote_error(meta)
            if kind != "ready":
                raise RuntimeError(
                    f"worker {worker_id} answered {kind!r} instead of ready")
        except BaseException:
            self._kill_worker(worker)
            raise
        return worker

    def _kill_worker(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def _shutdown_worker(self, worker: _Worker) -> None:
        try:
            worker.conn.send_bytes(wire.encode_frame("shutdown", {}))
            if worker.conn.poll(2.0):
                worker.conn.recv_bytes()
        except (EOFError, OSError):
            pass
        self._kill_worker(worker)

    def _round_trip_sync(self, worker: _Worker, blob: bytes,
                         timeout: Optional[float]) -> bytes:
        """Send one frame and wait for the reply (executor thread)."""
        worker.conn.send_bytes(blob)
        if not worker.conn.poll(timeout):
            raise _RoundTripTimeout()
        return worker.conn.recv_bytes()

    def _drain_sync(self, worker: _Worker) -> bool:
        """Collect a late reply after a deadline timeout.

        Returns ``True`` once the stale reply arrived (worker reusable),
        ``False`` if the worker died instead.
        """
        try:
            while True:
                if worker.conn.poll(0.1):
                    worker.conn.recv_bytes()
                    return True
                if not worker.alive():
                    return False
        except (EOFError, OSError):
            return False

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #
    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    def _request_shutdown(self) -> None:
        if self._shutdown_future is not None \
                and not self._shutdown_future.done():
            self._shutdown_future.set_result(None)

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._shutdown_future = loop.create_future()
        self._idle = asyncio.Queue()
        for worker in self._workers.values():
            self._idle.put_nowait(worker)
        try:
            server = await asyncio.start_server(
                self._serve_connection, host=self.host, port=self.port)
        except BaseException as error:
            self._start_error = error
            self._started.set()
            return
        self.address = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            async with server:
                await self._shutdown_future
        finally:
            self.address = None
            # Cancel lingering connection handlers / drains / respawns so
            # nothing is destroyed mid-coroutine when the loop closes.
            tasks = [task for task in asyncio.all_tasks()
                     if task is not asyncio.current_task()]
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                blob = await wire.read_frame_async(reader)
                reply = await self._handle_frame(blob)
                writer.write(reply)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        except wire.ProtocolError as error:
            try:
                writer.write(wire.encode_error(error))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_frame(self, blob: bytes) -> bytes:
        try:
            kind, meta, tensors = wire.decode_frame(blob)
        except wire.ProtocolError as error:
            return wire.encode_error(error)
        if kind == "ping":
            return wire.encode_frame("pong", self._status())
        if kind != "query":
            return wire.encode_error(
                wire.ProtocolError(f"unexpected frame kind {kind!r}"))

        self._stats["requests"] += 1
        if self._in_flight >= self.max_pending:
            self._stats["shed"] += 1
            return wire.encode_error(ServiceOverloadedError(
                f"admission queue full ({self.max_pending} requests in "
                "flight); retry with backoff"))
        self._in_flight += 1
        try:
            key = self._coalesce_key(meta, tensors)
            if key is not None:
                reply = await self._dispatch_coalesced(key, blob, tensors)
            else:
                reply = await self._dispatch(blob, meta)
        except DeadlineExceededError as error:
            self._stats["deadline_exceeded"] += 1
            reply = wire.encode_error(error)
        except BaseException as error:
            self._stats["errors"] += 1
            reply = wire.encode_error(error)
        finally:
            self._in_flight -= 1
        return reply

    async def _dispatch(self, blob: bytes, meta: dict) -> bytes:
        """Resolve, enforce the deadline, relay to a worker (retry once)."""
        self._resolve_name(meta.get("model"))
        deadline_ms = meta.get("deadline_ms", self.default_deadline_ms)
        deadline = (None if deadline_ms is None
                    else time.monotonic() + float(deadline_ms) / 1000.0)
        return await self._relay_to_worker(blob, deadline, deadline_ms)

    async def _relay_to_worker(self, blob: bytes, deadline: Optional[float],
                               deadline_ms: Optional[float]) -> bytes:
        """Acquire a worker, round-trip one frame, retry once on death."""
        death_error: Optional[BaseException] = None
        for attempt in range(2):
            worker = await self._acquire_worker(deadline)
            loop = asyncio.get_running_loop()
            try:
                remaining = self._remaining(deadline)
            except DeadlineExceededError:
                self._release(worker)
                raise
            try:
                reply = await loop.run_in_executor(
                    self._executor, self._round_trip_sync, worker, blob,
                    remaining)
            except _RoundTripTimeout:
                # The worker is still computing: collect its late reply in
                # the background, then put it back in rotation.
                self._drain_then_readmit(worker)
                raise DeadlineExceededError(
                    f"deadline of {deadline_ms}ms elapsed during scoring")
            except (EOFError, OSError) as error:
                self._note_death(worker)
                death_error = error
                if attempt == 0:
                    self._stats["redispatched"] += 1
                    continue  # re-dispatch once to another worker
                break
            else:
                self._release(worker)
                self._stats["answered"] += 1
                return reply
        raise RuntimeError(
            f"worker died while serving the request (re-dispatch also "
            f"failed): {type(death_error).__name__}: {death_error}")

    # ------------------------------------------------------------------ #
    # cross-connection coalescing
    # ------------------------------------------------------------------ #
    def _coalesce_key(self, meta: dict, tensors: dict) -> Optional[tuple]:
        """Coalescing group of a query frame, or ``None`` if not eligible.

        Eligible frames are plain single-user top-k lookups: one user, no
        candidate/blocklist tensors, no caller deadline (the uniform
        ``default_deadline_ms`` still applies), ranked ``k``.  Everything
        in the key must make two frames interchangeable rows of one
        batched kernel pass.
        """
        users = tensors.get("users")
        if users is None or users.size != 1:
            return None
        if "candidates" in tensors or "exclude_items" in tensors:
            return None
        if meta.get("deadline_ms") is not None:
            return None
        k = meta.get("k", 10)
        if k is None:
            return None
        model = meta.get("model")
        n_probe = meta.get("n_probe")
        return (None if model is None else str(model), int(k),
                bool(meta.get("exclude_seen", True)),
                str(meta.get("mode", "exact")),
                None if n_probe is None else int(n_probe))

    async def _dispatch_coalesced(self, key: tuple, blob: bytes,
                                  tensors: dict) -> bytes:
        """Queue a coalescable query and await its reply.

        All bucket/leader state is touched only between awaits on the
        event-loop thread, so check-then-act sequences here are atomic.
        The first arriver for a key starts a detached drain task (so no
        single connection is held hostage leading the bucket); the drain
        serves whole buckets — one worker round trip each — until no
        compatible queries are pending.
        """
        loop = asyncio.get_running_loop()
        pend = _PendingSingle(int(tensors["users"][0]), blob,
                              loop.create_future())
        self._coalesce.setdefault(key, []).append(pend)
        if key not in self._coalesce_leaders:
            self._coalesce_leaders.add(key)
            loop.create_task(self._drain_bucket(key))
        return await pend.future

    async def _drain_bucket(self, key: tuple) -> None:
        try:
            while True:
                batch = self._coalesce.get(key)
                if not batch:
                    break
                self._coalesce[key] = []
                await self._serve_batch(key, batch)
        finally:
            # No awaits between the emptiness check above and this block,
            # so a new arrival either saw the leader flag (and is in a
            # batch that was served) or re-elects a drain after it clears.
            self._coalesce_leaders.discard(key)
            for orphan in self._coalesce.pop(key, []):
                if not orphan.future.done():
                    orphan.future.cancel()

    async def _serve_batch(self, key: tuple, batch: list) -> None:
        """One worker round trip for a bucket; never raises — failures land
        on the members' futures (each handler reports its own error)."""
        model, k, exclude_seen, mode, n_probe = key
        try:
            if len(batch) == 1:
                replies = [await self._relay_single(batch[0].blob, model)]
            else:
                users = np.array([pend.user for pend in batch],
                                 dtype=np.int64)
                merged = wire.encode_query(
                    Query(users=users, k=k, exclude_seen=exclude_seen,
                          mode=mode, n_probe=n_probe), model)
                reply = await self._relay_single(merged, model)
                kind, meta, reply_tensors = wire.decode_frame(reply)
                if kind == "result":
                    result = wire.decode_result(meta, reply_tensors)
                    replies = [
                        wire.encode_result(QueryResult(
                            items=result.items[row:row + 1],
                            scores=result.scores[row:row + 1],
                            degraded=result.degraded))
                        for row in range(len(batch))]
                    self._stats["coalesced_queries"] += len(batch)
                else:  # error frame: every member sees the same failure
                    replies = [reply] * len(batch)
        except asyncio.CancelledError:
            for pend in batch:
                if not pend.future.done():
                    pend.future.cancel()
            raise
        except BaseException as error:
            for pend in batch:
                if not pend.future.done():
                    pend.future.set_exception(error)
            return
        for pend, reply in zip(batch, replies):
            if not pend.future.done():
                pend.future.set_result(reply)

    async def _relay_single(self, blob: bytes, model: Optional[str]) -> bytes:
        self._resolve_name(model)
        deadline_ms = self.default_deadline_ms
        deadline = (None if deadline_ms is None
                    else time.monotonic() + float(deadline_ms) / 1000.0)
        return await self._relay_to_worker(blob, deadline, deadline_ms)

    def _remaining(self, deadline: Optional[float]) -> Optional[float]:
        if deadline is None:
            return None
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceededError("deadline elapsed before dispatch")
        return remaining

    async def _acquire_worker(self, deadline: Optional[float]) -> _Worker:
        while True:
            timeout = self._remaining(deadline)
            try:
                worker = await asyncio.wait_for(self._idle.get(), timeout)
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    "deadline elapsed waiting for a free worker") from None
            if worker.alive():
                return worker
            self._note_death(worker)  # died while idle; try the next one

    def _release(self, worker: _Worker) -> None:
        if not self._closing:
            self._idle.put_nowait(worker)

    def _drain_then_readmit(self, worker: _Worker) -> None:
        async def drain() -> None:
            loop = asyncio.get_running_loop()
            ok = await loop.run_in_executor(
                self._executor, self._drain_sync, worker)
            if ok:
                self._release(worker)
            else:
                self._note_death(worker)

        asyncio.get_running_loop().create_task(drain())

    def _note_death(self, worker: _Worker) -> None:
        if worker.id not in self._workers:
            return
        del self._workers[worker.id]
        self._stats["worker_deaths"] += 1
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=0.1)
        if not self._closing:
            asyncio.get_running_loop().create_task(self._respawn())

    async def _respawn(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            worker = await loop.run_in_executor(
                self._executor, self._spawn_worker_sync)
        except BaseException:
            return  # pool shrinks; the remaining workers keep serving
        if self._closing:
            self._kill_worker(worker)
            return
        self._workers[worker.id] = worker
        self._stats["respawns"] += 1
        self._idle.put_nowait(worker)

    # ------------------------------------------------------------------ #
    # model table / hot swap
    # ------------------------------------------------------------------ #
    def _resolve_name(self, name: Optional[str]) -> str:
        """Validate the target model with the registry's error contract."""
        table = self._table
        if name is None:
            if len(table) != 1:
                raise KeyError(
                    f"registry holds {len(table)} models "
                    f"({sorted(table)}); specify one by name")
            return next(iter(table))
        name = str(name)
        if name not in table:
            raise KeyError(
                f"no model named {name!r} is published; available: "
                f"{sorted(table)}")
        return name

    def version(self, name: str) -> int:
        """Current published version of ``name`` (registry error contract)."""
        try:
            return self._table[name][1]
        except KeyError:
            raise KeyError(
                f"no model named {name!r} is published; available: "
                f"{sorted(self._table)}") from None

    def publish(self, name: str, path: PathLike,
                timeout_s: float = 120.0) -> int:
        """Hot-swap ``name`` to the artifact at ``path`` (rolling reload).

        Drains one worker at a time — acquired from the idle queue, so it
        is never mid-request — reloads it against the new artifact, and
        re-admits it.  Traffic keeps flowing through the other workers;
        returns the new version number.
        """
        if self._loop is None or not self._started.is_set():
            raise RuntimeError("server is not running")
        with self._publish_lock:
            name = str(name)
            version = self._table.get(name, (None, 0))[1] + 1
            future = asyncio.run_coroutine_threadsafe(
                self._publish_async(name, str(Path(path)), version),
                self._loop)
            future.result(timeout=timeout_s)
            return version

    async def _publish_async(self, name: str, path: str,
                             version: int) -> None:
        self._table[name] = (path, version)
        reload_blob = wire.encode_frame(
            "reload", {"model": name, "path": path, "version": version})
        pending = set(self._workers)
        loop = asyncio.get_running_loop()
        while pending:
            pending &= set(self._workers)  # drop workers that died
            if not pending:
                break
            worker = await self._idle.get()
            if worker.id not in pending:
                # Already swapped (or a fresh respawn that loaded the new
                # table); hand it straight back and let the queue rotate.
                self._idle.put_nowait(worker)
                await asyncio.sleep(0.005)
                continue
            try:
                reply = await loop.run_in_executor(
                    self._executor, self._round_trip_sync, worker,
                    reload_blob, _RELOAD_TIMEOUT_S)
                kind, meta, _ = wire.decode_frame(reply)
                if kind == "error":
                    wire.raise_remote_error(meta)
            except _RoundTripTimeout:
                pending.discard(worker.id)
                self._note_death(worker)
                self._kill_worker(worker)
                continue
            except (EOFError, OSError):
                pending.discard(worker.id)
                self._note_death(worker)
                continue
            pending.discard(worker.id)
            self._stats["reloads"] += 1
            self._release(worker)

    # ------------------------------------------------------------------ #
    # stats / health
    # ------------------------------------------------------------------ #
    def _status(self) -> dict:
        return {
            "models": {name: version
                       for name, (_, version) in self._table.items()},
            "workers": sum(worker.alive()
                           for worker in self._workers.values()),
            "in_flight": self._in_flight,
            "stats": dict(self._stats),
        }

    @property
    def stats(self) -> Dict[str, int]:
        """Counters: requests, answered, errors, shed, deadline_exceeded,
        worker_deaths, redispatched, respawns, reloads."""
        return dict(self._stats)
