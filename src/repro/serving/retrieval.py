"""Sub-linear approximate retrieval: an IVF index over the item tables.

Every family scorer in :mod:`repro.serving.scorers` ranks by a
full-catalogue pass — O(n_items) work per user per query — which caps
throughput once the catalogue outgrows the GEMM.  This module adds the
classic inverted-file (IVF) coarse-quantization layer in front of the
exact kernel:

1. **Build** (offline, seeded): k-means over the family's item vectors
   partitions the catalogue into ``n_cells`` cells.  The index is three
   plain arrays — cell centroids ``(n_cells, D)`` plus a CSR
   ``cell_indptr``/``cell_items`` mapping each cell to its member item
   ids — packed into the :class:`~repro.serving.artifact.ServingArtifact`
   ``.npz`` next to the scoring tensors (digest-verified, pickle-free,
   memory-mappable across forked serving workers like every other
   tensor).
2. **Probe** (per query): the user vector is scored against the
   *centroids* only — O(n_cells) instead of O(n_items) — and the top
   ``n_probe`` cells' item lists are unioned into a per-user candidate
   list (``-1``-padded to a rectangle, the pad convention of
   :func:`repro.serving.kernel.run_query`).
3. **Re-rank** (exact): the candidates go through the existing
   candidate-list scoring path of the kernel, so approximate answers are
   a *verified subset* of exact scores — same family scorer, same seen
   masking, same partial sort.  Approximation only ever loses items
   whose cells were not probed; it never invents or perturbs a score.

Families
--------
Only families whose scoring decomposes as a distance/inner product
between one user vector and one item vector support coarse
quantization; the registry :data:`APPROX_FAMILIES` maps each to its
item-vector extraction and centroid scoring rule:

``euclidean``
    Cells cluster ``item_embeddings``; cells are ranked by
    ``-‖u − c‖²`` (the Gram expansion, one ``(U, n_cells)`` GEMM).
``dot_bias``
    The classic MIPS reduction: items cluster as ``[v, bias]`` in
    ``D + 1`` dimensions and users probe as ``[u, 1]``, so the centroid
    inner product equals the mean full score of the cell — the additive
    bias steers cell choice exactly as it steers item ranking.

The hot paths here are linted like the other kernels: the
``DTYPE-DISCIPLINE`` rule of :mod:`repro.analysis.static` covers this
module, and randomness routes through :func:`repro.utils.rng.ensure_rng`
(``RNG-DISCIPLINE``) so index builds are reproducible from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.utils.io import is_memory_mapped
from repro.utils.rng import RandomState, ensure_rng

#: Default Lloyd iteration budget for index builds.  Convergence is
#: declared early when assignments stop moving.
DEFAULT_KMEANS_ITERATIONS = 25


@dataclass(frozen=True)
class FamilyRetrieval:
    """How one scoring family plugs into the IVF layer.

    ``item_vectors`` extracts the ``(n_items, D')`` matrix the cells are
    clustered over; ``user_vectors`` the matching ``(U, D')`` probe
    vectors; ``coarse_scores`` ranks cells so that a higher score means
    the cell is more likely to hold top items for the user (it must be
    order-compatible with the family's exact item scores).
    """

    item_vectors: Callable[[Dict[str, np.ndarray]], np.ndarray]
    user_vectors: Callable[[Dict[str, np.ndarray], np.ndarray], np.ndarray]
    coarse_scores: Callable[[np.ndarray, np.ndarray], np.ndarray]


def _negative_sq_distances(user_vecs: np.ndarray,
                           centroids: np.ndarray) -> np.ndarray:
    """``-‖u − c‖²`` via the Gram expansion — one BLAS matmul."""
    dots = user_vecs @ centroids.T
    user_sq = np.einsum("ud,ud->u", user_vecs, user_vecs)
    cent_sq = np.einsum("cd,cd->c", centroids, centroids)
    return 2.0 * dots - user_sq[:, None] - cent_sq[None, :]


def _dot_scores(user_vecs: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    return user_vecs @ centroids.T


def _augmented_dot_items(tensors: Dict[str, np.ndarray]) -> np.ndarray:
    """MIPS reduction: append the item bias as one extra coordinate."""
    embeddings = np.asarray(tensors["item_embeddings"], dtype=np.float64)
    bias = np.asarray(tensors["item_bias"], dtype=np.float64)
    return np.concatenate([embeddings, bias[:, None]], axis=1)


def _augmented_dot_users(tensors: Dict[str, np.ndarray],
                         users: np.ndarray) -> np.ndarray:
    vecs = np.asarray(tensors["user_embeddings"], dtype=np.float64)[users]
    pad = np.ones((vecs.shape[0], 1), dtype=np.float64)
    return np.concatenate([vecs, pad], axis=1)


#: ``family -> FamilyRetrieval`` for every family that supports
#: ``Query(mode="approx")``.  Families absent here (attention/MLP heads,
#: dense precomputed fallbacks) have no item-vector geometry to quantize
#: and serve exact-only.
APPROX_FAMILIES: Dict[str, FamilyRetrieval] = {
    "euclidean": FamilyRetrieval(
        item_vectors=lambda tensors: np.asarray(
            tensors["item_embeddings"], dtype=np.float64),
        user_vectors=lambda tensors, users: np.asarray(
            tensors["user_embeddings"], dtype=np.float64)[users],
        coarse_scores=_negative_sq_distances,
    ),
    "dot_bias": FamilyRetrieval(
        item_vectors=_augmented_dot_items,
        user_vectors=_augmented_dot_users,
        coarse_scores=_dot_scores,
    ),
}


def supports_approx(family: str) -> bool:
    """Whether ``family`` can build and probe an IVF index."""
    return family in APPROX_FAMILIES


# --------------------------------------------------------------------------- #
# seeded k-means
# --------------------------------------------------------------------------- #
def kmeans_cells(vectors: np.ndarray, n_cells: int,
                 random_state: RandomState = None,
                 n_iterations: int = DEFAULT_KMEANS_ITERATIONS,
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded Lloyd k-means; returns ``(centroids, assignments)``.

    Deterministic for a given seed: initial centroids are a seeded
    distinct sample of the rows, ties in the assignment step break to
    the lowest cell id (``argmin``), and empty cells are re-seeded to
    the points currently farthest from their centroid (largest residual
    first) — so the whole partition is a pure function of
    ``(vectors, n_cells, seed)``.

    Parameters
    ----------
    vectors:
        ``(n, D)`` rows to cluster (the family's item vectors).
    n_cells:
        Number of cells; clipped to ``n`` when the catalogue is smaller.
    random_state:
        Seed / generator via :func:`repro.utils.rng.ensure_rng`.
    n_iterations:
        Lloyd iteration cap; iteration stops early on a fixed point.
    """
    vectors = np.ascontiguousarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[0] == 0:
        raise ValueError(
            f"vectors must be a non-empty (n, D) matrix, got shape "
            f"{vectors.shape}")
    n_rows = vectors.shape[0]
    n_cells = int(n_cells)
    if n_cells < 1:
        raise ValueError(f"n_cells must be >= 1, got {n_cells}")
    n_cells = min(n_cells, n_rows)
    rng = ensure_rng(random_state)

    centroids = vectors[np.sort(rng.choice(n_rows, size=n_cells,
                                           replace=False))].copy()
    assignments = np.full(n_rows, -1, dtype=np.int64)
    row_sq = np.einsum("nd,nd->n", vectors, vectors)
    for _ in range(max(1, int(n_iterations))):
        # Assign: argmin ‖x − c‖² via the Gram expansion (‖x‖² is a
        # per-row constant, so it cannot change the argmin and is left
        # out of the (n, n_cells) distance block).
        cent_sq = np.einsum("cd,cd->c", centroids, centroids)
        affinity = 2.0 * (vectors @ centroids.T) - cent_sq[None, :]
        new_assignments = np.argmax(affinity, axis=1).astype(np.int64)

        counts = np.bincount(new_assignments, minlength=n_cells)
        empty = np.flatnonzero(counts == 0)
        if empty.size:
            # Re-seed empty cells on the worst-fit points: largest
            # residual to their assigned centroid, deterministic order.
            residual = row_sq - affinity[
                np.arange(n_rows, dtype=np.int64), new_assignments]
            donors = np.argsort(-residual, kind="stable")[:empty.size]
            new_assignments[donors] = empty
            centroids[empty] = vectors[donors]
            counts = np.bincount(new_assignments, minlength=n_cells)

        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        # Update: per-dimension bincount segment sums (D is small).
        sums = np.empty((n_cells, vectors.shape[1]), dtype=np.float64)
        for dim in range(vectors.shape[1]):
            sums[:, dim] = np.bincount(assignments,
                                       weights=vectors[:, dim],
                                       minlength=n_cells)
        centroids = sums / counts[:, None]
    return centroids, assignments


# --------------------------------------------------------------------------- #
# the index
# --------------------------------------------------------------------------- #
class IVFIndex:
    """Inverted-file index: cell centroids plus CSR cell → item lists.

    Parameters
    ----------
    centroids:
        ``(n_cells, D)`` cell centers in the family's item-vector space.
    cell_indptr:
        ``(n_cells + 1,)`` CSR row pointers into ``cell_items``.
    cell_items:
        ``(n_items,)`` item ids grouped by cell; within each cell the
        ids are ascending.  Every catalogue item belongs to exactly one
        cell — validated at construction, so a corrupt index can never
        silently drop items from the reachable catalogue.

    Arrays are frozen at construction (memory-mapped inputs pass through
    uncopied, exactly like the artifact tensors — the whole point of
    packing the index into the mmap-shared bundle).
    """

    __slots__ = ("centroids", "cell_indptr", "cell_items", "_frozen")

    def __init__(self, centroids: np.ndarray, cell_indptr: np.ndarray,
                 cell_items: np.ndarray) -> None:
        centroids = _freeze(np.asarray(centroids, dtype=np.float64))
        cell_indptr = _freeze(np.asarray(cell_indptr, dtype=np.int64))
        cell_items = _freeze(np.asarray(cell_items, dtype=np.int64))
        if centroids.ndim != 2:
            raise ValueError(
                f"centroids must be (n_cells, D), got shape {centroids.shape}")
        n_cells = centroids.shape[0]
        if cell_indptr.shape != (n_cells + 1,):
            raise ValueError(
                f"cell_indptr has shape {cell_indptr.shape}, expected "
                f"({n_cells + 1},) for {n_cells} cells")
        if cell_indptr[0] != 0 or np.any(np.diff(cell_indptr) < 0) \
                or cell_indptr[-1] != cell_items.size:
            raise ValueError(
                "cell_indptr is not a monotone CSR over cell_items "
                f"(indptr[0]={int(cell_indptr[0])}, "
                f"indptr[-1]={int(cell_indptr[-1])}, "
                f"len(cell_items)={cell_items.size})")
        membership = np.bincount(cell_items, minlength=cell_items.size) \
            if cell_items.size else np.zeros(0, dtype=np.int64)
        if cell_items.size and (cell_items.min() < 0
                                or cell_items.max() >= cell_items.size
                                or np.any(membership != 1)):
            raise ValueError(
                "cell_items is not a permutation of the catalogue: every "
                "item must belong to exactly one cell")
        object.__setattr__(self, "centroids", centroids)
        object.__setattr__(self, "cell_indptr", cell_indptr)
        object.__setattr__(self, "cell_items", cell_items)
        object.__setattr__(self, "_frozen", True)

    def __setattr__(self, name, value):
        raise AttributeError("IVFIndex is frozen; build a new index instead")

    @property
    def n_cells(self) -> int:
        return int(self.centroids.shape[0])

    @property
    def n_items(self) -> int:
        return int(self.cell_items.size)

    @property
    def default_n_probe(self) -> int:
        """Probe width used when a query does not pin ``n_probe``:
        a quarter of the cells — comfortably past the recall knee on the
        tested presets while keeping the scan sub-linear."""
        return max(1, (self.n_cells + 3) // 4)

    @property
    def memory_mapped(self) -> bool:
        """Whether every index array reads from a shared file mapping."""
        return all(is_memory_mapped(array) for array in
                   (self.centroids, self.cell_indptr, self.cell_items))

    def assignments(self) -> np.ndarray:
        """``(n_items,)`` cell id per item (inverse of the CSR lists)."""
        owners = np.repeat(np.arange(self.n_cells, dtype=np.int64),
                           np.diff(self.cell_indptr))
        inverse = np.empty(self.n_items, dtype=np.int64)
        inverse[self.cell_items] = owners
        return inverse

    def probe(self, cell_scores: np.ndarray, n_probe: Optional[int] = None,
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Union the item lists of each user's top-``n_probe`` cells.

        Parameters
        ----------
        cell_scores:
            ``(U, n_cells)`` coarse scores (higher = probe first).
        n_probe:
            Cells to scan per user (clipped to ``n_cells``); ``None``
            uses :attr:`default_n_probe`.

        Returns
        -------
        (candidates, counts)
            ``candidates`` is the ``(U, C)`` rectangular candidate
            matrix, right-padded with ``-1`` where a user's union is
            shorter than the widest row (the pad convention of
            :func:`repro.serving.kernel.run_query`); ``counts`` the
            ``(U,)`` true candidate count per user — the probe the
            sub-linearity acceptance gate asserts on.
        """
        cell_scores = np.asarray(cell_scores, dtype=np.float64)
        if cell_scores.ndim != 2 or cell_scores.shape[1] != self.n_cells:
            raise ValueError(
                f"cell_scores must be (U, {self.n_cells}), got shape "
                f"{cell_scores.shape}")
        if n_probe is None:
            n_probe = self.default_n_probe
        n_probe = int(n_probe)
        if n_probe < 1:
            raise ValueError(f"n_probe must be >= 1, got {n_probe}")
        n_probe = min(n_probe, self.n_cells)
        n_users = cell_scores.shape[0]

        part = np.argpartition(-cell_scores, kth=n_probe - 1,
                               axis=1)[:, :n_probe]
        part_scores = np.take_along_axis(cell_scores, part, axis=1)
        order = np.argsort(-part_scores, axis=1, kind="stable")
        cells = np.take_along_axis(part, order, axis=1)  # (U, P), best first

        starts = self.cell_indptr[cells]                     # (U, P)
        seg_counts = (self.cell_indptr[cells + 1] - starts)  # (U, P)
        counts = seg_counts.sum(axis=1)                      # (U,)
        total = int(counts.sum())
        width = int(counts.max()) if n_users else 0
        candidates = np.full((n_users, width), -1, dtype=np.int64)
        if total == 0:
            return candidates, counts
        # Flatten every probed segment user-major (cells in probe order):
        # flat[t] walks segment s as starts[s], starts[s]+1, ...
        flat_counts = seg_counts.reshape(-1)
        offsets = np.repeat(
            starts.reshape(-1) - (np.cumsum(flat_counts) - flat_counts),
            flat_counts)
        flat = np.arange(total, dtype=np.int64) + offsets
        rows = np.repeat(np.arange(n_users, dtype=np.int64), counts)
        columns = np.arange(total, dtype=np.int64) \
            - np.repeat(np.cumsum(counts) - counts, counts)
        candidates[rows, columns] = self.cell_items[flat]
        return candidates, counts

    def __repr__(self) -> str:
        return (f"IVFIndex(cells={self.n_cells}, items={self.n_items}, "
                f"dim={self.centroids.shape[1]}, "
                f"default_n_probe={self.default_n_probe})")


def build_ivf_index(family: str, tensors: Dict[str, np.ndarray],
                    n_cells: int, random_state: RandomState = None,
                    n_iterations: int = DEFAULT_KMEANS_ITERATIONS) -> IVFIndex:
    """Cluster a family's item vectors into a fresh :class:`IVFIndex`.

    Raises :class:`ValueError` for families without coarse-quantization
    support (see :data:`APPROX_FAMILIES`).
    """
    spec = APPROX_FAMILIES.get(family)
    if spec is None:
        raise ValueError(
            f"family {family!r} does not support approximate retrieval; "
            f"IVF indexes exist for {sorted(APPROX_FAMILIES)}")
    vectors = spec.item_vectors(tensors)
    centroids, assignments = kmeans_cells(
        vectors, n_cells, random_state=random_state,
        n_iterations=n_iterations)
    # Stable sort of item ids by cell: within-cell lists stay ascending.
    cell_items = np.argsort(assignments, kind="stable").astype(np.int64)
    sizes = np.bincount(assignments, minlength=centroids.shape[0])
    cell_indptr = np.zeros(centroids.shape[0] + 1, dtype=np.int64)
    np.cumsum(sizes, out=cell_indptr[1:])
    return IVFIndex(centroids, cell_indptr, cell_items)


def coarse_cell_scores(family: str, tensors: Dict[str, np.ndarray],
                       users: np.ndarray, index: IVFIndex) -> np.ndarray:
    """``(U, n_cells)`` centroid scores for a user batch — the O(n_cells)
    scan that replaces the O(n_items) full-catalogue GEMM."""
    spec = APPROX_FAMILIES.get(family)
    if spec is None:
        raise ValueError(
            f"family {family!r} does not support approximate retrieval; "
            f"IVF indexes exist for {sorted(APPROX_FAMILIES)}")
    user_vecs = spec.user_vectors(tensors, users)
    return spec.coarse_scores(user_vecs, index.centroids)


def _freeze(array: np.ndarray) -> np.ndarray:
    """Copy-and-lock, passing read-only memory maps through uncopied
    (the same rule as ``ServingArtifact`` tensors — a private heap copy
    would defeat the page-cache sharing the mmap path exists for)."""
    if not array.flags.writeable and is_memory_mapped(array):
        return array
    frozen = np.array(array, copy=True)
    frozen.flags.writeable = False
    return frozen
