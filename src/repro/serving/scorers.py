"""Family scoring kernels for exported serving artifacts.

Each model *family* — the shape of read-only tensors a model needs at
inference time — gets one vectorised scoring function operating on plain
NumPy arrays.  The live models' batch scorers delegate to the same
functions with tensors gathered from their networks, so an exported
:class:`~repro.serving.artifact.ServingArtifact` reproduces the live
model's scores bitwise: same code, same arrays, same call shapes.

Families
--------
``multifacet``
    MAR/MARS: pre-projected (and, in spherical mode, pre-normalised) facet
    tables plus softmaxed per-user facet weights Θ.
``euclidean``
    CML/MetricF/SML: rank by ``-‖u − v‖²`` between plain embedding tables.
``dot_bias``
    BPR: inner product plus an additive per-item bias.
``translation``
    TransCF: ``-‖u + ctx_u ⊙ ctx_v − v‖²`` with frozen neighbourhood
    context tables.
``memory``
    LRML: attention over a shared memory produces the relation vector.
``mlp``
    NeuMF: GMF ⊙ product fused with a two-layer ReLU MLP head.
``popularity``
    A single item-score vector shared by every user.
``precomputed``
    The generic fallback of :meth:`BaseRecommender.export_serving`: a dense
    ``(n_users, n_items)`` score matrix materialised at export time.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

#: ``family -> fn(tensors, users, item_matrix) -> (U, C) scores``.
SCORER_FAMILIES: Dict[str, Callable] = {}


def register_family(name: str):
    """Class-of-tensors registrar: ``@register_family("euclidean")``."""
    def decorator(fn):
        SCORER_FAMILIES[name] = fn
        return fn
    return decorator


def get_family_scorer(family: str) -> Callable:
    try:
        return SCORER_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown serving family {family!r}; known families: "
            f"{sorted(SCORER_FAMILIES)}") from None


# --------------------------------------------------------------------------- #
# plain scoring functions (shared with the live models)
# --------------------------------------------------------------------------- #
def _shared_candidate_row(item_matrix: np.ndarray):
    """The single candidate list when every user shares one, else ``None``.

    The full-catalogue ranking path broadcasts one ``(C,)`` list across the
    user batch (row stride 0); detecting it lets scorers avoid materialising
    the ``(U, C, D)`` gathered-embedding block.  The check is purely
    structural (stride 0, any batch size) so a user is scored through the
    same formula whichever chunk width they land in.
    """
    if (item_matrix.ndim == 2 and item_matrix.shape[0] >= 1
            and item_matrix.strides[0] == 0):
        return item_matrix[0]
    return None


def euclidean_scores(user_table: np.ndarray, item_table: np.ndarray,
                     users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
    """``-‖u − v‖²`` between gathered embedding rows (CML, MetricF, SML).

    When the user batch shares one candidate list (the full-catalogue
    ranking path) the distances come from the Gram expansion
    ``-‖u − v‖² = 2·u·v − ‖u‖² − ‖v‖²`` — one BLAS matmul instead of a
    ``(U, C, D)`` gather — which agrees with the elementwise difference
    form up to floating-point rounding (~1 ulp), leaving rankings unchanged
    except on exact score ties.
    """
    user_vecs = user_table[users]                   # (U, D)
    shared = _shared_candidate_row(item_matrix)
    if shared is not None:
        item_vecs = item_table[shared]              # (C, D)
        dots = user_vecs @ item_vecs.T              # (U, C)
        user_sq = np.einsum("ud,ud->u", user_vecs, user_vecs)
        item_sq = np.einsum("cd,cd->c", item_vecs, item_vecs)
        return 2.0 * dots - user_sq[:, None] - item_sq[None, :]
    item_vecs = item_table[item_matrix]             # (U, C, D)
    return -np.sum((item_vecs - user_vecs[:, None, :]) ** 2, axis=-1)


def dot_bias_scores(user_table: np.ndarray, item_table: np.ndarray,
                    item_bias: np.ndarray, users: np.ndarray,
                    item_matrix: np.ndarray) -> np.ndarray:
    """Inner product plus item bias (BPR)."""
    user_vecs = user_table[users]                               # (U, D)
    item_vecs = item_table[item_matrix]                         # (U, C, D)
    dots = np.matmul(item_vecs, user_vecs[:, :, None])[..., 0]  # (U, C)
    return dots + item_bias[item_matrix]


def translation_scores(user_table: np.ndarray, item_table: np.ndarray,
                       user_context: np.ndarray, item_context: np.ndarray,
                       users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
    """Translated distance ``-‖u + ctx_u ⊙ ctx_v − v‖²`` (TransCF)."""
    user_vecs = user_table[users][:, None, :]                        # (U, 1, D)
    item_vecs = item_table[item_matrix]                              # (U, C, D)
    relation = user_context[users][:, None, :] * item_context[item_matrix]
    translated = user_vecs + relation
    return -np.sum((translated - item_vecs) ** 2, axis=-1)


def memory_scores(user_table: np.ndarray, item_table: np.ndarray,
                  memory_keys: np.ndarray, memory_slots: np.ndarray,
                  users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
    """Attention-memory relational distance (LRML)."""
    user_vecs = user_table[users][:, None, :]   # (U, 1, D)
    item_vecs = item_table[item_matrix]         # (U, C, D)

    joint = user_vecs * item_vecs
    logits = joint @ memory_keys                # (U, C, M)
    logits = logits - logits.max(axis=-1, keepdims=True)
    attention = np.exp(logits)
    attention = attention / attention.sum(axis=-1, keepdims=True)
    relation = attention @ memory_slots         # (U, C, D)
    translated = user_vecs + relation
    return -np.sum((translated - item_vecs) ** 2, axis=-1)


def mlp_scores(gmf_user: np.ndarray, gmf_item: np.ndarray,
               mlp_user: np.ndarray, mlp_item: np.ndarray,
               hidden_weight: np.ndarray, hidden_bias: np.ndarray,
               bottleneck_weight: np.ndarray, bottleneck_bias: np.ndarray,
               output_weight: np.ndarray, output_bias: np.ndarray,
               users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
    """GMF + MLP fusion logits (NeuMF), replicated op-for-op in NumPy.

    Mirrors ``_NeuMFNetwork.predict_logits`` exactly (matmul/add/``x·(x>0)``
    in the same order on the same flattened ``(U·C, ·)`` batch), so the
    NumPy forward agrees bitwise with the autograd forward.
    """
    n_users, n_candidates = item_matrix.shape
    flat_users = np.repeat(users, n_candidates)
    flat_items = item_matrix.reshape(-1)

    gmf = gmf_user[flat_users] * gmf_item[flat_items]
    hidden = np.concatenate([mlp_user[flat_users], mlp_item[flat_items]], axis=1)
    hidden = hidden @ hidden_weight + hidden_bias
    hidden = hidden * (hidden > 0)  # ReLU exactly as autograd computes it
    hidden = hidden @ bottleneck_weight + bottleneck_bias
    fused = np.concatenate([gmf, hidden], axis=1)
    logits = (fused @ output_weight + output_bias).reshape(-1)
    return logits.reshape(n_users, n_candidates)


def popularity_scores(item_scores: np.ndarray, users: np.ndarray,
                      item_matrix: np.ndarray) -> np.ndarray:
    """Non-personalised gather from a single item-score vector."""
    return np.asarray(item_scores, dtype=np.float64)[item_matrix]


def precomputed_scores(score_matrix: np.ndarray, users: np.ndarray,
                       item_matrix: np.ndarray) -> np.ndarray:
    """Gather from a dense precomputed ``(n_users, n_items)`` score matrix."""
    return score_matrix[users[:, None], item_matrix]


# --------------------------------------------------------------------------- #
# family adapters (tensors dict -> scores)
# --------------------------------------------------------------------------- #
@register_family("multifacet")
def _multifacet(tensors, users, item_matrix):
    # Lazy import keeps this module importable from a partially initialised
    # `repro.core` (core.base imports the serving kernel at module load).
    from repro.core.similarity import facet_candidate_scores

    unique_items, inverse = np.unique(item_matrix, return_inverse=True)
    inverse = inverse.reshape(item_matrix.shape)
    return facet_candidate_scores(
        tensors["user_facets"][:, users],
        tensors["item_facets"][:, unique_items],
        inverse,
        tensors["facet_weights"][users],
        bool(tensors["spherical"]),
    )


@register_family("euclidean")
def _euclidean(tensors, users, item_matrix):
    return euclidean_scores(tensors["user_embeddings"],
                            tensors["item_embeddings"], users, item_matrix)


@register_family("dot_bias")
def _dot_bias(tensors, users, item_matrix):
    return dot_bias_scores(tensors["user_embeddings"],
                           tensors["item_embeddings"],
                           tensors["item_bias"], users, item_matrix)


@register_family("translation")
def _translation(tensors, users, item_matrix):
    return translation_scores(tensors["user_embeddings"],
                              tensors["item_embeddings"],
                              tensors["user_context"],
                              tensors["item_context"], users, item_matrix)


@register_family("memory")
def _memory(tensors, users, item_matrix):
    return memory_scores(tensors["user_embeddings"],
                         tensors["item_embeddings"],
                         tensors["memory_keys"],
                         tensors["memory_slots"], users, item_matrix)


@register_family("mlp")
def _mlp(tensors, users, item_matrix):
    return mlp_scores(tensors["gmf_user"], tensors["gmf_item"],
                      tensors["mlp_user"], tensors["mlp_item"],
                      tensors["hidden_weight"], tensors["hidden_bias"],
                      tensors["bottleneck_weight"], tensors["bottleneck_bias"],
                      tensors["output_weight"], tensors["output_bias"],
                      users, item_matrix)


@register_family("popularity")
def _popularity(tensors, users, item_matrix):
    return popularity_scores(tensors["item_scores"], users, item_matrix)


@register_family("precomputed")
def _precomputed(tensors, users, item_matrix):
    return precomputed_scores(tensors["scores"], users, item_matrix)
