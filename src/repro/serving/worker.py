"""The worker-process side of the multi-process serving tier.

:func:`worker_main` is the entry point the server forks into: a blocking
loop over one ``multiprocessing`` pipe that opens the published artifact
files with ``mmap_mode="r"`` — so every worker on the host shares one OS
page-cache copy of the read-only tensors — and answers ``query`` frames
with ``result``/``error`` frames.  The frame codec is
:mod:`repro.serving.wire`; the pipe's ``send_bytes``/``recv_bytes`` supply
the length delimiting, so no pickle is involved on either hop.

Lifecycle (see :mod:`repro.serving.server` for the parent's half):

1. On start the worker loads every artifact in its model table and sends
   one ``ready`` frame (``{worker_id, models: {name: version}, mapped}``).
2. ``query`` frames score against the named artifact (or the sole model
   when unnamed) and answer with ``result``; any exception — unknown
   model, invalid users, injected scorer fault — answers with ``error``
   instead of killing the worker.
3. ``reload`` frames re-open one model from a new artifact path/version
   and answer ``ready`` — the hot-swap step the parent runs while the
   worker is drained.
4. ``ping`` answers ``pong`` with the worker's model table; ``shutdown``
   answers ``ok`` and exits the loop.  EOF on the pipe exits too.

The fault-injection site ``serving.worker`` fires before each query is
scored, so ``REPRO_FAULTS`` (inherited through the fork) can inject
per-worker delays and failures for resilience tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.reliability.faults import fire as _fire
from repro.serving import wire
from repro.serving.artifact import ServingArtifact

#: ``{model_name: (artifact_path, version)}`` — the table a worker serves.
ModelTable = Dict[str, Tuple[str, int]]


def _load_models(table: ModelTable) -> Dict[str, Tuple[ServingArtifact, int]]:
    return {
        name: (ServingArtifact.load(path, mmap_mode="r"), int(version))
        for name, (path, version) in table.items()
    }


def _resolve(models: Dict[str, Tuple[ServingArtifact, int]],
             name: Optional[str]) -> Tuple[ServingArtifact, str]:
    """Mirror ``ModelRegistry.get``'s resolution (and its error messages)."""
    if name is None:
        if len(models) != 1:
            raise KeyError(
                f"registry holds {len(models)} models "
                f"({sorted(models)}); specify one by name")
        name = next(iter(models))
    try:
        artifact, _ = models[name]
    except KeyError:
        raise KeyError(
            f"no model named {name!r} is published; available: "
            f"{sorted(models)}") from None
    return artifact, name


def _status_meta(worker_id: int,
                 models: Dict[str, Tuple[ServingArtifact, int]]) -> dict:
    return {
        "worker_id": worker_id,
        "models": {name: version for name, (_, version) in models.items()},
        "mapped": all(artifact.memory_mapped
                      for artifact, _ in models.values()),
    }


def worker_main(conn, table: ModelTable, worker_id: int) -> None:
    """Serve frames from ``conn`` until ``shutdown`` or EOF.

    Parameters
    ----------
    conn:
        The worker end of a ``multiprocessing.Pipe`` (frames travel as
        ``send_bytes``/``recv_bytes`` blobs).
    table:
        ``{name: (artifact_path, version)}`` to load at start.
    worker_id:
        Stable id for logging/status frames.
    """
    try:
        models = _load_models(table)
        conn.send_bytes(wire.encode_frame(
            "ready", _status_meta(worker_id, models)))
    except BaseException as error:  # surface load failures to the parent
        try:
            conn.send_bytes(wire.encode_error(error))
        except OSError:
            pass
        return

    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):  # parent went away
            return
        try:
            kind, meta, tensors = wire.decode_frame(blob)
        except wire.ProtocolError as error:
            conn.send_bytes(wire.encode_error(error))
            continue

        if kind == "query":
            try:
                _fire("serving.worker")
                query, name = wire.decode_query(meta, tensors)
                artifact, _ = _resolve(models, name)
                result = artifact.query(query)
                reply = wire.encode_result(result)
            except BaseException as error:
                reply = wire.encode_error(error)
            conn.send_bytes(reply)
        elif kind == "reload":
            try:
                name = str(meta["model"])
                artifact = ServingArtifact.load(
                    str(meta["path"]), mmap_mode="r")
                models[name] = (artifact, int(meta["version"]))
                reply = wire.encode_frame(
                    "ready", _status_meta(worker_id, models))
            except BaseException as error:
                reply = wire.encode_error(error)
            conn.send_bytes(reply)
        elif kind == "ping":
            conn.send_bytes(wire.encode_frame(
                "pong", _status_meta(worker_id, models)))
        elif kind == "shutdown":
            try:
                conn.send_bytes(wire.encode_frame("ok", {}))
            except OSError:
                pass
            return
        else:
            conn.send_bytes(wire.encode_error(
                wire.ProtocolError(f"unknown frame kind {kind!r}")))
