"""NeuMF — Neural Collaborative Filtering (He et al., WWW 2017).

Fuses a generalised matrix factorisation (GMF) branch with an MLP branch over
separate embedding tables, and trains with binary cross-entropy on positive
interactions and sampled negatives.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Linear, MLP, Module, Tensor
from repro.autograd import functional as F
from repro.baselines._embedding_base import EmbeddingRecommender
from repro.data.batching import TripletBatch
from repro.data.interactions import InteractionMatrix
from repro.serving.scorers import mlp_scores


class _NeuMFNetwork(Module):
    def __init__(self, n_users: int, n_items: int, dim: int, random_state) -> None:
        super().__init__()
        mlp_dim = dim
        self.gmf_user = Embedding(n_users, dim, std=0.1, random_state=random_state)
        self.gmf_item = Embedding(n_items, dim, std=0.1, random_state=random_state)
        self.mlp_user = Embedding(n_users, mlp_dim, std=0.1, random_state=random_state)
        self.mlp_item = Embedding(n_items, mlp_dim, std=0.1, random_state=random_state)
        self.mlp = MLP([2 * mlp_dim, mlp_dim, mlp_dim // 2], random_state=random_state)
        self.output = Linear(dim + mlp_dim // 2, 1, random_state=random_state)

    def predict_logits(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        gmf = self.gmf_user(users) * self.gmf_item(items)
        mlp_input = Tensor.concatenate([self.mlp_user(users), self.mlp_item(items)], axis=1)
        mlp_out = self.mlp(mlp_input)
        fused = Tensor.concatenate([gmf, mlp_out], axis=1)
        return self.output(fused).reshape(len(users))


class NeuMF(EmbeddingRecommender):
    """GMF + MLP fusion trained with binary cross-entropy.

    Each triplet batch is turned into a pointwise batch: the positive items
    get label 1 and the sampled negatives label 0, which follows the original
    implementation's negative-sampling training regime.
    """

    name = "NeuMF"

    def __init__(self, embedding_dim: int = 16, n_epochs: int = 30,
                 batch_size: int = 256, learning_rate: float = 0.05,
                 engine: str = "autograd", random_state=0, verbose: bool = False) -> None:
        # No fused kernel for the MLP head; the base class rejects
        # engine="fused" because _supports_fused stays False.
        super().__init__(embedding_dim=embedding_dim, n_epochs=n_epochs,
                         batch_size=batch_size, learning_rate=learning_rate,
                         optimizer="adagrad", engine=engine,
                         random_state=random_state, verbose=verbose)

    def _build(self, interactions: InteractionMatrix) -> Module:
        return _NeuMFNetwork(interactions.n_users, interactions.n_items,
                             self.embedding_dim, self.random_state)

    def _batch_loss(self, batch: TripletBatch) -> Tensor:
        net: _NeuMFNetwork = self.network
        users = np.concatenate([batch.users, batch.users])
        items = np.concatenate([batch.positives, batch.negatives])
        labels = np.concatenate([np.ones(len(batch)), np.zeros(len(batch))])
        logits = net.predict_logits(users, items)
        return F.binary_cross_entropy(F.sigmoid(logits), labels)

    def _score_pairs_numpy(self, user: int, items: np.ndarray) -> np.ndarray:
        net: _NeuMFNetwork = self.network
        users = np.full(len(items), user, dtype=np.int64)
        from repro.autograd.tensor import no_grad

        with no_grad():
            logits = net.predict_logits(users, items)
        return logits.data.copy()

    def _serving_tensors(self):
        """The read-only arrays of the ``"mlp"`` serving family."""
        net: _NeuMFNetwork = self.network
        hidden, bottleneck = net.mlp.network.layers[0], net.mlp.network.layers[2]
        return {
            "gmf_user": net.gmf_user.weight.data,
            "gmf_item": net.gmf_item.weight.data,
            "mlp_user": net.mlp_user.weight.data,
            "mlp_item": net.mlp_item.weight.data,
            "hidden_weight": hidden.weight.data,
            "hidden_bias": hidden.bias.data,
            "bottleneck_weight": bottleneck.weight.data,
            "bottleneck_bias": bottleneck.bias.data,
            "output_weight": net.output.weight.data,
            "output_bias": net.output.bias.data,
        }

    def _score_matrix_numpy(self, users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        # The pure-NumPy forward of the serving family replicates
        # ``predict_logits`` op for op, so live batch scoring, the exported
        # artifact and the autograd reference agree bitwise.
        return mlp_scores(**self._serving_tensors(),
                          users=users, item_matrix=item_matrix)

    def _serving_payload(self):
        net: _NeuMFNetwork = self._require_network()
        return ("mlp", self._serving_tensors(),
                net.gmf_user.n_embeddings, net.gmf_item.n_embeddings)
