"""Shared training scaffolding for the learned baselines.

Every learned baseline (BPR, NeuMF, CML, MetricF, TransCF, LRML, SML) trains
on triplet batches drawn by the same :class:`~repro.data.batching.TripletBatcher`
used by MAR/MARS, which keeps the comparison fair.  Subclasses implement
:meth:`_build` (create parameters), :meth:`_batch_loss` (differentiable loss
of one batch) and :meth:`_score_pairs_numpy` (fast inference), and optionally
:meth:`_post_step` (norm constraints), :meth:`_on_epoch_start` and
:meth:`_score_matrix_numpy` (vectorised batch scoring backing
:meth:`~repro.core.base.BaseRecommender.score_items_batch`; the default loops
over :meth:`_score_pairs_numpy` one user at a time).

Training engines
----------------
Like MAR/MARS (``MARConfig.engine``), every baseline carries an ``engine``
knob with the same contract (see :mod:`repro.core.fused` for the full
write-up):

* ``engine="autograd"`` — the reference path: :meth:`_batch_loss` builds a
  reverse-mode graph, ``loss.backward()`` walks it, the optimizer consumes
  dense ``.grad`` buffers and :meth:`_post_step` re-applies constraints to
  the whole tables.
* ``engine="fused"`` — the metric baselines (CML, MetricF, SML, TransCF,
  BPR) additionally implement :meth:`_fused_step`: hand-derived analytic
  gradients of the *same* loss evaluated in a few NumPy/BLAS calls,
  scatter-summed onto unique rows and applied with sparse
  ``optimizer.step_rows`` updates; :meth:`_post_step` then censors only the
  touched rows.  Both engines agree to ~1e-10 per step, so seeded training
  runs produce identical loss curves (``tests/test_fused_baselines.py``).

Models without a closed-form kernel (NeuMF's MLP head, LRML's attention
memory) set ``_supports_fused = False`` and reject ``engine="fused"`` at
construction.  To add a fused engine to a new baseline: implement
:meth:`_fused_step` from the kernels in :mod:`repro.core.fused`, set
``_supports_fused = True``, accept/forward the ``engine`` kwarg, and extend
the parity matrix in ``tests/test_fused_baselines.py``.

Multi-negative batches: ``n_negatives > 1`` draws ``(B, N)`` negative
blocks per batch and ``negative_reduction`` picks the per-example
aggregation (``"sum"`` over all negatives or ``"hardest"`` negative only)
in both engines.

The epoch loop itself lives in the unified training runtime
(:class:`~repro.training.loop.TrainingLoop`): ``_fit`` builds the network
and delegates, which also provides ``executor="sharded"`` Hogwild parallel
epochs over disjoint user shards (fused engine only) and the resumable
``fit_more`` surface used by the round-based trainer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import Module, Tensor
from repro.autograd.optim import Adagrad, Optimizer, SGD
from repro.core.base import BaseRecommender
from repro.core.fused import negatives_matrix, scatter_rows
from repro.serving.scorers import euclidean_scores
from repro.data.batching import TripletBatch, TripletBatcher
from repro.data.interactions import InteractionMatrix
from repro.training.loop import (
    RuntimeTrainedModel,
    TrainingLoop,
    validate_executor,
)
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState
from repro.utils.validation import check_in_range, check_positive_int

logger = get_logger("baselines")


class EmbeddingRecommender(RuntimeTrainedModel, BaseRecommender):
    """Base class for baselines trained with stochastic triplet batches.

    Parameters
    ----------
    embedding_dim:
        Latent dimensionality.
    n_epochs, batch_size, learning_rate:
        Optimization schedule.
    optimizer:
        ``"sgd"`` or ``"adagrad"``.
    user_sampling:
        ``"uniform"`` (default for baselines, matching their original
        implementations) or ``"frequency"``.
    engine:
        ``"autograd"`` (reverse-mode reference) or ``"fused"`` (closed-form
        analytic gradients; only on baselines that implement
        :meth:`_fused_step`).  See the module docstring.
    executor:
        ``"serial"`` (default) or ``"sharded"`` epoch execution in the
        training runtime; ``"sharded"`` runs lock-free Hogwild sub-epochs
        over ``n_shards`` disjoint user shards (fused engine only, see
        :mod:`repro.training.loop`).  ``n_shards=1`` sharded is
        bit-identical to serial.
    n_shards:
        Number of disjoint user shards under ``executor="sharded"``;
        ignored by the serial executor.
    n_negatives:
        Negatives sampled per positive; > 1 trains on ``(B, N)`` blocks.
    negative_reduction:
        ``"sum"`` or ``"hardest"`` aggregation over a multi-negative block.
    """

    #: Whether this baseline implements :meth:`_fused_step`.
    _supports_fused = False

    def __init__(self, embedding_dim: int = 32, n_epochs: int = 30,
                 batch_size: int = 256, learning_rate: float = 0.1,
                 optimizer: str = "adagrad", user_sampling: str = "uniform",
                 engine: str = "autograd", executor: str = "serial",
                 n_shards: int = 1, n_negatives: int = 1,
                 negative_reduction: str = "sum",
                 random_state: Optional[int] = 0, verbose: bool = False) -> None:
        super().__init__()
        self.embedding_dim = check_positive_int(embedding_dim, "embedding_dim")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.learning_rate = check_in_range(learning_rate, "learning_rate", 1e-8, 10.0)
        if optimizer not in ("sgd", "adagrad"):
            raise ValueError("optimizer must be 'sgd' or 'adagrad'")
        self.optimizer = optimizer
        self.user_sampling = user_sampling
        if engine not in ("fused", "autograd"):
            raise ValueError("engine must be 'fused' or 'autograd'")
        if engine == "fused" and not type(self)._supports_fused:
            raise ValueError(
                f"{type(self).__name__} has no fused training engine; "
                "use engine='autograd'")
        self.engine = engine
        validate_executor(executor, n_shards, engine)
        self.executor = executor
        self.n_shards = n_shards
        self.n_negatives = check_positive_int(n_negatives, "n_negatives")
        if negative_reduction not in ("sum", "hardest"):
            raise ValueError("negative_reduction must be 'sum' or 'hardest'")
        self.negative_reduction = negative_reduction
        self.random_state = random_state
        self.verbose = verbose
        self.network: Optional[Module] = None
        self.loss_history_: List[float] = []

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #
    def _build(self, interactions: InteractionMatrix) -> Module:  # pragma: no cover
        raise NotImplementedError

    def _batch_loss(self, batch: TripletBatch) -> Tensor:  # pragma: no cover
        raise NotImplementedError

    def _fused_step(self, batch: TripletBatch, optimizer: Optimizer) -> float:
        """One closed-form training step (gradients + row updates + censoring).

        Implemented by the baselines that support ``engine="fused"``; must
        compute the *same* loss as :meth:`_batch_loss` to ~1e-10, apply the
        updates through ``optimizer.step_rows`` / ``step_dense`` and return
        the batch loss.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a fused training step")

    def _gather_fused_batch(self, batch: TripletBatch):
        """Index arrays and embedding blocks every fused step starts from.

        Returns ``(users, positives, neg_matrix, user_emb, pos_emb,
        neg_emb)`` — int64 index arrays of shape ``(B,)`` / ``(B,)`` /
        ``(B, N)`` and the corresponding gathered embedding rows of shape
        ``(B, D)`` / ``(B, D)`` / ``(B, N, D)``.
        """
        net = self.network
        users = np.asarray(batch.users, dtype=np.int64)
        positives = np.asarray(batch.positives, dtype=np.int64)
        neg_matrix = negatives_matrix(batch.negatives)
        return (users, positives, neg_matrix,
                net.user_embeddings.weight.data[users],
                net.item_embeddings.weight.data[positives],
                net.item_embeddings.weight.data[neg_matrix])

    def _apply_fused_updates(self, optimizer: Optimizer,
                             users: np.ndarray, grad_user: np.ndarray,
                             positives: np.ndarray, neg_matrix: np.ndarray,
                             grad_pos: np.ndarray, grad_neg: np.ndarray,
                             user_extras=(), item_extras=(),
                             positive_extras=()):
        """Shared tail of every fused step.

        Scatters the per-example gradients onto unique rows
        (:func:`repro.core.fused.scatter_rows`), applies sparse row-wise
        optimizer updates to the user/item embedding tables, and re-censors
        the touched rows through :meth:`_post_step`.

        Parameters
        ----------
        users, positives, neg_matrix:
            Batch index arrays of shape ``(B,)``, ``(B,)`` and ``(B, N)``.
        grad_user, grad_pos, grad_neg:
            Per-example gradients of the gathered user / positive / negative
            embeddings — ``(B, D)``, ``(B, D)`` and ``(B, N, D)``.
        user_extras, item_extras, positive_extras:
            Optional ``(parameter, per_example_grads)`` pairs for extra
            per-row parameters riding the same index sets — ``users``, the
            stacked positive∪negative item ids, or ``positives`` (e.g.
            BPR's item bias, SML's learnable margins).

        Returns ``(user_rows, item_rows)``, the unique touched rows.
        """
        net = self.network
        items_flat = np.concatenate([positives, neg_matrix.reshape(-1)])
        item_grads = np.concatenate(
            [grad_pos, grad_neg.reshape(-1, grad_neg.shape[-1])])
        user_rows, user_grad, *user_extra_grads = scatter_rows(
            users, grad_user, *(grads for _, grads in user_extras))
        item_rows, item_grad, *item_extra_grads = scatter_rows(
            items_flat, item_grads, *(grads for _, grads in item_extras))
        optimizer.step_rows(net.user_embeddings.weight, user_rows, user_grad)
        optimizer.step_rows(net.item_embeddings.weight, item_rows, item_grad)
        for (parameter, _), grads in zip(user_extras, user_extra_grads):
            optimizer.step_rows(parameter, user_rows, grads)
        for (parameter, _), grads in zip(item_extras, item_extra_grads):
            optimizer.step_rows(parameter, item_rows, grads)
        for parameter, grads in positive_extras:
            rows, summed = scatter_rows(positives, grads)
            optimizer.step_rows(parameter, rows, summed)
        self._post_step(user_rows=user_rows, item_rows=item_rows)
        return user_rows, item_rows

    def _score_pairs_numpy(self, user: int, items: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _score_matrix_numpy(self, users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        """Score a ``(U,)`` user batch against a ``(U, C)`` candidate matrix.

        Baselines with a closed-form scorer override this with a fully
        vectorised implementation; the fallback loops over
        :meth:`_score_pairs_numpy`.
        """
        scores = np.empty(item_matrix.shape, dtype=np.float64)
        for row, user in enumerate(users):
            scores[row] = self._score_pairs_numpy(int(user), item_matrix[row])
        return scores

    def _euclidean_score_matrix(self, users: np.ndarray,
                                item_matrix: np.ndarray) -> np.ndarray:
        """Shared batch scorer for the metric-learning baselines that rank by
        ``-‖u − v‖²`` between plain user/item embeddings (CML, MetricF, SML).
        Delegates to the serving family kernel so an exported artifact scores
        through the exact same code.
        """
        net = self.network
        return euclidean_scores(net.user_embeddings.weight.data,
                                net.item_embeddings.weight.data,
                                users, item_matrix)

    def _post_step(self, user_rows: Optional[np.ndarray] = None,
                   item_rows: Optional[np.ndarray] = None) -> None:
        """Hook applied after every optimizer step (e.g. norm clipping).

        ``user_rows`` / ``item_rows`` restrict the constraint to the unique
        rows a fused step touched (``None`` — the autograd path — means the
        whole table); the restricted and full applications agree bitwise
        because untouched rows already satisfy the constraint.
        """

    def _on_epoch_start(self, epoch: int, interactions: InteractionMatrix) -> None:
        """Hook before each epoch (e.g. refresh cached neighbourhood vectors)."""

    # ------------------------------------------------------------------ #
    # training loop
    # ------------------------------------------------------------------ #
    def _prepare_training(self, interactions: InteractionMatrix) -> None:
        """Build the network and (unrun) runtime — ``_fit`` minus the
        epochs; the checkpoint restore path rebuilds training state through
        this before overwriting it from the checkpoint."""
        self.network = self._build(interactions)
        # Apply the model's norm constraints to the freshly initialised
        # tables once (Gaussian init can start outside the unit ball), as
        # MAR/MARS do: afterwards each training step only needs to censor
        # the rows it touched, which is what keeps the fused engine's
        # row-restricted :meth:`_post_step` exactly equivalent to the
        # autograd engine's full-table application.
        self._post_step()
        self.loss_history_ = []
        self.runtime_ = TrainingLoop(
            self, interactions,
            executor=self.executor,
            n_shards=self.n_shards,
            verbose=self.verbose,
            logger=logger,
        )

    def _fit(self, interactions: InteractionMatrix) -> None:
        self._prepare_training(interactions)
        self.runtime_.run(self.n_epochs)

    # ------------------------------------------------------------------ #
    # TrainableModel protocol (consumed by the training runtime)
    # ------------------------------------------------------------------ #
    def make_batcher(self, interactions: InteractionMatrix, *,
                     user_subset: Optional[np.ndarray] = None,
                     random_state: RandomState = None) -> TripletBatcher:
        return TripletBatcher(
            interactions,
            batch_size=self.batch_size,
            n_negatives=self.n_negatives,
            user_sampling=self.user_sampling,
            user_subset=user_subset,
            random_state=(self.random_state if random_state is None
                          else random_state),
        )

    def make_optimizer(self) -> Optimizer:
        return self._make_optimizer()

    def train_step(self, batch: TripletBatch, optimizer: Optimizer) -> float:
        return self._train_step(batch, optimizer)

    def _train_step(self, batch: TripletBatch, optimizer: Optimizer) -> float:
        """One gradient step on a triplet batch; dispatches on ``engine``."""
        if self.engine == "fused":
            return self._fused_step(batch, optimizer)
        optimizer.zero_grad()
        loss = self._batch_loss(batch)
        loss.backward()
        optimizer.step()
        self._post_step()
        return float(loss.item())

    def _make_optimizer(self) -> Optimizer:
        parameters = self.network.parameters()
        if self.optimizer == "adagrad":
            return Adagrad(parameters, lr=self.learning_rate)
        return SGD(parameters, lr=self.learning_rate)

    # ------------------------------------------------------------------ #
    # inference / persistence
    # ------------------------------------------------------------------ #
    def _require_network(self) -> Module:
        if self.network is None:
            raise RuntimeError(f"{type(self).__name__} must be fitted before scoring")
        return self.network

    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        self._require_network()
        return self._score_pairs_numpy(int(user), np.asarray(items, dtype=np.int64))

    def _score_candidates(self, users: np.ndarray,
                          item_matrix: np.ndarray) -> np.ndarray:
        self._require_network()
        return self._score_matrix_numpy(users, item_matrix)

    #: Serving family of this baseline's read path (see
    #: :mod:`repro.serving.scorers`).  ``"euclidean"`` covers the plain
    #: metric learners (CML, MetricF, SML); baselines with extra read-only
    #: tensors override :meth:`_serving_payload` instead, and ``None`` falls
    #: back to the generic precomputed export of the base class.
    _serving_family: Optional[str] = None

    def _serving_payload(self):
        net = self._require_network()
        family = type(self)._serving_family
        if family is None:
            return super()._serving_payload()
        if family != "euclidean":
            raise NotImplementedError(
                f"{type(self).__name__} must override _serving_payload for "
                f"family {family!r}")
        tensors = {
            "user_embeddings": net.user_embeddings.weight.data,
            "item_embeddings": net.item_embeddings.weight.data,
        }
        return (family, tensors, net.user_embeddings.n_embeddings,
                net.item_embeddings.n_embeddings)

    #: Scalar hyperparameters persisted alongside the learned parameters so
    #: that a reloaded baseline resumes training with identical behaviour
    #: (training engine, epoch executor, optimizer family and step size,
    #: negative sampling).
    _META_FIELDS = ("engine", "executor", "n_shards", "optimizer",
                    "learning_rate", "n_negatives", "negative_reduction")
    _META_PREFIX = "_meta."

    def get_parameters(self) -> Dict[str, np.ndarray]:
        if self.network is None:
            raise RuntimeError("model is not fitted")
        state = self.network.state_dict()
        for field in self._META_FIELDS:
            state[self._META_PREFIX + field] = np.asarray(getattr(self, field))
        return state

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        if self.network is None:
            raise RuntimeError("fit the model (to build its network) before loading")
        parameters = dict(parameters)
        meta = {
            field: parameters.pop(self._META_PREFIX + field)
            for field in self._META_FIELDS
            if self._META_PREFIX + field in parameters
        }
        # Checkpoints written before the metadata block simply restore no
        # hyperparameters (backwards compatible).  Restored values pass the
        # same validation as the constructor — and are validated *before*
        # the network is mutated, so a corrupted or foreign-model metadata
        # block fails loudly without leaving a half-loaded model behind.
        restored = {}
        if "engine" in meta:
            engine = str(meta["engine"].item())
            if engine not in ("fused", "autograd"):
                raise ValueError(f"checkpoint engine must be 'fused' or "
                                 f"'autograd', got {engine!r}")
            if engine == "fused" and not type(self)._supports_fused:
                raise ValueError(
                    f"checkpoint was trained with engine='fused' but "
                    f"{type(self).__name__} has no fused training engine")
            restored["engine"] = engine
        if "executor" in meta:
            restored["executor"] = str(meta["executor"].item())
        if "n_shards" in meta:
            restored["n_shards"] = int(meta["n_shards"].item())
        validate_executor(restored.get("executor", self.executor),
                          restored.get("n_shards", self.n_shards),
                          restored.get("engine", self.engine))
        if "optimizer" in meta:
            optimizer = str(meta["optimizer"].item())
            if optimizer not in ("sgd", "adagrad"):
                raise ValueError(f"checkpoint optimizer must be 'sgd' or "
                                 f"'adagrad', got {optimizer!r}")
            restored["optimizer"] = optimizer
        if "learning_rate" in meta:
            restored["learning_rate"] = check_in_range(
                float(meta["learning_rate"].item()), "learning_rate", 1e-8, 10.0)
        if "n_negatives" in meta:
            restored["n_negatives"] = check_positive_int(
                int(meta["n_negatives"].item()), "n_negatives")
        if "negative_reduction" in meta:
            reduction = str(meta["negative_reduction"].item())
            if reduction not in ("sum", "hardest"):
                raise ValueError(f"checkpoint negative_reduction must be "
                                 f"'sum' or 'hardest', got {reduction!r}")
            restored["negative_reduction"] = reduction
        self.network.load_state_dict(parameters)
        for field, value in restored.items():
            setattr(self, field, value)
