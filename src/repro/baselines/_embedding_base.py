"""Shared training scaffolding for the learned baselines.

Every learned baseline (BPR, NeuMF, CML, MetricF, TransCF, LRML, SML) trains
on triplet batches drawn by the same :class:`~repro.data.batching.TripletBatcher`
used by MAR/MARS, which keeps the comparison fair.  Subclasses implement
:meth:`_build` (create parameters), :meth:`_batch_loss` (differentiable loss
of one batch) and :meth:`_score_pairs_numpy` (fast inference), and optionally
:meth:`_post_step` (norm constraints), :meth:`_on_epoch_start` and
:meth:`_score_matrix_numpy` (vectorised batch scoring backing
:meth:`~repro.core.base.BaseRecommender.score_items_batch`; the default loops
over :meth:`_score_pairs_numpy` one user at a time).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import Module, Tensor
from repro.autograd.optim import Adagrad, Optimizer, SGD
from repro.core.base import BaseRecommender
from repro.data.batching import TripletBatch, TripletBatcher
from repro.data.interactions import InteractionMatrix
from repro.utils.logging import enable_info, get_logger
from repro.utils.validation import check_in_range, check_positive_int

logger = get_logger("baselines")


class EmbeddingRecommender(BaseRecommender):
    """Base class for baselines trained with stochastic triplet batches.

    Parameters
    ----------
    embedding_dim:
        Latent dimensionality.
    n_epochs, batch_size, learning_rate:
        Optimization schedule.
    optimizer:
        ``"sgd"`` or ``"adagrad"``.
    user_sampling:
        ``"uniform"`` (default for baselines, matching their original
        implementations) or ``"frequency"``.
    """

    def __init__(self, embedding_dim: int = 32, n_epochs: int = 30,
                 batch_size: int = 256, learning_rate: float = 0.1,
                 optimizer: str = "adagrad", user_sampling: str = "uniform",
                 random_state: Optional[int] = 0, verbose: bool = False) -> None:
        super().__init__()
        self.embedding_dim = check_positive_int(embedding_dim, "embedding_dim")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.learning_rate = check_in_range(learning_rate, "learning_rate", 1e-8, 10.0)
        if optimizer not in ("sgd", "adagrad"):
            raise ValueError("optimizer must be 'sgd' or 'adagrad'")
        self.optimizer = optimizer
        self.user_sampling = user_sampling
        self.random_state = random_state
        self.verbose = verbose
        self.network: Optional[Module] = None
        self.loss_history_: List[float] = []

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #
    def _build(self, interactions: InteractionMatrix) -> Module:  # pragma: no cover
        raise NotImplementedError

    def _batch_loss(self, batch: TripletBatch) -> Tensor:  # pragma: no cover
        raise NotImplementedError

    def _score_pairs_numpy(self, user: int, items: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _score_matrix_numpy(self, users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        """Score a ``(U,)`` user batch against a ``(U, C)`` candidate matrix.

        Baselines with a closed-form scorer override this with a fully
        vectorised implementation; the fallback loops over
        :meth:`_score_pairs_numpy`.
        """
        scores = np.empty(item_matrix.shape, dtype=np.float64)
        for row, user in enumerate(users):
            scores[row] = self._score_pairs_numpy(int(user), item_matrix[row])
        return scores

    def _euclidean_score_matrix(self, users: np.ndarray,
                                item_matrix: np.ndarray) -> np.ndarray:
        """Shared batch scorer for the metric-learning baselines that rank by
        ``-‖u − v‖²`` between plain user/item embeddings (CML, MetricF, SML).
        """
        net = self.network
        user_vecs = net.user_embeddings.weight.data[users][:, None, :]  # (U, 1, D)
        item_vecs = net.item_embeddings.weight.data[item_matrix]        # (U, C, D)
        return -np.sum((item_vecs - user_vecs) ** 2, axis=-1)

    def _post_step(self) -> None:
        """Hook applied after every optimizer step (e.g. norm clipping)."""

    def _on_epoch_start(self, epoch: int, interactions: InteractionMatrix) -> None:
        """Hook before each epoch (e.g. refresh cached neighbourhood vectors)."""

    # ------------------------------------------------------------------ #
    # training loop
    # ------------------------------------------------------------------ #
    def _fit(self, interactions: InteractionMatrix) -> None:
        self.network = self._build(interactions)
        batcher = TripletBatcher(
            interactions,
            batch_size=self.batch_size,
            user_sampling=self.user_sampling,
            random_state=self.random_state,
        )
        optimizer = self._make_optimizer()
        self.loss_history_ = []
        if self.verbose:
            enable_info(logger)
        for epoch in range(self.n_epochs):
            self._on_epoch_start(epoch, interactions)
            epoch_loss, n_batches = 0.0, 0
            for batch in batcher.epoch():
                optimizer.zero_grad()
                loss = self._batch_loss(batch)
                loss.backward()
                optimizer.step()
                self._post_step()
                epoch_loss += float(loss.item())
                n_batches += 1
            mean_loss = epoch_loss / max(n_batches, 1)
            self.loss_history_.append(mean_loss)
            if self.verbose:
                logger.info("%s epoch %d/%d loss %.4f",
                            self.name, epoch + 1, self.n_epochs, mean_loss)

    def _make_optimizer(self) -> Optimizer:
        parameters = self.network.parameters()
        if self.optimizer == "adagrad":
            return Adagrad(parameters, lr=self.learning_rate)
        return SGD(parameters, lr=self.learning_rate)

    # ------------------------------------------------------------------ #
    # inference / persistence
    # ------------------------------------------------------------------ #
    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        if self.network is None:
            raise RuntimeError(f"{type(self).__name__} must be fitted before scoring")
        return self._score_pairs_numpy(int(user), np.asarray(items, dtype=np.int64))

    def score_items_batch(self, users: Sequence[int],
                          item_matrix: np.ndarray) -> np.ndarray:
        if self.network is None:
            raise RuntimeError(f"{type(self).__name__} must be fitted before scoring")
        users = np.asarray(users, dtype=np.int64)
        item_matrix = self._broadcast_candidates(users, item_matrix)
        return self._score_matrix_numpy(users, item_matrix)

    def get_parameters(self) -> Dict[str, np.ndarray]:
        if self.network is None:
            raise RuntimeError("model is not fitted")
        return self.network.state_dict()

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        if self.network is None:
            raise RuntimeError("fit the model (to build its network) before loading")
        self.network.load_state_dict(dict(parameters))
