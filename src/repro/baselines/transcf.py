"""TransCF — Collaborative Translational Metric Learning (Park et al., ICDM 2018).

Borrowing the translation idea from knowledge-graph embedding, each user-item
pair gets a relation vector built from neighbourhood information: the user's
translation context is the mean embedding of the items they interacted with,
and the item's context is the mean embedding of the users who interacted with
it.  The score is the negative distance ``‖u + r_uv − v‖²`` with
``r_uv = context_u ⊙ context_v``.

The neighbourhood context vectors are recomputed from the current embedding
tables at the start of every epoch and treated as constants within the epoch,
which keeps the gradient computation simple while preserving the model's
behaviour at this scale.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Module, Tensor
from repro.autograd import functional as F
from repro.autograd.optim import Optimizer
from repro.baselines._embedding_base import EmbeddingRecommender
from repro.core.fused import hinge_distance_push
from repro.data.batching import TripletBatch
from repro.data.interactions import InteractionMatrix
from repro.serving.scorers import translation_scores


class _TransCFNetwork(Module):
    def __init__(self, n_users: int, n_items: int, dim: int, random_state) -> None:
        super().__init__()
        self.user_embeddings = Embedding(n_users, dim, std=1.0 / np.sqrt(dim),
                                         random_state=random_state)
        self.item_embeddings = Embedding(n_items, dim, std=1.0 / np.sqrt(dim),
                                         random_state=random_state)


class TransCF(EmbeddingRecommender):
    """Translational metric learning with neighbourhood-based relation vectors."""

    name = "TransCF"
    _supports_fused = True

    def __init__(self, embedding_dim: int = 32, n_epochs: int = 30,
                 batch_size: int = 256, learning_rate: float = 0.3,
                 margin: float = 0.5, engine: str = "fused",
                 executor: str = "serial", n_shards: int = 1,
                 n_negatives: int = 1, negative_reduction: str = "sum",
                 random_state=0, verbose: bool = False) -> None:
        super().__init__(embedding_dim=embedding_dim, n_epochs=n_epochs,
                         batch_size=batch_size, learning_rate=learning_rate,
                         optimizer="sgd", engine=engine, executor=executor,
                         n_shards=n_shards, n_negatives=n_negatives,
                         negative_reduction=negative_reduction,
                         random_state=random_state, verbose=verbose)
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.margin = float(margin)
        self._user_context: np.ndarray = np.empty((0, 0))
        self._item_context: np.ndarray = np.empty((0, 0))
        self._norm_user: np.ndarray = np.empty((0, 0))
        self._norm_item: np.ndarray = np.empty((0, 0))

    def _build(self, interactions: InteractionMatrix) -> Module:
        self._norm_user, self._norm_item = self._normalised_adjacency(interactions)
        return _TransCFNetwork(interactions.n_users, interactions.n_items,
                               self.embedding_dim, self.random_state)

    @staticmethod
    def _normalised_adjacency(interactions: InteractionMatrix):
        matrix = interactions.csr().astype(np.float64)
        user_deg = np.maximum(interactions.user_degrees(), 1).astype(np.float64)
        item_deg = np.maximum(interactions.item_degrees(), 1).astype(np.float64)
        user_norm = matrix.multiply(1.0 / user_deg[:, None]).tocsr()
        item_norm = matrix.T.multiply(1.0 / item_deg[:, None]).tocsr()
        return user_norm, item_norm

    def _on_interactions_changed(self, old_n_users: int, n_users: int,
                                 old_n_items: int, n_items: int) -> None:
        """Streaming hook: the normalised adjacency is a fit-time snapshot.

        Rebuild it from the live, already-appended matrix so the next
        refresh's context vectors see the new edges and id ranges — with
        the stale snapshot a grown item table would not even matmul.
        """
        self._norm_user, self._norm_item = self._normalised_adjacency(
            self._train_interactions)

    def _on_epoch_start(self, epoch: int, interactions: InteractionMatrix) -> None:
        net: _TransCFNetwork = self.network
        # context_u = mean of embeddings of items the user interacted with;
        # context_v = mean of embeddings of users who interacted with the item.
        self._user_context = self._norm_user @ net.item_embeddings.weight.data
        self._item_context = self._norm_item @ net.user_embeddings.weight.data

    def _relation(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        user_context = self._user_context[users]
        item_context = self._item_context[items]
        if item_context.ndim == 3:          # (B, N) negative block
            user_context = user_context[:, None, :]
        return user_context * item_context

    def _batch_loss(self, batch: TripletBatch) -> Tensor:
        net: _TransCFNetwork = self.network
        users = net.user_embeddings(batch.users)
        positives = net.item_embeddings(batch.positives)
        negatives = net.item_embeddings(batch.negatives)

        pos_relation = Tensor(self._relation(batch.users, batch.positives))
        neg_relation = Tensor(self._relation(batch.users, batch.negatives))

        pos_distance = F.squared_euclidean(users + pos_relation, positives, axis=-1)
        if negatives.ndim == 3:
            users = users.reshape(len(batch), 1, self.embedding_dim)
            pos_distance = pos_distance.reshape(len(batch), 1)
        neg_distance = F.squared_euclidean(users + neg_relation, negatives, axis=-1)
        return F.hinge_push(pos_distance - neg_distance + self.margin,
                            self.negative_reduction)

    def _fused_step(self, batch: TripletBatch, optimizer: Optimizer) -> float:
        (users, positives, neg_matrix,
         user_emb, pos_emb, neg_emb) = self._gather_fused_batch(batch)
        # Relation vectors are epoch constants (refreshed in
        # :meth:`_on_epoch_start`), so they only shift the difference
        # vectors; the gradients flow to the embeddings alone.
        pos_diff = user_emb + self._relation(users, positives) - pos_emb
        neg_diff = (user_emb[:, None, :] + self._relation(users, neg_matrix)
                    - neg_emb)

        loss, grad_pos_diff, grad_neg_diff, _ = hinge_distance_push(
            pos_diff, neg_diff, self.margin, self.negative_reduction)
        self._apply_fused_updates(
            optimizer, users, grad_pos_diff + grad_neg_diff.sum(axis=1),
            positives, neg_matrix, -grad_pos_diff, -grad_neg_diff)
        return loss

    def _post_step(self, user_rows=None, item_rows=None) -> None:
        net: _TransCFNetwork = self.network
        net.user_embeddings.clip_to_unit_ball(rows=user_rows)
        net.item_embeddings.clip_to_unit_ball(rows=item_rows)

    def _score_pairs_numpy(self, user: int, items: np.ndarray) -> np.ndarray:
        net: _TransCFNetwork = self.network
        if self._user_context.size == 0:
            self._on_epoch_start(0, self._require_fitted())
        user_vec = net.user_embeddings.weight.data[user]
        item_vecs = net.item_embeddings.weight.data[items]
        relation = self._user_context[user] * self._item_context[items]
        translated = user_vec[None, :] + relation
        return -np.sum((translated - item_vecs) ** 2, axis=-1)

    def _score_matrix_numpy(self, users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        net: _TransCFNetwork = self.network
        if self._user_context.size == 0:
            self._on_epoch_start(0, self._require_fitted())
        return translation_scores(net.user_embeddings.weight.data,
                                  net.item_embeddings.weight.data,
                                  self._user_context, self._item_context,
                                  users, item_matrix)

    def _serving_payload(self):
        net: _TransCFNetwork = self._require_network()
        if self._user_context.size == 0:
            self._on_epoch_start(0, self._require_fitted())
        tensors = {
            "user_embeddings": net.user_embeddings.weight.data,
            "item_embeddings": net.item_embeddings.weight.data,
            # The neighbourhood contexts are epoch constants at serving
            # time; freezing them reproduces the live scorer exactly.
            "user_context": self._user_context,
            "item_context": self._item_context,
        }
        return ("translation", tensors, net.user_embeddings.n_embeddings,
                net.item_embeddings.n_embeddings)
