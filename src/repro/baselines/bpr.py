"""Bayesian Personalised Ranking with a matrix-factorisation scorer
(Rendle et al., UAI 2009)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Module, Parameter, Tensor
from repro.autograd import functional as F
from repro.autograd.optim import Optimizer
from repro.baselines._embedding_base import EmbeddingRecommender
from repro.core.losses import bpr_loss_numpy
from repro.data.batching import TripletBatch
from repro.data.interactions import InteractionMatrix
from repro.serving.scorers import dot_bias_scores


class _BPRNetwork(Module):
    def __init__(self, n_users: int, n_items: int, dim: int, random_state) -> None:
        super().__init__()
        self.user_embeddings = Embedding(n_users, dim, std=0.1, random_state=random_state)
        self.item_embeddings = Embedding(n_items, dim, std=0.1, random_state=random_state)
        self.item_bias = Parameter(np.zeros(n_items))


class BPR(EmbeddingRecommender):
    """Pairwise ranking with the ``-log σ(x̂_uvp − x̂_uvq)`` objective.

    The scorer is the inner product plus an item bias; parameters are learned
    with Adagrad and L2 weight decay applied inside the loss.
    """

    name = "BPR"
    _supports_fused = True

    def __init__(self, embedding_dim: int = 32, n_epochs: int = 30,
                 batch_size: int = 256, learning_rate: float = 0.1,
                 weight_decay: float = 1e-4, engine: str = "fused",
                 executor: str = "serial", n_shards: int = 1,
                 n_negatives: int = 1, negative_reduction: str = "sum",
                 random_state=0, verbose: bool = False) -> None:
        super().__init__(embedding_dim=embedding_dim, n_epochs=n_epochs,
                         batch_size=batch_size, learning_rate=learning_rate,
                         optimizer="adagrad", engine=engine, executor=executor,
                         n_shards=n_shards, n_negatives=n_negatives,
                         negative_reduction=negative_reduction,
                         random_state=random_state, verbose=verbose)
        self.weight_decay = float(weight_decay)

    def _build(self, interactions: InteractionMatrix) -> Module:
        return _BPRNetwork(interactions.n_users, interactions.n_items,
                           self.embedding_dim, self.random_state)

    def _batch_loss(self, batch: TripletBatch) -> Tensor:
        net: _BPRNetwork = self.network
        users = net.user_embeddings(batch.users)
        positives = net.item_embeddings(batch.positives)
        negatives = net.item_embeddings(batch.negatives)
        pos_scores = F.dot(users, positives, axis=-1) + net.item_bias.gather_rows(batch.positives)
        users_wide = (users.reshape(len(batch), 1, self.embedding_dim)
                      if negatives.ndim == 3 else users)
        neg_scores = F.dot(users_wide, negatives, axis=-1) + net.item_bias.gather_rows(batch.negatives)
        loss = F.bpr_loss(pos_scores, neg_scores, self.negative_reduction)
        if self.weight_decay:
            reg = F.l2_regularization(users, positives, negatives)
            loss = loss + reg * (self.weight_decay / len(batch))
        return loss

    def _fused_step(self, batch: TripletBatch, optimizer: Optimizer) -> float:
        net: _BPRNetwork = self.network
        (users, positives, neg_matrix,
         user_emb, pos_emb, neg_emb) = self._gather_fused_batch(batch)
        batch_size = users.shape[0]
        bias = net.item_bias.data

        pos_scores = np.einsum("bd,bd->b", user_emb, pos_emb) + bias[positives]
        neg_scores = (np.einsum("bd,bnd->bn", user_emb, neg_emb)
                      + bias[neg_matrix])
        loss, grad_pos_score, grad_neg_score = bpr_loss_numpy(
            pos_scores, neg_scores, reduction=self.negative_reduction)

        grad_user = (grad_pos_score[:, None] * pos_emb
                     + np.einsum("bn,bnd->bd", grad_neg_score, neg_emb))
        grad_pos = grad_pos_score[:, None] * user_emb
        grad_neg = grad_neg_score[..., None] * user_emb[:, None, :]
        if self.weight_decay:
            # L2 term over the gathered batch rows (duplicates counted per
            # occurrence), matching ``F.l2_regularization`` in the autograd
            # loss.
            coeff = 2.0 * self.weight_decay / batch_size
            loss += (self.weight_decay / batch_size) * float(
                np.einsum("bd,bd->", user_emb, user_emb)
                + np.einsum("bd,bd->", pos_emb, pos_emb)
                + np.einsum("bnd,bnd->", neg_emb, neg_emb))
            grad_user = grad_user + coeff * user_emb
            grad_pos = grad_pos + coeff * pos_emb
            grad_neg = grad_neg + coeff * neg_emb

        bias_grads = np.concatenate(
            [grad_pos_score, grad_neg_score.reshape(-1)])
        self._apply_fused_updates(
            optimizer, users, grad_user, positives, neg_matrix, grad_pos,
            grad_neg, item_extras=[(net.item_bias, bias_grads)])
        return loss

    def _score_pairs_numpy(self, user: int, items: np.ndarray) -> np.ndarray:
        net: _BPRNetwork = self.network
        user_vec = net.user_embeddings.weight.data[user]
        item_vecs = net.item_embeddings.weight.data[items]
        return item_vecs @ user_vec + net.item_bias.data[items]

    def _score_matrix_numpy(self, users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        net: _BPRNetwork = self.network
        return dot_bias_scores(net.user_embeddings.weight.data,
                               net.item_embeddings.weight.data,
                               net.item_bias.data, users, item_matrix)

    def _serving_payload(self):
        net: _BPRNetwork = self._require_network()
        tensors = {
            "user_embeddings": net.user_embeddings.weight.data,
            "item_embeddings": net.item_embeddings.weight.data,
            "item_bias": net.item_bias.data,
        }
        return ("dot_bias", tensors, net.user_embeddings.n_embeddings,
                net.item_embeddings.n_embeddings)
