"""Bayesian Personalised Ranking with a matrix-factorisation scorer
(Rendle et al., UAI 2009)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Module, Parameter, Tensor
from repro.autograd import functional as F
from repro.baselines._embedding_base import EmbeddingRecommender
from repro.data.batching import TripletBatch
from repro.data.interactions import InteractionMatrix


class _BPRNetwork(Module):
    def __init__(self, n_users: int, n_items: int, dim: int, random_state) -> None:
        super().__init__()
        self.user_embeddings = Embedding(n_users, dim, std=0.1, random_state=random_state)
        self.item_embeddings = Embedding(n_items, dim, std=0.1, random_state=random_state)
        self.item_bias = Parameter(np.zeros(n_items))


class BPR(EmbeddingRecommender):
    """Pairwise ranking with the ``-log σ(x̂_uvp − x̂_uvq)`` objective.

    The scorer is the inner product plus an item bias; parameters are learned
    with Adagrad and L2 weight decay applied inside the loss.
    """

    name = "BPR"

    def __init__(self, embedding_dim: int = 32, n_epochs: int = 30,
                 batch_size: int = 256, learning_rate: float = 0.1,
                 weight_decay: float = 1e-4, random_state=0, verbose: bool = False) -> None:
        super().__init__(embedding_dim=embedding_dim, n_epochs=n_epochs,
                         batch_size=batch_size, learning_rate=learning_rate,
                         optimizer="adagrad", random_state=random_state, verbose=verbose)
        self.weight_decay = float(weight_decay)

    def _build(self, interactions: InteractionMatrix) -> Module:
        return _BPRNetwork(interactions.n_users, interactions.n_items,
                           self.embedding_dim, self.random_state)

    def _batch_loss(self, batch: TripletBatch) -> Tensor:
        net: _BPRNetwork = self.network
        users = net.user_embeddings(batch.users)
        positives = net.item_embeddings(batch.positives)
        negatives = net.item_embeddings(batch.negatives)
        pos_scores = F.dot(users, positives, axis=-1) + net.item_bias.gather_rows(batch.positives)
        neg_scores = F.dot(users, negatives, axis=-1) + net.item_bias.gather_rows(batch.negatives)
        loss = F.bpr_loss(pos_scores, neg_scores)
        if self.weight_decay:
            reg = F.l2_regularization(users, positives, negatives)
            loss = loss + reg * (self.weight_decay / len(batch))
        return loss

    def _score_pairs_numpy(self, user: int, items: np.ndarray) -> np.ndarray:
        net: _BPRNetwork = self.network
        user_vec = net.user_embeddings.weight.data[user]
        item_vecs = net.item_embeddings.weight.data[items]
        return item_vecs @ user_vec + net.item_bias.data[items]

    def _score_matrix_numpy(self, users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        net: _BPRNetwork = self.network
        user_vecs = net.user_embeddings.weight.data[users]          # (U, D)
        item_vecs = net.item_embeddings.weight.data[item_matrix]    # (U, C, D)
        dots = np.matmul(item_vecs, user_vecs[:, :, None])[..., 0]  # (U, C)
        return dots + net.item_bias.data[item_matrix]
