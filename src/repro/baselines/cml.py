"""CML — Collaborative Metric Learning (Hsieh et al., WWW 2017).

Users and items live in a single Euclidean metric space; training minimises a
large-margin hinge loss that pushes sampled negative items further from the
user than positive items, and all embeddings are censored into the unit ball
after every update.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Module, Tensor
from repro.autograd import functional as F
from repro.autograd.optim import Optimizer
from repro.baselines._embedding_base import EmbeddingRecommender
from repro.core.fused import hinge_distance_push
from repro.data.batching import TripletBatch
from repro.data.interactions import InteractionMatrix


class _CMLNetwork(Module):
    def __init__(self, n_users: int, n_items: int, dim: int, random_state) -> None:
        super().__init__()
        self.user_embeddings = Embedding(n_users, dim, std=1.0 / np.sqrt(dim),
                                         random_state=random_state)
        self.item_embeddings = Embedding(n_items, dim, std=1.0 / np.sqrt(dim),
                                         random_state=random_state)


class CML(EmbeddingRecommender):
    """Single-space metric learning with a fixed-margin hinge loss.

    This is the single-space reference the paper's ablation (Table IV)
    compares MAR and MARS against.
    """

    name = "CML"
    _supports_fused = True
    _serving_family = "euclidean"

    def __init__(self, embedding_dim: int = 32, n_epochs: int = 30,
                 batch_size: int = 256, learning_rate: float = 0.3,
                 margin: float = 0.5, engine: str = "fused",
                 executor: str = "serial", n_shards: int = 1,
                 n_negatives: int = 1, negative_reduction: str = "sum",
                 random_state=0, verbose: bool = False) -> None:
        super().__init__(embedding_dim=embedding_dim, n_epochs=n_epochs,
                         batch_size=batch_size, learning_rate=learning_rate,
                         optimizer="sgd", engine=engine, executor=executor,
                         n_shards=n_shards, n_negatives=n_negatives,
                         negative_reduction=negative_reduction,
                         random_state=random_state, verbose=verbose)
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.margin = float(margin)

    def _build(self, interactions: InteractionMatrix) -> Module:
        return _CMLNetwork(interactions.n_users, interactions.n_items,
                           self.embedding_dim, self.random_state)

    def _batch_loss(self, batch: TripletBatch) -> Tensor:
        net: _CMLNetwork = self.network
        users = net.user_embeddings(batch.users)
        positives = net.item_embeddings(batch.positives)
        negatives = net.item_embeddings(batch.negatives)
        pos_distance = F.squared_euclidean(users, positives, axis=-1)
        if negatives.ndim == 3:
            users = users.reshape(len(batch), 1, self.embedding_dim)
            pos_distance = pos_distance.reshape(len(batch), 1)
        neg_distance = F.squared_euclidean(users, negatives, axis=-1)
        # hinge(margin + d(u, v+)² − d(u, v−)²), one column per negative
        return F.hinge_push(pos_distance - neg_distance + self.margin,
                            self.negative_reduction)

    def _fused_step(self, batch: TripletBatch, optimizer: Optimizer) -> float:
        (users, positives, neg_matrix,
         user_emb, pos_emb, neg_emb) = self._gather_fused_batch(batch)
        pos_diff = user_emb - pos_emb
        neg_diff = user_emb[:, None, :] - neg_emb

        loss, grad_pos_diff, grad_neg_diff, _ = hinge_distance_push(
            pos_diff, neg_diff, self.margin, self.negative_reduction)
        self._apply_fused_updates(
            optimizer, users, grad_pos_diff + grad_neg_diff.sum(axis=1),
            positives, neg_matrix, -grad_pos_diff, -grad_neg_diff)
        return loss

    def _post_step(self, user_rows=None, item_rows=None) -> None:
        net: _CMLNetwork = self.network
        net.user_embeddings.clip_to_unit_ball(rows=user_rows)
        net.item_embeddings.clip_to_unit_ball(rows=item_rows)

    def _score_pairs_numpy(self, user: int, items: np.ndarray) -> np.ndarray:
        net: _CMLNetwork = self.network
        user_vec = net.user_embeddings.weight.data[user]
        item_vecs = net.item_embeddings.weight.data[items]
        distances = np.sum((item_vecs - user_vec) ** 2, axis=-1)
        return -distances

    def _score_matrix_numpy(self, users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        return self._euclidean_score_matrix(users, item_matrix)
