"""Non-negative matrix factorisation (Lee & Seung, 1999) for implicit feedback.

Trained with the classic multiplicative update rules on the binary interaction
matrix.  The paper also uses NMF factors to initialise the facet structure of
its own model, which is why the factor matrices are exposed publicly.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.base import BaseRecommender
from repro.data.interactions import InteractionMatrix
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

_EPS = 1e-9


class NMF(BaseRecommender):
    """Multiplicative-update NMF on the user-item matrix.

    Parameters
    ----------
    n_factors:
        Rank of the factorisation (the paper sets it to the number of metric
        spaces when using NMF as an initialiser).
    n_iterations:
        Number of multiplicative update sweeps.
    """

    name = "NMF"

    def __init__(self, n_factors: int = 16, n_iterations: int = 100,
                 random_state=0) -> None:
        super().__init__()
        self.n_factors = check_positive_int(n_factors, "n_factors")
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        self.random_state = random_state
        self.user_factors_: np.ndarray = np.empty((0, 0))
        self.item_factors_: np.ndarray = np.empty((0, 0))
        self.reconstruction_errors_: list = []

    def _fit(self, interactions: InteractionMatrix) -> None:
        rng = ensure_rng(self.random_state)
        matrix = interactions.toarray()
        n_users, n_items = matrix.shape

        W = rng.random((n_users, self.n_factors)) + 0.1
        H = rng.random((self.n_factors, n_items)) + 0.1

        self.reconstruction_errors_ = []
        for _ in range(self.n_iterations):
            # Multiplicative updates for the Frobenius objective.
            WH = W @ H
            H *= (W.T @ matrix) / (W.T @ WH + _EPS)
            WH = W @ H
            W *= (matrix @ H.T) / (WH @ H.T + _EPS)
            error = float(np.linalg.norm(matrix - W @ H))
            self.reconstruction_errors_.append(error)

        self.user_factors_ = W
        self.item_factors_ = H.T

    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        self._require_fitted()
        items = np.asarray(items, dtype=np.int64)
        return self.item_factors_[items] @ self.user_factors_[user]

    def get_parameters(self) -> Dict[str, np.ndarray]:
        return {"user_factors": self.user_factors_, "item_factors": self.item_factors_}

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        self.user_factors_ = np.asarray(parameters["user_factors"], dtype=np.float64)
        self.item_factors_ = np.asarray(parameters["item_factors"], dtype=np.float64)
