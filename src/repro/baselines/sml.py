"""SML — Symmetric Metric Learning with adaptive margins (Li et al., AAAI 2020).

Extends CML with a symmetric, item-centric hinge term (negative items should
also be far from the positive item) and learnable per-user and per-item
margins regularised towards a target value.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Module, Parameter, Tensor
from repro.autograd import functional as F
from repro.autograd.optim import Optimizer
from repro.baselines._embedding_base import EmbeddingRecommender
from repro.core.fused import hinge_distance_push
from repro.data.batching import TripletBatch
from repro.data.interactions import InteractionMatrix


class _SMLNetwork(Module):
    def __init__(self, n_users: int, n_items: int, dim: int, init_margin: float,
                 random_state) -> None:
        super().__init__()
        self.user_embeddings = Embedding(n_users, dim, std=1.0 / np.sqrt(dim),
                                         random_state=random_state)
        self.item_embeddings = Embedding(n_items, dim, std=1.0 / np.sqrt(dim),
                                         random_state=random_state)
        self.user_margins = Parameter(np.full(n_users, init_margin))
        self.item_margins = Parameter(np.full(n_items, init_margin))


class SML(EmbeddingRecommender):
    """Symmetric metric learning with learnable (dynamic) margins.

    Parameters
    ----------
    item_weight:
        Weight λ of the item-centric hinge term.
    margin_weight:
        Weight γ of the margin regulariser that keeps learnable margins from
        collapsing to zero or exploding.
    max_margin:
        Upper clip for the learnable margins.
    """

    name = "SML"
    _supports_fused = True
    _serving_family = "euclidean"

    def __init__(self, embedding_dim: int = 32, n_epochs: int = 30,
                 batch_size: int = 256, learning_rate: float = 0.3,
                 init_margin: float = 0.5, max_margin: float = 1.0,
                 item_weight: float = 0.5, margin_weight: float = 0.1,
                 engine: str = "fused", executor: str = "serial",
                 n_shards: int = 1, n_negatives: int = 1,
                 negative_reduction: str = "sum",
                 random_state=0, verbose: bool = False) -> None:
        super().__init__(embedding_dim=embedding_dim, n_epochs=n_epochs,
                         batch_size=batch_size, learning_rate=learning_rate,
                         optimizer="sgd", engine=engine, executor=executor,
                         n_shards=n_shards, n_negatives=n_negatives,
                         negative_reduction=negative_reduction,
                         random_state=random_state, verbose=verbose)
        if init_margin <= 0 or max_margin < init_margin:
            raise ValueError("margins must satisfy 0 < init_margin <= max_margin")
        self.init_margin = float(init_margin)
        self.max_margin = float(max_margin)
        self.item_weight = float(item_weight)
        self.margin_weight = float(margin_weight)

    def _build(self, interactions: InteractionMatrix) -> Module:
        return _SMLNetwork(interactions.n_users, interactions.n_items,
                           self.embedding_dim, self.init_margin, self.random_state)

    def _batch_loss(self, batch: TripletBatch) -> Tensor:
        net: _SMLNetwork = self.network
        users = net.user_embeddings(batch.users)
        positives = net.item_embeddings(batch.positives)
        negatives = net.item_embeddings(batch.negatives)

        user_margin = net.user_margins.gather_rows(batch.users)
        item_margin = net.item_margins.gather_rows(batch.positives)

        pos_distance = F.squared_euclidean(users, positives, axis=-1)
        if negatives.ndim == 3:
            batch_size = len(batch)
            users_wide = users.reshape(batch_size, 1, self.embedding_dim)
            positives_wide = positives.reshape(batch_size, 1, self.embedding_dim)
            pos_distance_wide = pos_distance.reshape(batch_size, 1)
            user_margin_wide = user_margin.reshape(batch_size, 1)
            item_margin_wide = item_margin.reshape(batch_size, 1)
        else:
            users_wide, positives_wide = users, positives
            pos_distance_wide = pos_distance
            user_margin_wide, item_margin_wide = user_margin, item_margin
        neg_user_distance = F.squared_euclidean(users_wide, negatives, axis=-1)
        neg_item_distance = F.squared_euclidean(positives_wide, negatives, axis=-1)

        user_term = F.hinge_push(
            pos_distance_wide - neg_user_distance + user_margin_wide,
            self.negative_reduction)
        item_term = F.hinge_push(
            pos_distance_wide - neg_item_distance + item_margin_wide,
            self.negative_reduction)
        # Encourage margins to stay large (the regulariser of the original paper).
        margin_reg = (user_margin.mean() + item_margin.mean()) * -1.0
        return user_term + item_term * self.item_weight + margin_reg * self.margin_weight

    def _fused_step(self, batch: TripletBatch, optimizer: Optimizer) -> float:
        net: _SMLNetwork = self.network
        (users, positives, neg_matrix,
         user_emb, pos_emb, neg_emb) = self._gather_fused_batch(batch)
        batch_size = users.shape[0]
        user_margin = net.user_margins.data[users]
        item_margin = net.item_margins.data[positives]

        pos_diff = user_emb - pos_emb
        neg_user_diff = user_emb[:, None, :] - neg_emb
        neg_item_diff = pos_emb[:, None, :] - neg_emb

        # User-centric hinge (the CML term, with learnable per-user margins)
        # and the symmetric item-centric hinge; both share the positive pair.
        user_loss, user_gpd, user_gnd, user_gmargin = hinge_distance_push(
            pos_diff, neg_user_diff, user_margin, self.negative_reduction)
        item_loss, item_gpd, item_gnd, item_gmargin = hinge_distance_push(
            pos_diff, neg_item_diff, item_margin, self.negative_reduction)

        weight = self.item_weight
        loss = (user_loss + weight * item_loss
                - self.margin_weight * (float(user_margin.mean())
                                        + float(item_margin.mean())))

        grad_user = user_gpd + user_gnd.sum(axis=1) + weight * item_gpd
        grad_pos = -user_gpd + weight * (-item_gpd + item_gnd.sum(axis=1))
        grad_neg = -user_gnd - weight * item_gnd
        reg_grad = self.margin_weight / batch_size
        self._apply_fused_updates(
            optimizer, users, grad_user, positives, neg_matrix, grad_pos,
            grad_neg,
            user_extras=[(net.user_margins, user_gmargin - reg_grad)],
            positive_extras=[(net.item_margins,
                              weight * item_gmargin - reg_grad)])
        return loss

    def _post_step(self, user_rows=None, item_rows=None) -> None:
        net: _SMLNetwork = self.network
        net.user_embeddings.clip_to_unit_ball(rows=user_rows)
        net.item_embeddings.clip_to_unit_ball(rows=item_rows)
        if user_rows is None:
            np.clip(net.user_margins.data, 0.01, self.max_margin,
                    out=net.user_margins.data)
        else:
            net.user_margins.data[user_rows] = np.clip(
                net.user_margins.data[user_rows], 0.01, self.max_margin)
        if item_rows is None:
            np.clip(net.item_margins.data, 0.01, self.max_margin,
                    out=net.item_margins.data)
        else:
            net.item_margins.data[item_rows] = np.clip(
                net.item_margins.data[item_rows], 0.01, self.max_margin)

    def _score_pairs_numpy(self, user: int, items: np.ndarray) -> np.ndarray:
        net: _SMLNetwork = self.network
        user_vec = net.user_embeddings.weight.data[user]
        item_vecs = net.item_embeddings.weight.data[items]
        return -np.sum((item_vecs - user_vec) ** 2, axis=-1)

    def _score_matrix_numpy(self, users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        return self._euclidean_score_matrix(users, item_matrix)
