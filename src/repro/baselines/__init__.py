"""Baseline recommenders compared against MAR/MARS in the paper's Table II.

Matrix-factorisation family: :class:`BPR`, :class:`NMF`, :class:`NeuMF`.
Metric-learning family: :class:`CML`, :class:`MetricF`, :class:`TransCF`,
:class:`LRML`, :class:`SML`.
Non-learned references: :class:`Popularity`, :class:`ItemKNN`.
"""

from repro.baselines.popularity import Popularity
from repro.baselines.itemknn import ItemKNN
from repro.baselines.bpr import BPR
from repro.baselines.nmf import NMF
from repro.baselines.neumf import NeuMF
from repro.baselines.cml import CML
from repro.baselines.metricf import MetricF
from repro.baselines.transcf import TransCF
from repro.baselines.lrml import LRML
from repro.baselines.sml import SML

ALL_BASELINES = {
    "Popularity": Popularity,
    "ItemKNN": ItemKNN,
    "BPR": BPR,
    "NMF": NMF,
    "NeuMF": NeuMF,
    "CML": CML,
    "MetricF": MetricF,
    "TransCF": TransCF,
    "LRML": LRML,
    "SML": SML,
}

__all__ = list(ALL_BASELINES) + ["ALL_BASELINES"]
