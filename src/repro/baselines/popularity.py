"""Most-popular baseline: rank items by their training interaction count."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.base import BaseRecommender
from repro.data.interactions import InteractionMatrix


class Popularity(BaseRecommender):
    """Non-personalised popularity ranking.

    Serves as a sanity floor: any personalised model worth its salt should
    beat it on the benchmark presets.
    """

    name = "Popularity"

    def __init__(self) -> None:
        super().__init__()
        self.item_scores_: np.ndarray = np.empty(0)

    def _fit(self, interactions: InteractionMatrix) -> None:
        degrees = interactions.item_degrees().astype(np.float64)
        # Log-damped counts keep the scores in a small numeric range.
        self.item_scores_ = np.log1p(degrees)

    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        self._require_fitted()
        return self.item_scores_[np.asarray(items, dtype=np.int64)]

    def _serving_payload(self):
        interactions = self._require_fitted()
        return ("popularity", {"item_scores": self.item_scores_},
                interactions.n_users, self.item_scores_.size)

    def get_parameters(self) -> Dict[str, np.ndarray]:
        return {"item_scores": self.item_scores_}

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        self.item_scores_ = np.asarray(parameters["item_scores"], dtype=np.float64)
