"""MetricF — Metric Factorization (Zhang et al., 2018).

Converts implicit preference into distances: positive user-item pairs are
*pulled* together (the paper contrasts this with CML's pushing term) while a
small confidence-weighted hinge keeps non-interacted items from collapsing
onto the user.  Embeddings are censored into a ball of configurable radius.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Module, Tensor
from repro.autograd import functional as F
from repro.autograd.optim import Optimizer
from repro.baselines._embedding_base import EmbeddingRecommender
from repro.core.losses import push_loss_numpy
from repro.data.batching import TripletBatch
from repro.data.interactions import InteractionMatrix


class _MetricFNetwork(Module):
    def __init__(self, n_users: int, n_items: int, dim: int, random_state) -> None:
        super().__init__()
        self.user_embeddings = Embedding(n_users, dim, std=1.0 / np.sqrt(dim),
                                         random_state=random_state)
        self.item_embeddings = Embedding(n_items, dim, std=1.0 / np.sqrt(dim),
                                         random_state=random_state)


class MetricF(EmbeddingRecommender):
    """Pull-dominated metric factorisation for implicit feedback.

    Parameters
    ----------
    max_distance:
        Target distance for sampled negatives; the loss only activates when a
        negative item comes closer than this.
    negative_weight:
        Relative weight of the negative (anti-collapse) term versus the
        positive pulling term.
    """

    name = "MetricF"
    _supports_fused = True
    _serving_family = "euclidean"

    def __init__(self, embedding_dim: int = 32, n_epochs: int = 30,
                 batch_size: int = 256, learning_rate: float = 0.3,
                 max_distance: float = 2.0, negative_weight: float = 0.5,
                 engine: str = "fused", executor: str = "serial",
                 n_shards: int = 1, n_negatives: int = 1,
                 negative_reduction: str = "sum",
                 random_state=0, verbose: bool = False) -> None:
        super().__init__(embedding_dim=embedding_dim, n_epochs=n_epochs,
                         batch_size=batch_size, learning_rate=learning_rate,
                         optimizer="sgd", engine=engine, executor=executor,
                         n_shards=n_shards, n_negatives=n_negatives,
                         negative_reduction=negative_reduction,
                         random_state=random_state, verbose=verbose)
        if max_distance <= 0:
            raise ValueError("max_distance must be positive")
        self.max_distance = float(max_distance)
        self.negative_weight = float(negative_weight)

    def _build(self, interactions: InteractionMatrix) -> Module:
        return _MetricFNetwork(interactions.n_users, interactions.n_items,
                               self.embedding_dim, self.random_state)

    def _batch_loss(self, batch: TripletBatch) -> Tensor:
        net: _MetricFNetwork = self.network
        users = net.user_embeddings(batch.users)
        positives = net.item_embeddings(batch.positives)
        negatives = net.item_embeddings(batch.negatives)
        # Pull positives towards the user (squared distance), gently push
        # negatives out to at least ``max_distance``.
        pull = F.squared_euclidean(users, positives, axis=-1).mean()
        if negatives.ndim == 3:
            users = users.reshape(len(batch), 1, self.embedding_dim)
        neg_distance = F.squared_euclidean(users, negatives, axis=-1)
        push = F.hinge_push(neg_distance * -1.0 + self.max_distance,
                            self.negative_reduction)
        return pull + push * self.negative_weight

    def _fused_step(self, batch: TripletBatch, optimizer: Optimizer) -> float:
        (users, positives, neg_matrix,
         user_emb, pos_emb, neg_emb) = self._gather_fused_batch(batch)
        batch_size = users.shape[0]
        pos_diff = user_emb - pos_emb
        neg_diff = user_emb[:, None, :] - neg_emb

        # Pull term: mean of d(u, v+)², so ∂/∂pos_diff = (2/B)·pos_diff.
        loss = float(np.einsum("bd,bd->", pos_diff, pos_diff)) / batch_size
        grad_pos_diff = (2.0 / batch_size) * pos_diff
        # Push term: the hinge [max_distance − d(u, v−)²]₊ is the push loss
        # on similarity −d with a zero positive score and margin
        # max_distance.
        neg_dist = np.einsum("bnd,bnd->bn", neg_diff, neg_diff)
        push, _, grad_neg_score = push_loss_numpy(
            np.zeros(batch_size), -neg_dist, self.max_distance,
            reduction=self.negative_reduction)
        loss += self.negative_weight * push
        grad_neg_diff = ((-2.0 * self.negative_weight) * grad_neg_score
                         )[..., None] * neg_diff
        self._apply_fused_updates(
            optimizer, users, grad_pos_diff + grad_neg_diff.sum(axis=1),
            positives, neg_matrix, -grad_pos_diff, -grad_neg_diff)
        return loss

    def _post_step(self, user_rows=None, item_rows=None) -> None:
        net: _MetricFNetwork = self.network
        net.user_embeddings.clip_to_unit_ball(rows=user_rows)
        net.item_embeddings.clip_to_unit_ball(rows=item_rows)

    def _score_pairs_numpy(self, user: int, items: np.ndarray) -> np.ndarray:
        net: _MetricFNetwork = self.network
        user_vec = net.user_embeddings.weight.data[user]
        item_vecs = net.item_embeddings.weight.data[items]
        return -np.sum((item_vecs - user_vec) ** 2, axis=-1)

    def _score_matrix_numpy(self, users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        return self._euclidean_score_matrix(users, item_matrix)
