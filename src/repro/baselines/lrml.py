"""LRML — Latent Relational Metric Learning (Tay et al., WWW 2018).

Each user-item pair induces a latent relation vector read from a shared
memory module with attention: the attention weights come from the Hadamard
product of the user and item embeddings projected onto memory keys, and the
relation is the attention-weighted sum of memory slots.  The score is the
negative squared distance ``‖u + r − v‖²``.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Module, Parameter, Tensor
from repro.autograd import functional as F
from repro.autograd import init
from repro.baselines._embedding_base import EmbeddingRecommender
from repro.data.batching import TripletBatch
from repro.data.interactions import InteractionMatrix
from repro.serving.scorers import memory_scores


class _LRMLNetwork(Module):
    def __init__(self, n_users: int, n_items: int, dim: int, n_memories: int,
                 random_state) -> None:
        super().__init__()
        self.user_embeddings = Embedding(n_users, dim, std=1.0 / np.sqrt(dim),
                                         random_state=random_state)
        self.item_embeddings = Embedding(n_items, dim, std=1.0 / np.sqrt(dim),
                                         random_state=random_state)
        self.memory_keys = Parameter(init.xavier_uniform((dim, n_memories),
                                                         random_state=random_state))
        self.memory_slots = Parameter(init.xavier_uniform((n_memories, dim),
                                                          random_state=random_state))

    def relation(self, users: Tensor, items: Tensor) -> Tensor:
        joint = users * items
        attention = F.softmax(joint @ self.memory_keys, axis=-1)
        return attention @ self.memory_slots


class LRML(EmbeddingRecommender):
    """Memory-attention relational metric learning."""

    name = "LRML"

    def __init__(self, embedding_dim: int = 32, n_memories: int = 10,
                 n_epochs: int = 30, batch_size: int = 256, learning_rate: float = 0.3,
                 margin: float = 0.5, engine: str = "autograd",
                 random_state=0, verbose: bool = False) -> None:
        # No fused kernel for the attention memory; the base class rejects
        # engine="fused" because _supports_fused stays False.
        super().__init__(embedding_dim=embedding_dim, n_epochs=n_epochs,
                         batch_size=batch_size, learning_rate=learning_rate,
                         optimizer="sgd", engine=engine,
                         random_state=random_state, verbose=verbose)
        if n_memories <= 0:
            raise ValueError("n_memories must be positive")
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.n_memories = int(n_memories)
        self.margin = float(margin)

    def _build(self, interactions: InteractionMatrix) -> Module:
        return _LRMLNetwork(interactions.n_users, interactions.n_items,
                            self.embedding_dim, self.n_memories, self.random_state)

    def _batch_loss(self, batch: TripletBatch) -> Tensor:
        net: _LRMLNetwork = self.network
        users = net.user_embeddings(batch.users)
        positives = net.item_embeddings(batch.positives)
        negatives = net.item_embeddings(batch.negatives)

        pos_relation = net.relation(users, positives)
        neg_relation = net.relation(users, negatives)
        pos_distance = F.squared_euclidean(users + pos_relation, positives, axis=-1)
        neg_distance = F.squared_euclidean(users + neg_relation, negatives, axis=-1)
        return F.hinge(pos_distance - neg_distance + self.margin).mean()

    def _post_step(self, user_rows=None, item_rows=None) -> None:
        net: _LRMLNetwork = self.network
        net.user_embeddings.clip_to_unit_ball(rows=user_rows)
        net.item_embeddings.clip_to_unit_ball(rows=item_rows)

    def _score_pairs_numpy(self, user: int, items: np.ndarray) -> np.ndarray:
        net: _LRMLNetwork = self.network
        user_vec = net.user_embeddings.weight.data[user][None, :]
        item_vecs = net.item_embeddings.weight.data[items]

        joint = user_vec * item_vecs
        logits = joint @ net.memory_keys.data
        logits = logits - logits.max(axis=-1, keepdims=True)
        attention = np.exp(logits)
        attention = attention / attention.sum(axis=-1, keepdims=True)
        relation = attention @ net.memory_slots.data
        translated = user_vec + relation
        return -np.sum((translated - item_vecs) ** 2, axis=-1)

    def _score_matrix_numpy(self, users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        net: _LRMLNetwork = self.network
        return memory_scores(net.user_embeddings.weight.data,
                             net.item_embeddings.weight.data,
                             net.memory_keys.data, net.memory_slots.data,
                             users, item_matrix)

    def _serving_payload(self):
        net: _LRMLNetwork = self._require_network()
        tensors = {
            "user_embeddings": net.user_embeddings.weight.data,
            "item_embeddings": net.item_embeddings.weight.data,
            "memory_keys": net.memory_keys.data,
            "memory_slots": net.memory_slots.data,
        }
        return ("memory", tensors, net.user_embeddings.n_embeddings,
                net.item_embeddings.n_embeddings)
