"""Item-based k-nearest-neighbour collaborative filtering."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np
from scipy import sparse

from repro.core.base import BaseRecommender
from repro.data.interactions import InteractionMatrix
from repro.utils.validation import check_positive_int


class ItemKNN(BaseRecommender):
    """Score items by their cosine similarity to the user's training items.

    Parameters
    ----------
    k_neighbours:
        Number of most similar items retained per item (sparsifies the
        similarity matrix and is the classic kNN knob).
    shrinkage:
        Additive shrinkage in the cosine denominator, damping similarities
        supported by few co-occurrences.
    """

    name = "ItemKNN"

    def __init__(self, k_neighbours: int = 50, shrinkage: float = 10.0) -> None:
        super().__init__()
        self.k_neighbours = check_positive_int(k_neighbours, "k_neighbours")
        if shrinkage < 0:
            raise ValueError("shrinkage must be non-negative")
        self.shrinkage = float(shrinkage)
        self.similarity_: sparse.csr_matrix = sparse.csr_matrix((0, 0))

    def _fit(self, interactions: InteractionMatrix) -> None:
        matrix = interactions.csr().astype(np.float64)
        co_occurrence = (matrix.T @ matrix).toarray()
        np.fill_diagonal(co_occurrence, 0.0)

        norms = np.sqrt(np.asarray(matrix.power(2).sum(axis=0)).ravel())
        denom = np.outer(norms, norms) + self.shrinkage + 1e-12
        similarity = co_occurrence / denom

        # Keep only the top-k neighbours of each item.
        n_items = similarity.shape[0]
        k = min(self.k_neighbours, max(n_items - 1, 1))
        pruned = np.zeros_like(similarity)
        for item in range(n_items):
            if similarity[item].max() <= 0:
                continue
            top = np.argpartition(-similarity[item], kth=k - 1)[:k]
            pruned[item, top] = similarity[item, top]
        self.similarity_ = sparse.csr_matrix(pruned)

    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        interactions = self._require_fitted()
        profile = np.zeros(interactions.n_items)
        profile[interactions.items_of_user(user)] = 1.0
        scores = self.similarity_ @ profile
        return scores[np.asarray(items, dtype=np.int64)]

    def get_parameters(self) -> Dict[str, np.ndarray]:
        return {"similarity": self.similarity_.toarray()}

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        self.similarity_ = sparse.csr_matrix(np.asarray(parameters["similarity"]))
