"""Implicit-feedback data substrate.

Provides the interaction-matrix container, the leave-one-out dataset split
used by the paper's evaluation protocol, the multi-facet synthetic generator
that stands in for the six public benchmark datasets, raw-file loaders,
negative samplers and triplet batchers.
"""

from repro.data.interactions import InteractionMatrix
from repro.data.dataset import ImplicitFeedbackDataset, train_validation_test_split
from repro.data.synthetic import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.data.loaders import (
    BENCHMARK_PRESETS,
    DatasetSpec,
    list_benchmarks,
    load_benchmark,
    load_interactions_csv,
)
from repro.data.negative_sampling import (
    FrequencyBiasedUserSampler,
    PopularityNegativeSampler,
    UniformNegativeSampler,
)
from repro.data.batching import TripletBatcher

__all__ = [
    "InteractionMatrix",
    "ImplicitFeedbackDataset",
    "train_validation_test_split",
    "MultiFacetSyntheticGenerator",
    "SyntheticConfig",
    "BENCHMARK_PRESETS",
    "DatasetSpec",
    "list_benchmarks",
    "load_benchmark",
    "load_interactions_csv",
    "FrequencyBiasedUserSampler",
    "PopularityNegativeSampler",
    "UniformNegativeSampler",
    "TripletBatcher",
]
