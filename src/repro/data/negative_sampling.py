"""Negative and user sampling strategies.

Implements the frequency-biased user sampling of the paper (Eq. 10) alongside
the standard uniform and popularity-biased negative item samplers used by the
baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_in_range, check_positive_int


class UniformNegativeSampler:
    """Sample negative items uniformly from the user's non-interacted items."""

    def __init__(self, interactions: InteractionMatrix,
                 random_state: RandomState = None, max_rejections: int = 50) -> None:
        self.interactions = interactions
        self._rng = ensure_rng(random_state)
        self.max_rejections = check_positive_int(max_rejections, "max_rejections")
        # Per-user positive sets back the single-user path and the
        # dense-user fallback only, so they are built lazily: the batched
        # training path never touches them, and sharded training builds one
        # sampler per shard, where the O(n_users) Python loop would
        # otherwise be paid once per shard.
        self._positive_sets_cache: Optional[list] = None
        # Sorted encoded (user, item) keys: membership of a whole candidate
        # batch is one searchsorted instead of a scipy fancy-index lookup,
        # which keeps the training-loop sampling off the profile.  The index
        # is cached on (and shared through) the interaction matrix, so the
        # per-shard samplers of sharded training all point at one copy.
        self._pair_keys = interactions.encoded_positive_keys()
        self._seen_version = interactions.version

    def _resnapshot(self) -> None:
        """Re-derive every per-matrix snapshot after the matrix mutated."""
        self._pair_keys = self.interactions.encoded_positive_keys()
        self._positive_sets_cache = None

    def _refresh_if_stale(self) -> None:
        # Streaming ingestion mutates the interaction matrix in place; a
        # sampler holding a pre-append pair-key index would silently emit
        # observed interactions as "negatives".
        if self.interactions.version != self._seen_version:
            self._resnapshot()
            self._seen_version = self.interactions.version

    @property
    def _positive_sets(self) -> list:
        if self._positive_sets_cache is None:
            self._positive_sets_cache = [
                set(self.interactions.items_of_user(user).tolist())
                for user in range(self.interactions.n_users)
            ]
        return self._positive_sets_cache

    def _is_positive(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Vectorised membership test for ``(user, item)`` pairs."""
        if self._pair_keys.size == 0:
            return np.zeros(users.shape, dtype=bool)
        keys = users * self.interactions.n_items + items
        slots = np.searchsorted(self._pair_keys, keys)
        slots = np.minimum(slots, self._pair_keys.size - 1)
        return self._pair_keys[slots] == keys

    def sample(self, user: int, size: int = 1) -> np.ndarray:
        """Draw ``size`` negative items for ``user`` (with rejection)."""
        self._refresh_if_stale()
        positives = self._positive_sets[user]
        n_items = self.interactions.n_items
        if len(positives) >= n_items:
            raise ValueError(f"user {user} has interacted with every item; "
                             "cannot sample negatives")
        negatives = np.empty(size, dtype=np.int64)
        for slot in range(size):
            item = int(self._rng.integers(0, n_items))
            attempts = 0
            while item in positives and attempts < self.max_rejections:
                item = int(self._rng.integers(0, n_items))
                attempts += 1
            if item in positives:
                # Extremely dense user: fall back to explicit enumeration.
                candidates = np.setdiff1d(
                    np.arange(n_items), np.fromiter(positives, dtype=np.int64)
                )
                item = int(self._rng.choice(candidates))
            negatives[slot] = item
        return negatives

    def _propose(self, size: int) -> np.ndarray:
        """Draw ``size`` candidate items from the sampler's proposal distribution."""
        return self._rng.integers(0, self.interactions.n_items, size=size).astype(np.int64)

    def sample_batch(self, users: np.ndarray) -> np.ndarray:
        """Draw one negative item per user in ``users`` (vectorised rejection).

        The whole batch is proposed at once; only the slots that collided
        with an observed interaction are redrawn, so the expected number of
        proposal rounds is ``O(log(batch) / log(1 / density))`` instead of
        one Python-level rejection loop per user.
        """
        self._refresh_if_stale()
        users = np.asarray(users, dtype=np.int64)
        if users.size == 0:
            return np.empty(0, dtype=np.int64)
        negatives = self._propose(users.size)
        pending = np.flatnonzero(self._is_positive(users, negatives))
        for _ in range(self.max_rejections):
            if pending.size == 0:
                break
            negatives[pending] = self._propose(pending.size)
            still_positive = self._is_positive(users[pending], negatives[pending])
            pending = pending[still_positive]
        for slot in pending:
            # Extremely dense user: fall back to explicit enumeration.
            positives = self._positive_sets[int(users[slot])]
            if len(positives) >= self.interactions.n_items:
                raise ValueError(f"user {int(users[slot])} has interacted with every "
                                 "item; cannot sample negatives")
            candidates = np.setdiff1d(
                np.arange(self.interactions.n_items),
                np.fromiter(positives, dtype=np.int64),
            )
            negatives[slot] = int(self._rng.choice(candidates))
        return negatives


class PopularityNegativeSampler(UniformNegativeSampler):
    """Sample negatives proportionally to item popularity raised to a power.

    Popular non-interacted items make harder negatives; this sampler is used
    by some baselines and by ablation benches.
    """

    def __init__(self, interactions: InteractionMatrix, exponent: float = 0.75,
                 random_state: RandomState = None, max_rejections: int = 50) -> None:
        super().__init__(interactions, random_state=random_state,
                         max_rejections=max_rejections)
        self.exponent = check_in_range(exponent, "exponent", 0.0, 10.0)
        self._compute_item_probs()

    def _compute_item_probs(self) -> None:
        degrees = self.interactions.item_degrees().astype(np.float64)
        weights = (degrees + 1.0) ** self.exponent
        self._item_probs = weights / weights.sum()

    def _resnapshot(self) -> None:
        super()._resnapshot()
        self._compute_item_probs()

    def _propose(self, size: int) -> np.ndarray:
        return self._rng.choice(self.interactions.n_items, size=size,
                                p=self._item_probs).astype(np.int64)

    def sample(self, user: int, size: int = 1) -> np.ndarray:
        self._refresh_if_stale()
        positives = self._positive_sets[user]
        negatives = np.empty(size, dtype=np.int64)
        for slot in range(size):
            item = int(self._rng.choice(self.interactions.n_items, p=self._item_probs))
            attempts = 0
            while item in positives and attempts < self.max_rejections:
                item = int(self._rng.choice(self.interactions.n_items, p=self._item_probs))
                attempts += 1
            if item in positives:
                candidates = np.setdiff1d(
                    np.arange(self.interactions.n_items),
                    np.fromiter(positives, dtype=np.int64),
                )
                item = int(self._rng.choice(candidates))
            negatives[slot] = item
        return negatives


class FrequencyBiasedUserSampler:
    """Sample users with probability ∝ freq(u)^β (paper Eq. 10).

    Active users (many interactions) are sampled more often, so their richer
    feedback shapes the multiple facet-specific spaces, as argued in
    Section III-C of the paper.  ``beta = 0`` recovers uniform sampling over
    users with at least one interaction.
    """

    def __init__(self, interactions: InteractionMatrix, beta: float = 0.8,
                 random_state: RandomState = None,
                 user_subset: Optional[np.ndarray] = None) -> None:
        self.beta = check_in_range(beta, "beta", 0.0, 10.0)
        self._rng = ensure_rng(random_state)
        self._interactions = interactions
        self._user_subset = (None if user_subset is None
                             else np.asarray(user_subset, dtype=np.int64).copy())
        self._resnapshot()
        self._seen_version = interactions.version

    def _resnapshot(self) -> None:
        interactions = self._interactions
        frequencies = interactions.user_degrees().astype(np.float64)
        weights = np.where(frequencies > 0, frequencies ** self.beta, 0.0)
        if self._user_subset is not None:
            # Restrict Eq. 10 to a user shard: weights outside the subset are
            # zeroed and the remaining mass renormalised, so the conditional
            # distribution over the shard matches the unrestricted sampler.
            mask = np.zeros(interactions.n_users, dtype=bool)
            mask[self._user_subset] = True
            weights = np.where(mask, weights, 0.0)
        total = weights.sum()
        if total <= 0:
            raise ValueError("interaction matrix has no interactions to sample from")
        self._probs = weights / total
        self.n_users = interactions.n_users

    @property
    def probabilities(self) -> np.ndarray:
        """The per-user sampling distribution (sums to one)."""
        return self._probs.copy()

    def sample(self, size: int = 1) -> np.ndarray:
        """Draw ``size`` user ids."""
        if self._interactions.version != self._seen_version:
            self._resnapshot()
            self._seen_version = self._interactions.version
        return self._rng.choice(self.n_users, size=size, p=self._probs)
