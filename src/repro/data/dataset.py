"""Leave-one-out dataset splits for implicit-feedback recommendation.

The paper (Section V-A2) follows the standard protocol: for every user the
most recent interaction (or a random one when no timestamps exist) is held out
as the test item, one more is held out for validation, and the rest form the
training set.  Ranking at evaluation time is against 100 sampled negatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class ImplicitFeedbackDataset:
    """A train/validation/test split of an implicit-feedback matrix.

    Attributes
    ----------
    train:
        Training interactions (models must only see these).
    validation_items, test_items:
        Per-user held-out item id, or ``-1`` for users with too few
        interactions to hold anything out.
    name:
        Human-readable dataset name (benchmark preset or "custom").
    item_categories:
        Optional ground-truth item category labels (used by the Figure 7 /
        Table V case studies); ``None`` when unknown.
    """

    train: InteractionMatrix
    validation_items: np.ndarray
    test_items: np.ndarray
    name: str = "custom"
    item_categories: Optional[np.ndarray] = None
    user_facet_affinities: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def n_users(self) -> int:
        return self.train.n_users

    @property
    def n_items(self) -> int:
        return self.train.n_items

    def evaluable_users(self, split: str = "test") -> np.ndarray:
        """Users that have a held-out item in the requested split."""
        held = self._held(split)
        return np.flatnonzero(held >= 0)

    def held_out_item(self, user: int, split: str = "test") -> int:
        """The held-out item for ``user`` (-1 when absent)."""
        return int(self._held(split)[user])

    def _held(self, split: str) -> np.ndarray:
        if split == "test":
            return self.test_items
        if split in ("validation", "val", "dev"):
            return self.validation_items
        raise ValueError(f"unknown split {split!r}; expected 'test' or 'validation'")

    def statistics(self) -> Dict[str, float]:
        """Table-I style statistics of the full dataset (train + held out)."""
        stats = self.train.statistics()
        held = int((self.test_items >= 0).sum() + (self.validation_items >= 0).sum())
        stats["n_interactions"] = stats["n_interactions"] + held
        stats["density_percent"] = 100.0 * stats["n_interactions"] / (
            self.n_users * self.n_items
        )
        stats["name"] = self.name
        return stats


def train_validation_test_split(interactions: InteractionMatrix,
                                random_state: RandomState = None,
                                min_interactions: int = 3,
                                name: str = "custom",
                                item_categories: Optional[np.ndarray] = None,
                                user_facet_affinities: Optional[np.ndarray] = None,
                                ) -> ImplicitFeedbackDataset:
    """Leave-one-out split as used by the paper.

    For each user with at least ``min_interactions`` interactions, hold out
    the latest item (by timestamp when available, otherwise a random one) for
    testing and a second one for validation.  Users below the threshold keep
    all interactions in the training set and are skipped at evaluation time.

    Parameters
    ----------
    interactions:
        Full binary interaction matrix.
    random_state:
        Seed controlling the random held-out choice for timestamp-free data.
    min_interactions:
        Minimum number of interactions a user needs before items are held out
        (default 3: one train, one validation, one test).
    """
    rng = ensure_rng(random_state)
    n_users = interactions.n_users

    test_items = np.full(n_users, -1, dtype=np.int64)
    validation_items = np.full(n_users, -1, dtype=np.int64)
    removed: List[Tuple[int, int]] = []

    for user in range(n_users):
        items = interactions.items_of_user(user)
        if items.size < min_interactions:
            continue
        ordered = _order_for_holdout(interactions, user, items, rng)
        test_item = int(ordered[-1])
        validation_item = int(ordered[-2])
        test_items[user] = test_item
        validation_items[user] = validation_item
        removed.append((user, test_item))
        removed.append((user, validation_item))

    train = interactions.without_pairs(removed) if removed else interactions
    return ImplicitFeedbackDataset(
        train=train,
        validation_items=validation_items,
        test_items=test_items,
        name=name,
        item_categories=item_categories,
        user_facet_affinities=user_facet_affinities,
    )


def _order_for_holdout(interactions: InteractionMatrix, user: int,
                       items: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Order a user's items so that the last two entries are the hold-outs.

    With timestamps the order is chronological (most recent last, matching
    the paper); otherwise it is a random permutation.
    """
    if interactions.has_timestamps:
        stamps = np.array([
            interactions.timestamp_of(user, int(item)) or 0.0 for item in items
        ])
        return items[np.argsort(stamps, kind="stable")]
    return rng.permutation(items)
