"""Synthetic multi-facet implicit-feedback generator.

The original paper evaluates on six public datasets.  Those raw files are not
available in this offline environment, so this module generates synthetic
datasets that preserve the *structural* properties the paper's argument rests
on:

* every item belongs to one or more latent facets (categories);
* every user has a mixed affinity over facets (some users are focused, some
  eclectic) — the "multi-facet user preference";
* interactions are drawn facet-first: a user picks a facet according to their
  affinity, then an item according to the item's affinity within that facet
  and its overall popularity (a power-law);
* the resulting matrix is sparse and imbalanced, matching the density regime
  of Table I.

Because the ground-truth facet structure is known, the generator also powers
the Figure 7 / Table V-VI case studies (item categories, user facet mixes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.data.dataset import ImplicitFeedbackDataset, train_validation_test_split
from repro.data.interactions import InteractionMatrix
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_in_range, check_positive_int


def generate_event_stream(n_users: int = 200, n_items: int = 300,
                          n_events: int = 2000, *,
                          popularity_exponent: float = 0.8,
                          drift: float = 1.0,
                          cold_start_fraction: float = 0.2,
                          random_state: RandomState = None) -> List:
    """Sample a timestamped interaction stream with drifting item popularity.

    The stream drives the :mod:`repro.streaming` vertical end to end: it is
    timestamp-ordered (``timestamp = event index``), its item popularity
    profile *drifts* — two independently permuted power-law profiles are
    interpolated from stream start to stream end, so the head of the
    catalogue at ``t=0`` is mostly tail by the final event — and the active
    user/item prefixes grow over time, so a trainer draining it keeps
    encountering genuinely new ids (the cold-start path).

    Parameters
    ----------
    n_users, n_items:
        Final id ranges; early events are confined to a prefix of each.
    n_events:
        Stream length.
    popularity_exponent:
        Power-law exponent of both endpoint popularity profiles.
    drift:
        How far the popularity profile travels, in ``[0, 1]``: ``0`` keeps
        the start profile throughout, ``1`` interpolates all the way to the
        (independently permuted) end profile.
    cold_start_fraction:
        Fraction of each id range *not* yet active at stream start; the
        active prefixes grow linearly until the last event can touch every
        id.
    random_state:
        Seed; all draws go through :func:`~repro.utils.rng.ensure_rng`, so
        equal seeds produce bitwise-identical streams.

    Returns
    -------
    list of :class:`~repro.streaming.events.InteractionEvent`, in
    timestamp order.
    """
    from repro.streaming.events import InteractionEvent

    check_positive_int(n_users, "n_users")
    check_positive_int(n_items, "n_items")
    check_positive_int(n_events, "n_events")
    check_in_range(drift, "drift", 0.0, 1.0)
    check_in_range(cold_start_fraction, "cold_start_fraction", 0.0, 1.0)
    rng = ensure_rng(random_state)

    ranks = np.arange(1, n_items + 1, dtype=np.float64) ** (-popularity_exponent)
    start_profile = rng.permutation(ranks)
    end_profile = rng.permutation(ranks)

    start_users = max(1, int(round(n_users * (1.0 - cold_start_fraction))))
    start_items = max(1, int(round(n_items * (1.0 - cold_start_fraction))))

    events = []
    for step in range(n_events):
        progress = step / max(n_events - 1, 1)
        # Linearly growing active prefixes: the last event can reach
        # every id, the first only the warm-start prefix.
        active_users = start_users + int(round(progress * (n_users - start_users)))
        active_items = start_items + int(round(progress * (n_items - start_items)))
        profile = ((1.0 - drift * progress) * start_profile
                   + drift * progress * end_profile)[:active_items]
        probabilities = profile / profile.sum()
        user = int(rng.integers(0, active_users))
        item = int(rng.choice(active_items, p=probabilities))
        events.append(InteractionEvent(timestamp=float(step), user=user,
                                       item=item))
    return events


@dataclass
class SyntheticConfig:
    """Parameters of the multi-facet generator.

    Attributes
    ----------
    n_users, n_items:
        Matrix dimensions.
    n_facets:
        Number of latent facets (item categories / user interest groups).
    interactions_per_user:
        Average number of interactions per user (draws are without
        replacement per user, so the realised number can be slightly lower).
    facet_concentration:
        Dirichlet concentration of user facet affinities.  Small values make
        users focused on few facets; values ≥ 1 make them eclectic.
    item_facet_overlap:
        Probability that an item belongs to a second facet as well, which is
        what creates the cross-facet conflicts the paper motivates (a movie
        that is both romantic and comedy).
    popularity_exponent:
        Power-law exponent of item popularity within a facet.
    noise:
        Probability that an interaction ignores facets entirely (uniform
        random item), modelling the noisy part of implicit feedback.
    """

    n_users: int = 300
    n_items: int = 400
    n_facets: int = 4
    interactions_per_user: float = 20.0
    facet_concentration: float = 0.3
    item_facet_overlap: float = 0.25
    popularity_exponent: float = 0.8
    noise: float = 0.05
    with_timestamps: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.n_users, "n_users")
        check_positive_int(self.n_items, "n_items")
        check_positive_int(self.n_facets, "n_facets")
        check_in_range(self.interactions_per_user, "interactions_per_user", 1, 1e9)
        check_in_range(self.facet_concentration, "facet_concentration", 1e-6, 1e6)
        check_in_range(self.item_facet_overlap, "item_facet_overlap", 0.0, 1.0)
        check_in_range(self.noise, "noise", 0.0, 1.0)


class MultiFacetSyntheticGenerator:
    """Generate implicit-feedback datasets with planted multi-facet structure."""

    def __init__(self, config: Optional[SyntheticConfig] = None,
                 random_state: RandomState = None) -> None:
        self.config = config or SyntheticConfig()
        self._rng = ensure_rng(random_state)

    # ------------------------------------------------------------------ #
    def generate_interactions(self) -> Tuple[InteractionMatrix, np.ndarray, np.ndarray]:
        """Sample the raw interaction matrix.

        Returns
        -------
        interactions:
            The binary interaction matrix.
        item_categories:
            Primary facet id of every item, shape ``(n_items,)``.
        user_affinities:
            User facet-affinity mixture, shape ``(n_users, n_facets)``.
        """
        cfg = self.config
        rng = self._rng

        item_primary = rng.integers(0, cfg.n_facets, size=cfg.n_items)
        item_memberships = np.zeros((cfg.n_items, cfg.n_facets), dtype=bool)
        item_memberships[np.arange(cfg.n_items), item_primary] = True
        # Secondary facet memberships create the cross-facet conflicts.
        secondary_mask = rng.random(cfg.n_items) < cfg.item_facet_overlap
        secondary_facet = rng.integers(0, cfg.n_facets, size=cfg.n_items)
        item_memberships[np.arange(cfg.n_items)[secondary_mask],
                         secondary_facet[secondary_mask]] = True

        # Power-law item popularity (within-facet ranking).
        popularity = (np.arange(1, cfg.n_items + 1) ** (-cfg.popularity_exponent))
        popularity = rng.permutation(popularity)

        user_affinities = rng.dirichlet(
            np.full(cfg.n_facets, cfg.facet_concentration), size=cfg.n_users
        )

        # Per-facet item sampling distributions.
        facet_item_probs = []
        for facet in range(cfg.n_facets):
            weights = popularity * item_memberships[:, facet]
            total = weights.sum()
            if total <= 0:
                weights = popularity.copy()
                total = weights.sum()
            facet_item_probs.append(weights / total)
        facet_item_probs = np.stack(facet_item_probs, axis=0)
        uniform_probs = np.full(cfg.n_items, 1.0 / cfg.n_items)

        users, items, stamps = [], [], []
        for user in range(cfg.n_users):
            n_draws = max(1, rng.poisson(cfg.interactions_per_user))
            chosen = set()
            # Oversample a little to compensate for duplicate rejections.
            for _ in range(int(n_draws * 2)):
                if len(chosen) >= n_draws:
                    break
                if rng.random() < cfg.noise:
                    probs = uniform_probs
                else:
                    facet = rng.choice(cfg.n_facets, p=user_affinities[user])
                    probs = facet_item_probs[facet]
                item = int(rng.choice(cfg.n_items, p=probs))
                chosen.add(item)
            for order, item in enumerate(sorted(chosen, key=lambda _: rng.random())):
                users.append(user)
                items.append(item)
                stamps.append(float(order))

        timestamps = stamps if cfg.with_timestamps else None
        interactions = InteractionMatrix(
            cfg.n_users, cfg.n_items, users, items, timestamps=timestamps
        )
        return interactions, item_primary, user_affinities

    # ------------------------------------------------------------------ #
    def generate_dataset(self, name: str = "synthetic",
                         min_interactions: int = 3) -> ImplicitFeedbackDataset:
        """Sample interactions and apply the leave-one-out split."""
        interactions, item_categories, user_affinities = self.generate_interactions()
        return train_validation_test_split(
            interactions,
            random_state=self._rng,
            min_interactions=min_interactions,
            name=name,
            item_categories=item_categories,
            user_facet_affinities=user_affinities,
        )
