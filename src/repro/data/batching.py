"""Triplet batch construction for pairwise-ranking training.

A training batch is a set of ``(user, positive item, negative item)`` triplets
built by (1) sampling users — uniformly or frequency-biased per Eq. 10 —
(2) sampling one of their interacted items as the positive, and (3) sampling a
negative item they have not interacted with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.data.negative_sampling import FrequencyBiasedUserSampler, UniformNegativeSampler
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class TripletBatch:
    """A batch of training triplets (parallel index arrays).

    ``users`` and ``positives`` have shape ``(B,)``.  ``negatives`` is
    ``(B,)`` for classic single-negative triplets, or a ``(B, N)`` block
    when the batcher draws ``n_negatives = N > 1`` negatives per positive
    (row ``b`` holds the negatives of ``users[b]``).
    """

    users: np.ndarray
    positives: np.ndarray
    negatives: np.ndarray

    def __len__(self) -> int:
        return len(self.users)

    @property
    def n_negatives(self) -> int:
        """Negatives per positive (columns of the negative block)."""
        return 1 if self.negatives.ndim == 1 else self.negatives.shape[1]


class TripletBatcher:
    """Iterate over triplet batches for one training epoch.

    Parameters
    ----------
    interactions:
        Training interaction matrix.
    batch_size:
        Number of triplets per batch (the paper uses 1000; scaled presets use
        a few hundred).
    n_negatives:
        Negatives per positive.  The main MARS objective uses 1 (negatives
        of shape ``(B,)``); values > 1 emit a ``(B, N)`` negative block per
        batch, each row sampled for that row's user, for the multi-negative
        push reductions of the fused/autograd training engines.
    user_sampling:
        ``"frequency"`` for Eq. 10 (default, with ``beta``), ``"uniform"`` to
        sample uniformly among observed interactions.
    user_subset:
        Optional array of user ids restricting the batcher to one disjoint
        shard of the user population: users are drawn only from the subset
        (conditional form of the configured ``user_sampling`` distribution),
        and an epoch covers ≈ the subset's interactions instead of the whole
        matrix, so the shard epochs of the sharded training executor sum to
        one serial epoch.  ``None`` (default) keeps the full population.
    random_state:
        Seed or :class:`numpy.random.Generator` driving every draw of this
        batcher; sharded training hands each shard's batcher an independent
        spawned stream (:func:`repro.utils.rng.spawn_generators`).
    """

    def __init__(self, interactions: InteractionMatrix, batch_size: int = 256,
                 n_negatives: int = 1, user_sampling: str = "frequency",
                 beta: float = 0.8, user_subset: Optional[np.ndarray] = None,
                 random_state: RandomState = None) -> None:
        self.interactions = interactions
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.n_negatives = check_positive_int(n_negatives, "n_negatives")
        if user_sampling not in ("frequency", "uniform"):
            raise ValueError("user_sampling must be 'frequency' or 'uniform'")
        self.user_sampling = user_sampling
        self.beta = beta

        if user_subset is not None:
            subset = np.unique(np.asarray(user_subset, dtype=np.int64))
            if subset.size == 0:
                raise ValueError("user_subset must not be empty")
            if subset[0] < 0 or subset[-1] >= interactions.n_users:
                raise ValueError(
                    f"user_subset ids must be in [0, {interactions.n_users}), "
                    f"got range [{subset[0]}, {subset[-1]}]")
            self.user_subset: Optional[np.ndarray] = subset
        else:
            self.user_subset = None

        self._rng = ensure_rng(random_state)
        self._seen_version = interactions.version
        self._snapshot()

    def _snapshot(self) -> None:
        """(Re)build every per-matrix view this batcher samples from.

        Called at construction and again whenever the interaction matrix's
        :attr:`~repro.data.interactions.InteractionMatrix.version` moves
        (streaming ingestion appends in place).  The batcher's own RNG
        stream is threaded through unchanged, so refreshing never perturbs
        the draw sequence of an unmutated matrix.
        """
        interactions = self.interactions
        degrees = interactions.user_degrees()
        active = np.flatnonzero(degrees > 0)
        if self.user_subset is not None:
            active = np.intersect1d(active, self.user_subset, assume_unique=True)
        self._active_users = active
        if self._active_users.size == 0:
            raise ValueError("no users with interactions"
                             + (" in user_subset" if self.user_subset is not None else ""))
        # Interactions an epoch should cover: the subset's share when
        # sharded, every observed interaction otherwise.
        self._epoch_interactions = (
            int(degrees[self._active_users].sum()) if self.user_subset is not None
            else interactions.n_interactions)

        self._negative_sampler = UniformNegativeSampler(interactions, random_state=self._rng)
        self._user_sampler: Optional[FrequencyBiasedUserSampler] = None
        if self.user_sampling == "frequency":
            self._user_sampler = FrequencyBiasedUserSampler(
                interactions, beta=self.beta, random_state=self._rng,
                user_subset=self._active_users if self.user_subset is not None else None,
            )
        # CSR-style positive lists — the interaction matrix's own indptr /
        # indices arrays — so positive sampling is a single vectorised
        # random-offset gather instead of a Python loop over per-user arrays.
        matrix = interactions.csr()
        self._positive_counts = degrees
        self._positive_offsets = matrix.indptr.astype(np.int64)
        self._positive_items = matrix.indices.astype(np.int64)

    def _refresh_if_stale(self) -> None:
        if self.interactions.version != self._seen_version:
            self._snapshot()
            self._seen_version = self.interactions.version

    # ------------------------------------------------------------------ #
    def n_batches_per_epoch(self) -> int:
        """Number of batches so that one epoch sees ≈ every interaction once.

        Each batch carries ``batch_size`` positives regardless of
        ``n_negatives`` (extra negatives widen the block instead of
        repeating pairs), so the epoch length depends only on the number of
        observed interactions — those of ``user_subset`` when the batcher is
        restricted to a shard, all of them otherwise.
        """
        return max(1, int(np.ceil(self._epoch_interactions / self.batch_size)))

    def _sample_users(self, size: int) -> np.ndarray:
        if self._user_sampler is not None:
            return self._user_sampler.sample(size)
        return self._rng.choice(self._active_users, size=size)

    def sample_batch(self, batch_size: Optional[int] = None) -> TripletBatch:
        """Draw a single triplet batch.

        ``batch_size`` overrides the configured size for this draw only; it
        must be a positive integer when given.
        """
        self._refresh_if_stale()
        if batch_size is None:
            size = self.batch_size
        else:
            size = check_positive_int(batch_size, "batch_size")
        users = self._sample_users(size)
        # Sampled users always have at least one interaction, so the random
        # offsets into each user's CSR slice are well defined.
        offsets = self._rng.integers(0, self._positive_counts[users])
        positives = self._positive_items[self._positive_offsets[users] + offsets]
        if self.n_negatives == 1:
            negatives = self._negative_sampler.sample_batch(users)
        else:
            # One vectorised rejection pass over the repeated user column
            # keeps the per-user guarantee (no observed interaction ever
            # lands in a user's negative block) at any block width.
            negatives = self._negative_sampler.sample_batch(
                np.repeat(users, self.n_negatives)
            ).reshape(size, self.n_negatives)
        return TripletBatch(users=users.astype(np.int64), positives=positives,
                            negatives=negatives)

    def epoch(self) -> Iterator[TripletBatch]:
        """Yield the batches of one epoch."""
        self._refresh_if_stale()
        for _ in range(self.n_batches_per_epoch()):
            yield self.sample_batch()
