"""Sparse implicit-feedback interaction matrix.

The :class:`InteractionMatrix` is the common currency between data loaders,
samplers, models and the evaluation protocol.  It wraps a SciPy CSR matrix of
binary interactions and exposes the statistics the paper relies on: user and
item degrees, density (Table I), the per-user item sets, and the two-hop
neighbourhood sizes that drive the adaptive margins of Eq. 7.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.utils.validation import check_positive_int


class InteractionMatrix:
    """Binary user-item interaction matrix with recommendation-centric helpers.

    Parameters
    ----------
    n_users, n_items:
        Matrix dimensions.
    user_indices, item_indices:
        Parallel arrays of interaction coordinates.  Duplicates are merged.
    timestamps:
        Optional per-interaction timestamps (used by the leave-one-out split
        to hold out each user's most recent item, as in the paper).
    """

    def __init__(self, n_users: int, n_items: int,
                 user_indices: Sequence[int], item_indices: Sequence[int],
                 timestamps: Optional[Sequence[float]] = None) -> None:
        self.n_users = check_positive_int(n_users, "n_users")
        self.n_items = check_positive_int(n_items, "n_items")

        users = np.asarray(user_indices, dtype=np.int64)
        items = np.asarray(item_indices, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("user_indices and item_indices must have equal length")
        if users.size and (users.min() < 0 or users.max() >= n_users):
            raise ValueError("user index out of range")
        if items.size and (items.min() < 0 or items.max() >= n_items):
            raise ValueError("item index out of range")

        data = np.ones(users.size, dtype=np.float64)
        matrix = sparse.coo_matrix((data, (users, items)), shape=(n_users, n_items))
        matrix = matrix.tocsr()
        matrix.data[:] = 1.0  # merge duplicates into binary entries
        matrix.eliminate_zeros()
        self._matrix = matrix
        self._version = 0

        self._timestamps: Dict[Tuple[int, int], float] = {}
        if timestamps is not None:
            stamps = np.asarray(timestamps, dtype=np.float64)
            if stamps.shape != users.shape:
                raise ValueError("timestamps must align with the interaction arrays")
            for u, i, t in zip(users, items, stamps):
                key = (int(u), int(i))
                # Keep the most recent timestamp for duplicated interactions.
                if key not in self._timestamps or t > self._timestamps[key]:
                    self._timestamps[key] = float(t)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]], n_users: Optional[int] = None,
                   n_items: Optional[int] = None) -> "InteractionMatrix":
        """Build a matrix from an iterable of ``(user, item)`` pairs."""
        pairs = list(pairs)
        if not pairs:
            raise ValueError("cannot build an InteractionMatrix from zero interactions")
        users = [int(u) for u, _ in pairs]
        items = [int(i) for _, i in pairs]
        n_users = n_users if n_users is not None else max(users) + 1
        n_items = n_items if n_items is not None else max(items) + 1
        return cls(n_users, n_items, users, items)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "InteractionMatrix":
        """Build a matrix from a dense 0/1 array (mostly for tests)."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("dense interaction array must be 2-D")
        users, items = np.nonzero(dense)
        return cls(dense.shape[0], dense.shape[1], users, items)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_users, self.n_items)

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every observable in-place change.

        Consumers that snapshot derived state (samplers, batchers, cached
        seen-masks) record the version they were built against and
        re-snapshot when it moves; a matrix that was never mutated always
        reports version 0.
        """
        return self._version

    @property
    def n_interactions(self) -> int:
        """Number of distinct (user, item) interactions."""
        return int(self._matrix.nnz)

    @property
    def density(self) -> float:
        """Fraction of the user-item matrix that is observed (Table I)."""
        return self.n_interactions / float(self.n_users * self.n_items)

    def csr(self) -> sparse.csr_matrix:
        """Return the underlying CSR matrix (do not mutate)."""
        return self._matrix

    def toarray(self) -> np.ndarray:
        """Densify (only sensible for small matrices / tests)."""
        return self._matrix.toarray()

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        user, item = pair
        return bool(self._matrix[user, item] != 0)

    # ------------------------------------------------------------------ #
    # per-user / per-item views
    # ------------------------------------------------------------------ #
    def items_of_user(self, user: int) -> np.ndarray:
        """Item ids the user interacted with (sorted ascending)."""
        return self._matrix.indices[
            self._matrix.indptr[user]:self._matrix.indptr[user + 1]
        ].copy()

    def users_of_item(self, item: int) -> np.ndarray:
        """User ids that interacted with the item."""
        csc = self._csc()
        return csc.indices[csc.indptr[item]:csc.indptr[item + 1]].copy()

    def _csc(self) -> sparse.csc_matrix:
        if not hasattr(self, "_csc_cache"):
            self._csc_cache = self._matrix.tocsc()
        return self._csc_cache

    def encoded_positive_keys(self) -> np.ndarray:
        """Sorted ``user * n_items + item`` keys of every interaction (cached).

        One ``searchsorted`` over this array answers a batched
        "is this (user, item) pair observed?" query; the negative samplers
        use it for vectorised rejection sampling.  Cached on the matrix (do
        not mutate) so every sampler built on it — one per shard under
        sharded training — shares a single ``O(nnz)`` index instead of each
        re-sorting its own copy.
        """
        if not hasattr(self, "_positive_keys_cache"):
            user_ids = np.repeat(np.arange(self.n_users, dtype=np.int64),
                                 np.diff(self._matrix.indptr))
            self._positive_keys_cache = np.sort(
                user_ids * self.n_items + self._matrix.indices.astype(np.int64)
            )
        return self._positive_keys_cache

    def user_degrees(self) -> np.ndarray:
        """Number of interactions per user, shape ``(n_users,)``."""
        return np.diff(self._matrix.indptr).astype(np.int64)

    def item_degrees(self) -> np.ndarray:
        """Number of interactions per item, shape ``(n_items,)``."""
        return np.asarray(self._matrix.sum(axis=0)).ravel().astype(np.int64)

    def timestamp_of(self, user: int, item: int) -> Optional[float]:
        """Timestamp of an interaction, or ``None`` when not recorded."""
        return self._timestamps.get((int(user), int(item)))

    @property
    def has_timestamps(self) -> bool:
        return bool(self._timestamps)

    # ------------------------------------------------------------------ #
    # derived quantities used by the paper
    # ------------------------------------------------------------------ #
    def two_hop_neighbourhood_sizes(self) -> np.ndarray:
        """For each user, the summed degree of the items they interacted with.

        This is the quantity ``Σ_{v ∈ V_u} |U_v|`` of Eq. 7, from which the
        adaptive margin γ_u is derived.
        """
        item_deg = self.item_degrees().astype(np.float64)
        return np.asarray(self._matrix @ item_deg).ravel()

    def positive_pairs(self) -> np.ndarray:
        """All positive pairs as an array of shape ``(n_interactions, 2)``."""
        coo = self._matrix.tocoo()
        return np.stack([coo.row.astype(np.int64), coo.col.astype(np.int64)], axis=1)

    def statistics(self) -> Dict[str, float]:
        """Summary statistics matching the columns of the paper's Table I."""
        return {
            "n_users": self.n_users,
            "n_items": self.n_items,
            "n_interactions": self.n_interactions,
            "density_percent": 100.0 * self.density,
            "mean_user_degree": float(self.user_degrees().mean()),
            "mean_item_degree": float(self.item_degrees().mean()),
        }

    # ------------------------------------------------------------------ #
    # editing
    # ------------------------------------------------------------------ #
    def append_interactions(self, user_indices: Sequence[int],
                            item_indices: Sequence[int],
                            timestamps: Optional[Sequence[float]] = None, *,
                            n_users: Optional[int] = None,
                            n_items: Optional[int] = None) -> int:
        """Append interactions in place, growing the matrix when needed.

        Parameters
        ----------
        user_indices, item_indices:
            Parallel coordinate arrays of the new interactions.  Ids beyond
            the current shape grow the matrix (new rows/columns start with
            no other interactions).
        timestamps:
            Optional per-interaction timestamps; for duplicated pairs the
            most recent timestamp wins, matching the constructor.
        n_users, n_items:
            Optional explicit new dimensions (must not shrink).  Useful to
            pre-announce ids that have no interactions yet.

        Returns
        -------
        int
            The number of *newly observed* distinct ``(user, item)`` pairs
            (duplicates of existing interactions count zero).

        Notes
        -----
        The cached sorted pair-key index from :meth:`encoded_positive_keys`
        is refreshed *incrementally* — the new keys are merged into the
        existing sorted array in ``O(nnz)`` without a full re-sort — unless
        ``n_items`` changes, which alters the key encoding and forces a
        rebuild on next access.  All other derived caches are invalidated
        and the :attr:`version` counter is bumped so snapshotting consumers
        can detect the mutation.
        """
        users = np.asarray(user_indices, dtype=np.int64)
        items = np.asarray(item_indices, dtype=np.int64)
        if users.shape != items.shape or users.ndim != 1:
            raise ValueError("user_indices and item_indices must be equal-length 1-D arrays")
        if users.size and (users.min() < 0 or items.min() < 0):
            raise ValueError("interaction indices must be non-negative")

        new_n_users = self.n_users if n_users is None else check_positive_int(n_users, "n_users")
        new_n_items = self.n_items if n_items is None else check_positive_int(n_items, "n_items")
        if new_n_users < self.n_users or new_n_items < self.n_items:
            raise ValueError("append_interactions cannot shrink the matrix")
        if users.size:
            new_n_users = max(new_n_users, int(users.max()) + 1)
            new_n_items = max(new_n_items, int(items.max()) + 1)
        if users.size == 0 and new_n_users == self.n_users and new_n_items == self.n_items:
            return 0

        stamps = None
        if timestamps is not None:
            stamps = np.asarray(timestamps, dtype=np.float64)
            if stamps.shape != users.shape:
                raise ValueError("timestamps must align with the interaction arrays")

        # Incrementally merge the sorted pair-key cache while the old key
        # encoding (user * n_items + item) is still valid.  Growing n_users
        # keeps the encoding; growing n_items does not.
        keys_valid = hasattr(self, "_positive_keys_cache") and new_n_items == self.n_items
        if keys_valid and users.size:
            old_keys = self._positive_keys_cache
            fresh = np.unique(users * np.int64(self.n_items) + items)
            if old_keys.size:
                positions = np.searchsorted(old_keys, fresh)
                present = positions < old_keys.size
                present[present] = old_keys[positions[present]] == fresh[present]
            else:
                positions = np.zeros(fresh.size, dtype=np.int64)
                present = np.zeros(fresh.size, dtype=bool)
            fresh = fresh[~present]
            positions = positions[~present]
            merged = np.empty(old_keys.size + fresh.size, dtype=np.int64)
            insert_at = positions + np.arange(fresh.size, dtype=np.int64)
            is_new = np.zeros(merged.size, dtype=bool)
            is_new[insert_at] = True
            merged[is_new] = fresh
            merged[~is_new] = old_keys
            self._positive_keys_cache = merged
        elif hasattr(self, "_positive_keys_cache") and new_n_items != self.n_items:
            del self._positive_keys_cache

        old_nnz = int(self._matrix.nnz)
        coo = self._matrix.tocoo()
        all_users = np.concatenate([coo.row.astype(np.int64), users])
        all_items = np.concatenate([coo.col.astype(np.int64), items])
        data = np.ones(all_users.size, dtype=np.float64)
        matrix = sparse.coo_matrix((data, (all_users, all_items)),
                                   shape=(new_n_users, new_n_items)).tocsr()
        matrix.data[:] = 1.0
        matrix.eliminate_zeros()
        self._matrix = matrix
        self.n_users = int(new_n_users)
        self.n_items = int(new_n_items)

        if stamps is not None:
            for u, i, t in zip(users, items, stamps):
                key = (int(u), int(i))
                if key not in self._timestamps or t > self._timestamps[key]:
                    self._timestamps[key] = float(t)

        if hasattr(self, "_csc_cache"):
            del self._csc_cache
        self._version += 1
        return int(self._matrix.nnz) - old_nnz

    def without_pairs(self, pairs: Iterable[Tuple[int, int]]) -> "InteractionMatrix":
        """Return a copy with the given ``(user, item)`` pairs removed."""
        remove = {(int(u), int(i)) for u, i in pairs}
        kept: List[Tuple[int, int]] = [
            (int(u), int(i)) for u, i in self.positive_pairs()
            if (int(u), int(i)) not in remove
        ]
        if not kept:
            raise ValueError("removing these pairs would empty the interaction matrix")
        users = [u for u, _ in kept]
        items = [i for _, i in kept]
        stamps = None
        if self._timestamps:
            stamps = [self._timestamps.get((u, i), 0.0) for u, i in kept]
        return InteractionMatrix(self.n_users, self.n_items, users, items, timestamps=stamps)
