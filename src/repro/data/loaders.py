"""Benchmark dataset presets and raw-file loaders.

The paper evaluates on six public datasets (Table I).  This module defines a
preset for each of them that mirrors its user/item/interaction *shape*
(relative size, density, facet richness) at a CPU-tractable scale, backed by
the multi-facet synthetic generator.  When the original raw files are placed
under a data directory, :func:`load_interactions_csv` can read them instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.dataset import ImplicitFeedbackDataset, train_validation_test_split
from repro.data.interactions import InteractionMatrix
from repro.data.synthetic import MultiFacetSyntheticGenerator, SyntheticConfig
from repro.utils.rng import RandomState, ensure_rng

PathLike = Union[str, Path]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one benchmark preset.

    ``paper_*`` fields record the statistics from Table I of the paper;
    ``config`` holds the scaled-down synthetic stand-in sampled when the real
    files are unavailable.
    """

    name: str
    paper_n_users: int
    paper_n_items: int
    paper_n_interactions: int
    paper_density_percent: float
    config: SyntheticConfig


def _spec(name: str, paper_users: int, paper_items: int, paper_interactions: int,
          paper_density: float, n_users: int, n_items: int, per_user: float,
          n_facets: int, concentration: float, overlap: float) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        paper_n_users=paper_users,
        paper_n_items=paper_items,
        paper_n_interactions=paper_interactions,
        paper_density_percent=paper_density,
        config=SyntheticConfig(
            n_users=n_users,
            n_items=n_items,
            n_facets=n_facets,
            interactions_per_user=per_user,
            facet_concentration=concentration,
            item_facet_overlap=overlap,
        ),
    )


#: Scaled-down presets mirroring Table I.  Interaction density decreases from
#: ML-1M (dense) through Delicious/Lastfm to Ciao/BookX (sparse), and the
#: facet structure is richer for the datasets on which the paper reports the
#: largest multi-facet gains (Delicious, Ciao, BookX).
BENCHMARK_PRESETS: Dict[str, DatasetSpec] = {
    "delicious": _spec("delicious", 1_000, 1_000, 8_000, 0.61,
                       n_users=240, n_items=300, per_user=14.0,
                       n_facets=4, concentration=0.25, overlap=0.30),
    "lastfm": _spec("lastfm", 2_000, 175_000, 92_000, 0.28,
                    n_users=260, n_items=500, per_user=12.0,
                    n_facets=4, concentration=0.30, overlap=0.25),
    "ciao": _spec("ciao", 7_000, 11_000, 147_000, 0.19,
                  n_users=280, n_items=450, per_user=9.0,
                  n_facets=5, concentration=0.20, overlap=0.35),
    "bookx": _spec("bookx", 20_000, 40_000, 605_000, 0.08,
                   n_users=320, n_items=600, per_user=8.0,
                   n_facets=5, concentration=0.22, overlap=0.30),
    "ml-1m": _spec("ml-1m", 6_000, 4_000, 1_000_000, 4.52,
                   n_users=240, n_items=220, per_user=35.0,
                   n_facets=3, concentration=0.60, overlap=0.20),
    "ml-20m": _spec("ml-20m", 62_000, 27_000, 17_000_000, 1.02,
                    n_users=320, n_items=380, per_user=22.0,
                    n_facets=4, concentration=0.50, overlap=0.20),
}


def list_benchmarks() -> List[str]:
    """Names of the available benchmark presets, in the paper's order."""
    return list(BENCHMARK_PRESETS)


def load_benchmark(name: str, random_state: RandomState = 0,
                   data_dir: Optional[PathLike] = None,
                   min_interactions: int = 3) -> ImplicitFeedbackDataset:
    """Load a benchmark dataset by preset name.

    If ``data_dir`` contains a file named ``<name>.csv`` (or ``.tsv``) with
    ``user,item[,timestamp]`` rows, the real data is loaded.  Otherwise the
    scaled synthetic stand-in is generated deterministically from
    ``random_state``.

    Parameters
    ----------
    name:
        One of :func:`list_benchmarks`.
    random_state:
        Seed for the synthetic generator and the leave-one-out split.
    data_dir:
        Optional directory with the original raw interaction files.
    """
    key = name.lower()
    if key not in BENCHMARK_PRESETS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(list_benchmarks())}"
        )
    spec = BENCHMARK_PRESETS[key]

    if data_dir is not None:
        path = _find_raw_file(Path(data_dir), key)
        if path is not None:
            interactions = load_interactions_csv(path)
            return train_validation_test_split(
                interactions, random_state=random_state,
                min_interactions=min_interactions, name=key,
            )

    generator = MultiFacetSyntheticGenerator(spec.config, random_state=random_state)
    return generator.generate_dataset(name=key, min_interactions=min_interactions)


def _find_raw_file(directory: Path, name: str) -> Optional[Path]:
    for suffix in (".csv", ".tsv", ".txt"):
        candidate = directory / f"{name}{suffix}"
        if candidate.exists():
            return candidate
    return None


def load_interactions_csv(path: PathLike, delimiter: Optional[str] = None,
                          skip_header: bool = False) -> InteractionMatrix:
    """Load a ``user,item[,rating][,timestamp]`` interaction file.

    User and item identifiers may be arbitrary strings or integers; they are
    reindexed to contiguous ids.  A third numeric column is interpreted as a
    rating and ignored (implicit feedback), a fourth as a timestamp.  Files
    with exactly three columns where the third looks like a timestamp (large
    values) are treated as ``user,item,timestamp``.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such interaction file: {path}")
    if delimiter is None:
        delimiter = "\t" if path.suffix == ".tsv" else ","

    users_raw: List[str] = []
    items_raw: List[str] = []
    extras: List[List[float]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            if skip_header and line_number == 0:
                continue
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = [part.strip() for part in line.split(delimiter)]
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_number + 1}: expected at least two columns")
            users_raw.append(parts[0])
            items_raw.append(parts[1])
            extras.append([float(p) for p in parts[2:4] if _is_number(p)])

    user_ids, user_index = np.unique(users_raw, return_inverse=True)
    item_ids, item_index = np.unique(items_raw, return_inverse=True)

    timestamps = _extract_timestamps(extras)
    return InteractionMatrix(
        n_users=len(user_ids),
        n_items=len(item_ids),
        user_indices=user_index,
        item_indices=item_index,
        timestamps=timestamps,
    )


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def _extract_timestamps(extras: Sequence[Sequence[float]]) -> Optional[List[float]]:
    """Pick the timestamp column out of the extra numeric columns, if any."""
    if not extras or not any(extras):
        return None
    n_cols = max(len(row) for row in extras)
    if n_cols == 0:
        return None
    if n_cols >= 2:
        column = [row[1] if len(row) > 1 else 0.0 for row in extras]
        return column
    # Single extra column: treat as timestamp only if values look like epochs
    # or ordered counters rather than 1-5 star ratings.
    column = [row[0] if row else 0.0 for row in extras]
    if max(column) > 100.0:
        return column
    return None
