"""Reverse-mode automatic differentiation over NumPy arrays.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it in a dynamic computation graph.  Calling :meth:`Tensor.backward`
on a scalar result propagates gradients to every tensor created with
``requires_grad=True``.

The operation set is intentionally small: it covers exactly what the
recommender models in this repository need (embedding gathers, linear
projections, distance/cosine computations, hinge losses and softmax
weighting), while remaining easy to verify with finite differences.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the computation graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    NumPy broadcasting can expand operands along new leading axes or along
    axes of size one; the corresponding gradient must be summed back over
    those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over broadcast (size-1) dimensions.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray with an attached gradient and backward function.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._op: str = "leaf"

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    @staticmethod
    def _raise_item() -> float:
        raise ValueError("item() is only valid for single-element tensors")

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Tensor(shape={self.shape}, op={self._op}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _promote(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make_child(self, data: np.ndarray, parents: Tuple["Tensor", ...],
                    backward: Callable[[np.ndarray], None], op: str) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        child = Tensor(data, requires_grad=False)
        child.requires_grad = requires
        if requires:
            child._backward = backward
            child._parents = parents
            child._op = op
        return child

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._promote(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make_child(out_data, (self, other), backward, "add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make_child(out_data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._promote(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return self._make_child(out_data, (self, other), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._promote(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._promote(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make_child(out_data, (self, other), backward, "mul")

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._promote(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
            )

        return self._make_child(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._promote(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_child(out_data, (self,), backward, "pow")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._promote(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim else grad * other.data)
                else:
                    self._accumulate(_unbroadcast(grad @ other.data.swapaxes(-1, -2), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if grad.ndim else self.data * grad)
                else:
                    other._accumulate(_unbroadcast(self.data.swapaxes(-1, -2) @ grad, other.shape))

        return self._make_child(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.shape).copy())
                return
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make_child(out_data, (self,), backward, "sum")

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Maximum along ``axis``, routing the gradient to the first maximum.

        The subgradient convention matches ``np.argmax``: when several
        elements tie for the maximum, only the first one (lowest index)
        receives the upstream gradient.  This is the convention the fused
        engine's hardest-negative reduction uses, so the two paths agree
        exactly at ties.
        """
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if axis is None:
            flat_index = int(self.data.argmax())

            def backward(grad: np.ndarray) -> None:
                full = np.zeros_like(self.data)
                full.reshape(-1)[flat_index] = np.asarray(grad).reshape(-1)[0]
                self._accumulate(full)

            return self._make_child(out_data, (self,), backward, "max")

        argmax = np.expand_dims(self.data.argmax(axis=axis), axis=axis)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            full = np.zeros_like(self.data)
            np.put_along_axis(full, argmax, g, axis=axis)
            self._accumulate(full)

        return self._make_child(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make_child(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make_child(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return self._make_child(out_data, (self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make_child(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_child(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_child(out_data, (self,), backward, "relu")

    def clip_min(self, minimum: float) -> "Tensor":
        """Elementwise ``max(x, minimum)`` with a sub-gradient at the kink."""
        mask = self.data > minimum
        out_data = np.maximum(self.data, minimum)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_child(out_data, (self,), backward, "clip_min")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make_child(out_data, (self,), backward, "abs")

    # ------------------------------------------------------------------ #
    # shape manipulation and indexing
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make_child(out_data, (self,), backward, "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make_child(out_data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows ``self[indices]`` with scatter-add on the backward pass.

        This is the embedding-lookup primitive: ``indices`` is an integer
        array of arbitrary shape, and the result has shape
        ``indices.shape + self.shape[1:]``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, indices, grad)
            self._accumulate(full)

        return self._make_child(out_data, (self,), backward, "gather_rows")

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return self._make_child(out_data, (self,), backward, "getitem")

    # ------------------------------------------------------------------ #
    # combination
    # ------------------------------------------------------------------ #
    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._promote(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(np.squeeze(piece, axis=axis))

        parent = tensors[0]
        return parent._make_child(out_data, tuple(tensors), backward, "stack")

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._promote(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum(sizes)[:-1]

        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, offsets, axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(piece)

        parent = tensors[0]
        return parent._make_child(out_data, tuple(tensors), backward, "concat")

    # ------------------------------------------------------------------ #
    # backward
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1`` and therefore requires the
            tensor to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient "
                                   "requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)

        # Intermediate (non-leaf) gradients are scratch space for this pass;
        # clear them so repeated backward calls on overlapping graphs do not
        # double-count.  Leaf gradients accumulate across calls, matching the
        # usual deep-learning framework semantics.
        for node in topo:
            if node._parents:
                node.grad = None

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
