"""Parameter initialisers.

Each initialiser returns a plain ``numpy.ndarray``; callers wrap the result in
a :class:`~repro.autograd.module.Parameter`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


def normal(shape: Tuple[int, ...], std: float = 0.01,
           random_state: RandomState = None) -> np.ndarray:
    """Zero-mean Gaussian initialisation with standard deviation ``std``."""
    rng = ensure_rng(random_state)
    return rng.normal(0.0, std, size=shape)


def uniform(shape: Tuple[int, ...], low: float = -0.05, high: float = 0.05,
            random_state: RandomState = None) -> np.ndarray:
    """Uniform initialisation on ``[low, high)``."""
    rng = ensure_rng(random_state)
    return rng.uniform(low, high, size=shape)


def xavier_uniform(shape: Tuple[int, ...], gain: float = 1.0,
                   random_state: RandomState = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    rng = ensure_rng(random_state)
    fan_in = shape[0] if len(shape) > 0 else 1
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], gain: float = 1.0,
                  random_state: RandomState = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation for weight matrices."""
    rng = ensure_rng(random_state)
    fan_in = shape[0] if len(shape) > 0 else 1
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def spherical(shape: Tuple[int, ...], random_state: RandomState = None) -> np.ndarray:
    """Rows drawn uniformly from the unit hypersphere.

    Used to initialise MARS embeddings so that the strict spherical
    constraint ‖x‖ = 1 holds from the very first step.
    """
    rng = ensure_rng(random_state)
    samples = rng.normal(0.0, 1.0, size=shape)
    norms = np.linalg.norm(samples, axis=-1, keepdims=True)
    norms = np.maximum(norms, 1e-12)
    return samples / norms


def identity_stack(n_matrices: int, dim: int, noise: float = 0.01,
                   random_state: RandomState = None) -> np.ndarray:
    """A stack of near-identity ``dim × dim`` matrices.

    Used to initialise the facet projection matrices Φ and Ψ so that the
    facet spaces start close to the universal space and diverge during
    training (driven by the facet-separating loss).
    """
    rng = ensure_rng(random_state)
    stack = np.tile(np.eye(dim), (n_matrices, 1, 1))
    if noise > 0:
        stack = stack + rng.normal(0.0, noise, size=stack.shape)
    return stack
