"""Composite differentiable operations built on :class:`~repro.autograd.tensor.Tensor`.

These functions are the vocabulary shared by all recommender models in the
repository: softmax facet weighting, cosine and Euclidean facet similarities,
hinge losses with (possibly per-example) margins, and the usual neural-network
activations.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd.tensor import Tensor

ArrayOrTensor = Union[np.ndarray, Tensor, float, int]

_EPS = 1e-12


def as_tensor(value: ArrayOrTensor) -> Tensor:
    """Promote ``value`` to a :class:`Tensor` (no-op for tensors)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``."""
    x = as_tensor(x)
    # log(1 + exp(x)) = max(x, 0) + log(1 + exp(-|x|))
    return x.clip_min(0.0) + ((x.abs() * -1.0).exp() + 1.0).log()


def log_sigmoid(x: Tensor) -> Tensor:
    """``log(sigmoid(x))`` computed without overflow."""
    return softplus(as_tensor(x) * -1.0) * -1.0


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with the usual max-shift for stability."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """``log(sum(exp(x)))`` along ``axis`` with the max-shift trick."""
    x = as_tensor(x)
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    out = ((x - shift).exp().sum(axis=axis, keepdims=True)).log() + shift
    if not keepdims:
        new_shape = list(out.shape)
        del new_shape[axis % out.ndim]
        out = out.reshape(tuple(new_shape))
    return out


def squared_norm(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Sum of squares along ``axis``."""
    x = as_tensor(x)
    return (x * x).sum(axis=axis, keepdims=keepdims)


def norm(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """L2 norm along ``axis``, floored at a small epsilon for stability."""
    return (squared_norm(x, axis=axis, keepdims=keepdims) + _EPS).sqrt()


def normalize(x: Tensor, axis: int = -1) -> Tensor:
    """Project vectors onto the unit sphere along ``axis``."""
    x = as_tensor(x)
    return x / norm(x, axis=axis, keepdims=True)


def squared_euclidean(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Squared Euclidean distance ``‖a - b‖²`` along ``axis``."""
    diff = as_tensor(a) - as_tensor(b)
    return squared_norm(diff, axis=axis)


def euclidean(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Euclidean distance ``‖a - b‖`` along ``axis``."""
    return (squared_euclidean(a, b, axis=axis) + _EPS).sqrt()


def dot(a: Tensor, b: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Inner product along ``axis``."""
    return (as_tensor(a) * as_tensor(b)).sum(axis=axis, keepdims=keepdims)


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Cosine of the angle between ``a`` and ``b`` along ``axis``.

    This is the facet-specific similarity of MARS (paper Eq. 13).
    """
    a = as_tensor(a)
    b = as_tensor(b)
    return dot(a, b, axis=axis) / (norm(a, axis=axis) * norm(b, axis=axis))


def hinge(x: Tensor) -> Tensor:
    """``max(x, 0)`` — the positive part used by large-margin losses."""
    return as_tensor(x).clip_min(0.0)


def hinge_loss(positive_scores: Tensor, negative_scores: Tensor,
               margin: ArrayOrTensor) -> Tensor:
    """Large-margin ranking loss ``[margin - pos + neg]₊`` averaged over the batch.

    ``margin`` may be a scalar or a per-example array (the adaptive margins
    γ_u of paper Eq. 7-8).
    """
    positive_scores = as_tensor(positive_scores)
    negative_scores = as_tensor(negative_scores)
    margin = as_tensor(margin)
    violations = hinge(margin - positive_scores + negative_scores)
    return violations.mean()


def hinge_push(violations: Tensor, reduction: str = "sum") -> Tensor:
    """Reduce a block of hinge violations to the scalar push loss.

    ``violations`` holds the pre-hinge margin violations, shape ``(B,)`` for
    classic one-negative triplets or ``(B, N)`` for multi-negative blocks.
    With ``reduction="sum"`` every negative contributes
    (``mean_b Σ_n [v_bn]₊``); ``"hardest"`` keeps only the most violating
    negative per example (``mean_b [max_n v_bn]₊``), with the gradient routed
    to the first maximum at ties (see :meth:`Tensor.max`).
    """
    if reduction not in ("sum", "hardest"):
        raise ValueError(f"reduction must be 'sum' or 'hardest', got {reduction!r}")
    violations = as_tensor(violations)
    if violations.ndim == 1:
        return hinge(violations).mean()
    if reduction == "hardest":
        return hinge(violations.max(axis=1)).mean()
    return hinge(violations).sum(axis=1).mean()


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor,
             reduction: str = "sum") -> Tensor:
    """Bayesian Personalised Ranking loss ``-log σ(pos - neg)``.

    ``negative_scores`` may be ``(B,)`` (classic, mean over the batch) or a
    ``(B, N)`` multi-negative block: ``reduction="sum"`` averages the
    per-example *sum* over negatives, ``"hardest"`` scores only the
    highest-scoring negative of each example.
    """
    if reduction not in ("sum", "hardest"):
        raise ValueError(f"reduction must be 'sum' or 'hardest', got {reduction!r}")
    positive_scores = as_tensor(positive_scores)
    negative_scores = as_tensor(negative_scores)
    if negative_scores.ndim == 1:
        diff = positive_scores - negative_scores
        return (log_sigmoid(diff) * -1.0).mean()
    if reduction == "hardest":
        diff = positive_scores - negative_scores.max(axis=1)
        return (log_sigmoid(diff) * -1.0).mean()
    diff = positive_scores.reshape(positive_scores.shape[0], 1) - negative_scores
    return (log_sigmoid(diff) * -1.0).sum(axis=1).mean()


def binary_cross_entropy(predictions: Tensor, targets: ArrayOrTensor) -> Tensor:
    """Binary cross-entropy between probabilities and {0,1} targets (mean)."""
    predictions = as_tensor(predictions)
    targets = as_tensor(targets)
    clipped = predictions * (1.0 - 2.0 * _EPS) + _EPS
    losses = (targets * clipped.log() + (1.0 - targets) * (1.0 - clipped).log()) * -1.0
    return losses.mean()


def mse_loss(predictions: Tensor, targets: ArrayOrTensor) -> Tensor:
    """Mean squared error."""
    diff = as_tensor(predictions) - as_tensor(targets)
    return (diff * diff).mean()


def l2_regularization(*tensors: Tensor) -> Tensor:
    """Sum of squared entries of all given tensors (weight decay helper)."""
    total = None
    for tensor in tensors:
        term = squared_norm(as_tensor(tensor), axis=None)
        total = term if total is None else total + term
    if total is None:
        raise ValueError("l2_regularization requires at least one tensor")
    return total
