"""Parameter containers and common layers.

The :class:`Module` base class mirrors the familiar deep-learning API surface
(``parameters()``, ``zero_grad()``, ``state_dict()``) at the scale this
repository needs.  Layers register their parameters as attributes; nested
modules are discovered recursively.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.tensor import Tensor
from repro.utils.rng import RandomState, ensure_rng


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data, spherical: bool = False) -> None:
        super().__init__(data, requires_grad=True)
        #: Whether optimizers should keep each row of this parameter on the
        #: unit sphere (used by :class:`~repro.autograd.optim.RiemannianSGD`).
        self.spherical = spherical

    # Tensor defines __slots__; Parameter needs an instance attribute, so it
    # gets its own slot here.
    __slots__ = ("spherical",)


class Module:
    """Base class for everything that owns parameters."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> Parameter:
        """Register ``parameter`` under ``name`` and return it."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)
        return parameter

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth first."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs, self first, depth first."""
        yield (prefix, self)
        for child_name, module in self._modules.items():
            child_prefix = f"{prefix}.{child_name}" if prefix else child_name
            yield from module.named_modules(prefix=child_prefix)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # (de)serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its qualified name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values previously produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.shape}, got {value.shape}"
                )
            parameter.data = value.copy()

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 random_state: RandomState = None) -> None:
        super().__init__()
        rng = ensure_rng(random_state)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), random_state=rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = F.as_tensor(x) @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """A lookup table of ``n_embeddings`` vectors of size ``dim``."""

    def __init__(self, n_embeddings: int, dim: int, std: float = 0.01,
                 spherical: bool = False, random_state: RandomState = None) -> None:
        super().__init__()
        rng = ensure_rng(random_state)
        self.n_embeddings = n_embeddings
        self.dim = dim
        self.std = std
        if spherical:
            weight = init.spherical((n_embeddings, dim), random_state=rng)
        else:
            weight = init.normal((n_embeddings, dim), std=std, random_state=rng)
        self.weight = Parameter(weight, spherical=spherical)

    def forward(self, indices) -> Tensor:
        return self.weight.gather_rows(np.asarray(indices, dtype=np.int64))

    def grow_rows(self, n_new: int, init_rows: Optional[np.ndarray] = None,
                  random_state: RandomState = None) -> None:
        """Append ``n_new`` rows to the table in place (streaming growth).

        New rows come from ``init_rows`` when given, of shape
        ``(n_new, dim)`` — the hook cold-start policies use for fold-in
        initialisation; otherwise they are drawn with the constructor's
        initialiser from ``random_state``.  Spherical tables renormalise
        the injected rows so the on-sphere invariant survives any init.
        The :class:`Parameter` object is kept (only its ``data`` is rebound
        to the taller array), so optimizer state keyed by ``id(parameter)``
        still addresses it — callers must follow up with
        ``optimizer.grow_state()`` before the next update touches new rows.
        """
        if n_new <= 0:
            raise ValueError(f"n_new must be positive, got {n_new}")
        spherical = getattr(self.weight, "spherical", False)
        if init_rows is not None:
            block = np.asarray(init_rows, dtype=np.float64).copy()
            if block.shape != (n_new, self.dim):
                raise ValueError(
                    f"init_rows must have shape {(n_new, self.dim)}, "
                    f"got {block.shape}")
            if spherical:
                norms = np.linalg.norm(block, axis=1, keepdims=True)
                block = block / np.maximum(norms, 1e-12)
        else:
            rng = ensure_rng(random_state)
            if spherical:
                block = init.spherical((n_new, self.dim), random_state=rng)
            else:
                block = init.normal((n_new, self.dim), std=self.std,
                                    random_state=rng)
        self.weight.data = np.ascontiguousarray(
            np.concatenate([self.weight.data, block], axis=0))
        self.n_embeddings += int(n_new)

    def clip_to_unit_ball(self, rows: Optional[np.ndarray] = None) -> None:
        """Project embedding rows into the closed unit ball (CML censoring).

        ``rows`` restricts the projection to the given (unique) row indices —
        the rows a training batch touched — so the censoring cost is O(batch)
        instead of O(table).  Rows already inside the ball are divided by
        exactly 1.0, so the restricted and full projections agree bitwise.
        """
        if rows is None:
            norms = np.sqrt(np.einsum("rd,rd->r", self.weight.data,
                                      self.weight.data))[:, None]
            self.weight.data = self.weight.data / np.maximum(norms, 1.0)
        else:
            block = self.weight.data[rows]
            norms = np.sqrt(np.einsum("rd,rd->r", block, block))[:, None]
            self.weight.data[rows] = block / np.maximum(norms, 1.0)

    def project_to_sphere(self, rows: Optional[np.ndarray] = None) -> None:
        """Project embedding rows exactly onto the unit sphere.

        ``rows`` restricts the projection to the given (unique) row indices,
        as in :meth:`clip_to_unit_ball`.
        """
        if rows is None:
            norms = np.linalg.norm(self.weight.data, axis=1, keepdims=True)
            self.weight.data = self.weight.data / np.maximum(norms, 1e-12)
        else:
            block = self.weight.data[rows]
            norms = np.linalg.norm(block, axis=1, keepdims=True)
            self.weight.data[rows] = block / np.maximum(norms, 1e-12)


class ReLU(Module):
    """Module wrapper around the ReLU activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Sigmoid(Module):
    """Module wrapper around the sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    """Module wrapper around the tanh activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            self._modules[f"layer{index}"] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between hidden layers.

    Parameters
    ----------
    layer_sizes:
        Sequence of layer widths, e.g. ``[64, 32, 16, 1]``.
    output_activation:
        Optional module applied after the last linear layer (e.g.
        :class:`Sigmoid` for NeuMF's prediction head).
    """

    def __init__(self, layer_sizes: Sequence[int],
                 output_activation: Optional[Module] = None,
                 random_state: RandomState = None) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        rng = ensure_rng(random_state)
        layers: List[Module] = []
        for index in range(len(layer_sizes) - 1):
            layers.append(Linear(layer_sizes[index], layer_sizes[index + 1], random_state=rng))
            if index < len(layer_sizes) - 2:
                layers.append(ReLU())
        if output_activation is not None:
            layers.append(output_activation)
        self.network = Sequential(*layers)
        self.layer_sizes = list(layer_sizes)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)
