"""Optimizers, including the calibrated Riemannian SGD used by MARS.

All optimizers operate on :class:`~repro.autograd.module.Parameter` objects
and read the gradients accumulated in ``parameter.grad`` by
:meth:`Tensor.backward`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.autograd.module import Parameter

_EPS = 1e-12


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping.

    Besides the classic :meth:`step` (consume the ``.grad`` of every managed
    parameter), optimizers supporting the fused training engine expose two
    out-of-band entry points that take gradients as explicit arguments:

    * :meth:`step_dense` — update one parameter from a full-shape gradient;
    * :meth:`step_rows` — update only the given rows of a parameter from a
      ``(len(rows), ...)`` gradient block, so a sparse batch update never
      materialises an ``(n_rows, D)`` gradient buffer.

    Both are numerically identical to :meth:`step` on a gradient that is zero
    outside the given rows.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    # -- checkpoint support --------------------------------------------- #
    # State is exchanged as {name: array} with parameters addressed by
    # their *index* in ``self.parameters`` (stable across process restarts,
    # unlike the ``id()`` keys of the in-memory dicts), so the whole dict
    # can ride inside a pickle-free ``.npz`` checkpoint.

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Durable optimizer state (empty for stateless optimizers)."""
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but was handed state "
                f"keys {sorted(state)}")

    def _slot_state(self, slots: Dict[int, np.ndarray],
                    name: str) -> Dict[str, np.ndarray]:
        return {f"{name}.{index}": slots[id(parameter)].copy()
                for index, parameter in enumerate(self.parameters)
                if id(parameter) in slots}

    def _load_slot_state(self, slots: Dict[int, np.ndarray], name: str,
                         state: Dict[str, np.ndarray]) -> None:
        slots.clear()
        for key, value in state.items():
            prefix, _, index_text = key.partition(".")
            if prefix != name or not index_text.isdigit():
                raise ValueError(
                    f"{type(self).__name__} cannot restore state key {key!r}")
            index = int(index_text)
            if index >= len(self.parameters):
                raise ValueError(
                    f"state key {key!r} addresses parameter {index} but the "
                    f"optimizer manages {len(self.parameters)}")
            parameter = self.parameters[index]
            value = np.asarray(value)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"state key {key!r} has shape {value.shape}, parameter "
                    f"has {parameter.data.shape}")
            slots[id(parameter)] = value.copy()

    def _state_tables(self) -> List[Dict[int, np.ndarray]]:
        """The per-parameter state dicts (``id(parameter)`` keyed) to grow."""
        return []

    def grow_state(self) -> None:
        """Row-pad per-parameter state after parameter tables grew.

        Streaming ingestion grows embedding tables row-wise for newly seen
        users/items (``parameter.data`` is rebound to a taller array).  Any
        state recorded at the old shape is padded with zero rows, so new
        ids start with fresh statistics while existing rows keep their
        history — exactly the state a fresh id would have accumulated had
        it been present from the start.  Only axis-0 growth is supported.
        """
        for table in self._state_tables():
            for parameter in self.parameters:
                state = table.get(id(parameter))
                if state is None or state.shape == parameter.data.shape:
                    continue
                if (state.ndim != parameter.data.ndim
                        or state.shape[1:] != parameter.data.shape[1:]
                        or state.shape[0] > parameter.data.shape[0]):
                    raise ValueError(
                        f"optimizer state of shape {state.shape} cannot be "
                        f"grown to parameter shape {parameter.data.shape}")
                padded = np.zeros(parameter.data.shape, dtype=state.dtype)
                padded[:state.shape[0]] = state
                table[id(parameter)] = padded

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def step_dense(self, parameter: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not support out-of-band dense updates"
        )

    def step_rows(self, parameter: Parameter, rows: np.ndarray,
                  row_grads: np.ndarray) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not support sparse row updates"
        )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            self.step_dense(parameter, parameter.grad)

    def step_dense(self, parameter: Parameter, grad: np.ndarray) -> None:
        """Apply one SGD update to ``parameter`` from an explicit gradient."""
        if self.weight_decay:
            grad = grad + self.weight_decay * parameter.data
        if self.momentum:
            velocity = self._velocity.get(id(parameter))
            if velocity is None:
                velocity = np.zeros_like(parameter.data)
            velocity = self.momentum * velocity + grad
            self._velocity[id(parameter)] = velocity
            update = velocity
        else:
            update = grad
        # In-place so concurrent shard threads (Hogwild sharded executor)
        # race per element instead of losing whole updates to a rebind.
        np.subtract(parameter.data, self.lr * update, out=parameter.data)

    def step_rows(self, parameter: Parameter, rows: np.ndarray,
                  row_grads: np.ndarray) -> None:
        """Update only ``parameter.data[rows]`` (rows must be unique).

        Momentum and weight decay are stateful over the *full* parameter, so
        they cannot be reproduced from a row slice; the multi-facet models
        use neither on their sparse tables.
        """
        if self.momentum or self.weight_decay:
            raise ValueError("sparse row updates require momentum=0 and "
                             "weight_decay=0")
        parameter.data[rows] = parameter.data[rows] - self.lr * row_grads

    def _state_tables(self) -> List[Dict[int, np.ndarray]]:
        return [self._velocity]

    def state_dict(self) -> Dict[str, np.ndarray]:
        return self._slot_state(self._velocity, "velocity")

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._load_slot_state(self._velocity, "velocity", state)


class Adagrad(Optimizer):
    """Adagrad: per-coordinate learning rates from accumulated squared gradients."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.05,
                 eps: float = 1e-10, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._accumulator: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            self.step_dense(parameter, parameter.grad)

    def step_dense(self, parameter: Parameter, grad: np.ndarray) -> None:
        """Apply one Adagrad update to ``parameter`` from an explicit gradient."""
        if self.weight_decay:
            grad = grad + self.weight_decay * parameter.data
        acc = self._accumulator.get(id(parameter))
        if acc is None:
            # Atomic under the GIL, like step_rows: concurrent first-touch
            # from shard threads shares one accumulator.
            acc = self._accumulator.setdefault(
                id(parameter), np.zeros_like(parameter.data))
        acc += grad ** 2
        # In-place for the same Hogwild reason as SGD.step_dense.
        np.subtract(parameter.data, self.lr * grad / (np.sqrt(acc) + self.eps),
                    out=parameter.data)

    def step_rows(self, parameter: Parameter, rows: np.ndarray,
                  row_grads: np.ndarray) -> None:
        """Update only ``parameter.data[rows]`` (rows must be unique).

        The squared-gradient accumulator lives at full parameter shape but is
        only touched at ``rows``, so the update is numerically identical to
        :meth:`step_dense` on a gradient that is zero outside ``rows``.
        Weight decay is stateless over the full parameter and cannot be
        reproduced from a row slice; the fused baselines apply it inside the
        loss instead.
        """
        if self.weight_decay:
            raise ValueError("sparse row updates require weight_decay=0")
        acc = self._accumulator.get(id(parameter))
        if acc is None:
            # setdefault is atomic under the GIL: when two shard threads hit
            # a parameter's first update together, both end up sharing one
            # accumulator instead of each keeping a private zeroed copy.
            acc = self._accumulator.setdefault(
                id(parameter), np.zeros_like(parameter.data))
        acc[rows] += row_grads ** 2
        parameter.data[rows] = (parameter.data[rows]
                                - self.lr * row_grads / (np.sqrt(acc[rows]) + self.eps))

    def _state_tables(self) -> List[Dict[int, np.ndarray]]:
        return [self._accumulator]

    def state_dict(self) -> Dict[str, np.ndarray]:
        return self._slot_state(self._accumulator, "accumulator")

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._load_slot_state(self._accumulator, "accumulator", state)


class Adam(Optimizer):
    """Adam with bias-corrected first and second moment estimates."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m = self._m.get(id(parameter), np.zeros_like(parameter.data))
            v = self._v.get(id(parameter), np.zeros_like(parameter.data))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad ** 2
            self._m[id(parameter)] = m
            self._v[id(parameter)] = v
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            # In-place so the table the model (and any concurrent reader)
            # holds is the one that gets updated; rebinding ``.data`` would
            # swap the buffer out from under them (HOGWILD-SAFETY).
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _state_tables(self) -> List[Dict[int, np.ndarray]]:
        return [self._m, self._v]

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = self._slot_state(self._m, "m")
        state.update(self._slot_state(self._v, "v"))
        state["t"] = np.asarray(self._t, dtype=np.int64)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        state = dict(state)
        self._t = int(np.asarray(state.pop("t", 0)))
        unknown = [key for key in state
                   if not key.startswith(("m.", "v."))]
        if unknown:
            raise ValueError(f"Adam cannot restore state keys {unknown}")
        self._load_slot_state(
            self._m, "m",
            {key: value for key, value in state.items()
             if key.startswith("m.")})
        self._load_slot_state(
            self._v, "v",
            {key: value for key, value in state.items()
             if key.startswith("v.")})


class RiemannianSGD(Optimizer):
    """Calibrated Riemannian SGD on the unit hypersphere (paper Eq. 20-21).

    Parameters flagged ``spherical=True`` are treated as stacks of row
    vectors living on the unit sphere.  Each update:

    1. projects the Euclidean gradient onto the tangent space of the sphere
       at the current point, ``(I - x xᵀ) ∇f(x)``;
    2. scales it by the calibration factor ``1 + xᵀ∇f(x) / ‖∇f(x)‖`` so that
       rows whose gradient points far from their current direction take a
       larger step;
    3. retracts the result back onto the sphere with
       ``R_x(z) = (x + z) / ‖x + z‖``.

    Parameters not flagged spherical fall back to plain SGD, which lets a
    single optimizer drive both the spherical embeddings and the Euclidean
    projection matrices / facet weights of MARS.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.05,
                 calibrate: bool = True, euclidean_lr: Optional[float] = None,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.calibrate = bool(calibrate)
        self.euclidean_lr = float(euclidean_lr) if euclidean_lr is not None else float(lr)
        self.weight_decay = float(weight_decay)

    # ------------------------------------------------------------------ #
    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            self.step_dense(parameter, parameter.grad)

    def step_dense(self, parameter: Parameter, grad: np.ndarray) -> None:
        """Apply one update to ``parameter`` from an explicit full gradient."""
        # Imported lazily: repro.core depends on repro.autograd at import
        # time, so the reverse import must not run while this module loads.
        from repro.core.spherical import riemannian_update_rows

        if getattr(parameter, "spherical", False):
            x = parameter.data
            if x.ndim == 1:
                updated = riemannian_update_rows(x[None, :], grad[None, :],
                                                 lr=self.lr,
                                                 calibrate=self.calibrate)[0]
            else:
                updated = riemannian_update_rows(
                    x, grad, lr=self.lr, calibrate=self.calibrate)
            # In-place for the same Hogwild reason as the Euclidean branch.
            np.copyto(parameter.data, updated)
        else:
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            # In-place for the same Hogwild reason as SGD.step_dense.
            np.subtract(parameter.data, self.euclidean_lr * grad,
                        out=parameter.data)

    def step_rows(self, parameter: Parameter, rows: np.ndarray,
                  row_grads: np.ndarray) -> None:
        """Update only ``parameter.data[rows]`` (rows must be unique).

        Spherical parameters get the calibrated Riemannian step of Eq. 21 on
        just the selected rows; Euclidean ones a plain SGD row update.  Rows
        whose gradient block is zero keep their value exactly, matching the
        dense :meth:`step` on a gradient that is zero outside ``rows``.
        """
        from repro.core.spherical import riemannian_update_rows

        if getattr(parameter, "spherical", False):
            parameter.data[rows] = riemannian_update_rows(
                parameter.data[rows], row_grads,
                lr=self.lr, calibrate=self.calibrate)
        else:
            if self.weight_decay:
                raise ValueError("sparse row updates require weight_decay=0")
            parameter.data[rows] = parameter.data[rows] - self.euclidean_lr * row_grads
