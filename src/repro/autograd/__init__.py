"""A small reverse-mode automatic differentiation engine on NumPy.

This subpackage replaces the PyTorch dependency of the original MARS
implementation.  It provides:

* :class:`~repro.autograd.tensor.Tensor` — an ndarray wrapper recording a
  dynamic computation graph, with :meth:`backward` for reverse-mode
  differentiation;
* :mod:`~repro.autograd.functional` — composite operations (softmax, cosine
  similarity, squared Euclidean distance, hinge, log-sigmoid, ...);
* :mod:`~repro.autograd.module` — ``Module``/``Parameter`` containers plus
  ``Linear``, ``Embedding`` and ``MLP`` layers;
* :mod:`~repro.autograd.optim` — ``SGD``, ``Adagrad``, ``Adam`` and the
  calibrated ``RiemannianSGD`` used by MARS (paper Eq. 20-21);
* :mod:`~repro.autograd.init` — parameter initialisers;
* :mod:`~repro.autograd.gradcheck` — finite-difference gradient checking.
"""

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd.module import Embedding, Linear, MLP, Module, Parameter, Sequential
from repro.autograd.optim import SGD, Adagrad, Adam, Optimizer, RiemannianSGD
from repro.autograd import functional, init
from repro.autograd.gradcheck import check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "Parameter",
    "Module",
    "Linear",
    "Embedding",
    "Sequential",
    "MLP",
    "Optimizer",
    "SGD",
    "Adagrad",
    "Adam",
    "RiemannianSGD",
    "functional",
    "init",
    "check_gradients",
]
