"""Finite-difference gradient checking for the autograd engine.

Used by the test-suite to certify that every operation used by the
recommender models back-propagates the exact gradient.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numeric_gradient(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
                     index: int, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` must return a scalar :class:`Tensor` when called with plain
    ndarrays wrapped into tensors.
    """
    base = [np.array(x, dtype=np.float64, copy=True) for x in inputs]
    target = base[index]
    grad = np.zeros_like(target)
    iterator = np.nditer(target, flags=["multi_index"])
    while not iterator.finished:
        idx = iterator.multi_index
        original = target[idx]

        target[idx] = original + epsilon
        plus = fn(*[Tensor(x) for x in base]).item()

        target[idx] = original - epsilon
        minus = fn(*[Tensor(x) for x in base]).item()

        target[idx] = original
        grad[idx] = (plus - minus) / (2 * epsilon)
        iterator.iternext()
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
                    atol: float = 1e-5, rtol: float = 1e-4,
                    epsilon: float = 1e-6) -> bool:
    """Compare analytic and numeric gradients of ``fn`` for every input.

    Raises
    ------
    AssertionError
        If any analytic gradient deviates from the finite-difference
        estimate beyond the given tolerances.
    """
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    output = fn(*tensors)
    if output.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    output.backward()

    for index, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numeric_gradient(fn, [t.data for t in tensors], index, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs error {max_err:.3e}"
            )
    return True
