"""Spherical-geometry utilities used by MARS and its tests.

Covers projection onto the unit hypersphere, tangent-space projection,
the retraction used by Riemannian SGD, and sampling from the von Mises-Fisher
distribution that Section IV-A uses to give the cosine objective a
probabilistic interpretation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng

_EPS = 1e-12


def project_to_sphere(vectors: np.ndarray) -> np.ndarray:
    """Normalise the last axis of ``vectors`` to unit norm."""
    norms = np.linalg.norm(vectors, axis=-1, keepdims=True)
    return vectors / np.maximum(norms, _EPS)


def tangent_projection(points: np.ndarray, gradients: np.ndarray) -> np.ndarray:
    """Project ``gradients`` onto the tangent space of the sphere at ``points``.

    Implements ``(I − x xᵀ) ∇f(x)`` row-wise, assuming ``points`` has unit
    rows.
    """
    radial = np.sum(points * gradients, axis=-1, keepdims=True)
    return gradients - radial * points


def retract(points: np.ndarray, step: np.ndarray) -> np.ndarray:
    """Retraction ``R_x(z) = (x + z) / ‖x + z‖`` (paper Eq. 21)."""
    return project_to_sphere(points + step)


def calibration_factor(points: np.ndarray, gradients: np.ndarray) -> np.ndarray:
    """Calibration multiplier ``1 + xᵀ∇f(x) / ‖∇f(x)‖`` of Eq. 21 (row-wise)."""
    norms = np.linalg.norm(gradients, axis=-1, keepdims=True)
    radial = np.sum(points * gradients, axis=-1, keepdims=True)
    return 1.0 + radial / np.maximum(norms, _EPS)


def riemannian_update_rows(points: np.ndarray, gradients: np.ndarray,
                           lr: float, calibrate: bool = True) -> np.ndarray:
    """One calibrated Riemannian SGD step (Eq. 21) on a stack of sphere rows.

    Applies, row-wise: tangent projection ``(I − x xᵀ) ∇f(x)``, the optional
    calibration multiplier ``1 + xᵀ∇f(x) / ‖∇f(x)‖``, and the retraction
    ``R_x(z) = (x + z) / ‖x + z‖``.  Rows with a zero gradient keep their
    previous value exactly.  This is the update kernel shared by
    :class:`~repro.autograd.optim.RiemannianSGD` (full tables) and the fused
    training engine (only the rows a batch touched), so the two paths are
    numerically identical.

    Parameters
    ----------
    points:
        Current positions on the unit sphere, shape ``(R, D)``.
    gradients:
        Euclidean gradients at ``points``, same shape.
    lr:
        Step size.
    calibrate:
        Apply the calibration factor of Eq. 21 (otherwise plain Riemannian
        SGD, Eq. 20).
    """
    # Reductions via contraction einsums: same arithmetic as np.linalg.norm
    # with less per-call overhead on the small row blocks of a batch update.
    grad_norm = np.sqrt(np.einsum("rd,rd->r", gradients, gradients))[:, None]
    safe_norm = np.maximum(grad_norm, _EPS)

    radial = np.einsum("rd,rd->r", points, gradients)[:, None]

    if calibrate:
        calibration = 1.0 + radial / safe_norm
    else:
        calibration = np.ones_like(radial)

    # x − η·c·(I − x xᵀ)∇ expanded to (1 + η·c·⟨x, ∇⟩)·x − η·c·∇, so the
    # tangent vector never materialises.
    step_size = lr * calibration
    updated = (1.0 + step_size * radial) * points - step_size * gradients
    norms = np.sqrt(np.einsum("rd,rd->r", updated, updated))[:, None]
    updated = updated / np.maximum(norms, _EPS)
    return np.where(grad_norm > 0, updated, points)


def geodesic_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Great-circle distance between unit vectors along the last axis."""
    cosines = np.clip(np.sum(a * b, axis=-1), -1.0, 1.0)
    return np.arccos(cosines)


def sample_vmf(mean_direction: np.ndarray, concentration: float, size: int,
               random_state: RandomState = None) -> np.ndarray:
    """Sample from the von Mises-Fisher distribution on the unit sphere.

    Uses Wood's (1994) rejection algorithm for the radial component and an
    orthonormal completion for the tangential component.

    Parameters
    ----------
    mean_direction:
        Mean direction μ (any norm; it is normalised internally).
    concentration:
        Concentration κ ≥ 0.  κ = 0 gives the uniform distribution on the
        sphere.
    size:
        Number of samples.
    """
    rng = ensure_rng(random_state)
    mu = np.asarray(mean_direction, dtype=np.float64).ravel()
    dim = mu.size
    if dim < 2:
        raise ValueError("the vMF distribution requires dimension >= 2")
    if concentration < 0:
        raise ValueError("concentration must be non-negative")
    mu = mu / max(np.linalg.norm(mu), _EPS)

    if concentration == 0:
        return project_to_sphere(rng.normal(size=(size, dim)))

    # Wood's algorithm for the cosine of the angle to the mean direction.
    b = (-2 * concentration + np.sqrt(4 * concentration**2 + (dim - 1) ** 2)) / (dim - 1)
    x0 = (1 - b) / (1 + b)
    c = concentration * x0 + (dim - 1) * np.log(1 - x0**2)

    # Vectorised rejection: propose betas/uniforms for every still-pending
    # sample in whole-batch rounds instead of one Python loop per sample.
    # Wood's envelope accepts most proposals, so a couple of rounds suffice.
    cosines = np.empty(size)
    pending = np.arange(size)
    while pending.size:
        z = rng.beta((dim - 1) / 2.0, (dim - 1) / 2.0, size=pending.size)
        w = (1 - (1 + b) * z) / (1 - (1 - b) * z)
        u = rng.uniform(size=pending.size)
        accept = concentration * w + (dim - 1) * np.log(1 - x0 * w) - c >= np.log(u)
        cosines[pending[accept]] = w[accept]
        pending = pending[~accept]

    # Tangential directions orthogonal to mu.
    tangential = rng.normal(size=(size, dim))
    tangential = tangential - np.outer(tangential @ mu, mu)
    tangential = project_to_sphere(tangential)

    sines = np.sqrt(np.clip(1.0 - cosines**2, 0.0, 1.0))
    return cosines[:, None] * mu[None, :] + sines[:, None] * tangential


def vmf_log_density(points: np.ndarray, mean_direction: np.ndarray,
                    concentration: float) -> np.ndarray:
    """Unnormalised vMF log-density ``κ cos(x, μ)`` (Eq. 18 up to a constant)."""
    mu = project_to_sphere(np.asarray(mean_direction, dtype=np.float64))
    pts = project_to_sphere(np.asarray(points, dtype=np.float64))
    return concentration * np.sum(pts * mu, axis=-1)
