"""Spherical-geometry utilities used by MARS and its tests.

Covers projection onto the unit hypersphere, tangent-space projection,
the retraction used by Riemannian SGD, and sampling from the von Mises-Fisher
distribution that Section IV-A uses to give the cosine objective a
probabilistic interpretation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng

_EPS = 1e-12


def project_to_sphere(vectors: np.ndarray) -> np.ndarray:
    """Normalise the last axis of ``vectors`` to unit norm."""
    norms = np.linalg.norm(vectors, axis=-1, keepdims=True)
    return vectors / np.maximum(norms, _EPS)


def tangent_projection(points: np.ndarray, gradients: np.ndarray) -> np.ndarray:
    """Project ``gradients`` onto the tangent space of the sphere at ``points``.

    Implements ``(I − x xᵀ) ∇f(x)`` row-wise, assuming ``points`` has unit
    rows.
    """
    radial = np.sum(points * gradients, axis=-1, keepdims=True)
    return gradients - radial * points


def retract(points: np.ndarray, step: np.ndarray) -> np.ndarray:
    """Retraction ``R_x(z) = (x + z) / ‖x + z‖`` (paper Eq. 21)."""
    return project_to_sphere(points + step)


def calibration_factor(points: np.ndarray, gradients: np.ndarray) -> np.ndarray:
    """Calibration multiplier ``1 + xᵀ∇f(x) / ‖∇f(x)‖`` of Eq. 21 (row-wise)."""
    norms = np.linalg.norm(gradients, axis=-1, keepdims=True)
    radial = np.sum(points * gradients, axis=-1, keepdims=True)
    return 1.0 + radial / np.maximum(norms, _EPS)


def geodesic_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Great-circle distance between unit vectors along the last axis."""
    cosines = np.clip(np.sum(a * b, axis=-1), -1.0, 1.0)
    return np.arccos(cosines)


def sample_vmf(mean_direction: np.ndarray, concentration: float, size: int,
               random_state: RandomState = None) -> np.ndarray:
    """Sample from the von Mises-Fisher distribution on the unit sphere.

    Uses Wood's (1994) rejection algorithm for the radial component and an
    orthonormal completion for the tangential component.

    Parameters
    ----------
    mean_direction:
        Mean direction μ (any norm; it is normalised internally).
    concentration:
        Concentration κ ≥ 0.  κ = 0 gives the uniform distribution on the
        sphere.
    size:
        Number of samples.
    """
    rng = ensure_rng(random_state)
    mu = np.asarray(mean_direction, dtype=np.float64).ravel()
    dim = mu.size
    if dim < 2:
        raise ValueError("the vMF distribution requires dimension >= 2")
    if concentration < 0:
        raise ValueError("concentration must be non-negative")
    mu = mu / max(np.linalg.norm(mu), _EPS)

    if concentration == 0:
        return project_to_sphere(rng.normal(size=(size, dim)))

    # Wood's algorithm for the cosine of the angle to the mean direction.
    b = (-2 * concentration + np.sqrt(4 * concentration**2 + (dim - 1) ** 2)) / (dim - 1)
    x0 = (1 - b) / (1 + b)
    c = concentration * x0 + (dim - 1) * np.log(1 - x0**2)

    cosines = np.empty(size)
    for index in range(size):
        while True:
            z = rng.beta((dim - 1) / 2.0, (dim - 1) / 2.0)
            w = (1 - (1 + b) * z) / (1 - (1 - b) * z)
            u = rng.uniform()
            if concentration * w + (dim - 1) * np.log(1 - x0 * w) - c >= np.log(u):
                cosines[index] = w
                break

    # Tangential directions orthogonal to mu.
    tangential = rng.normal(size=(size, dim))
    tangential = tangential - np.outer(tangential @ mu, mu)
    tangential = project_to_sphere(tangential)

    sines = np.sqrt(np.clip(1.0 - cosines**2, 0.0, 1.0))
    return cosines[:, None] * mu[None, :] + sines[:, None] * tangential


def vmf_log_density(points: np.ndarray, mean_direction: np.ndarray,
                    concentration: float) -> np.ndarray:
    """Unnormalised vMF log-density ``κ cos(x, μ)`` (Eq. 18 up to a constant)."""
    mu = project_to_sphere(np.asarray(mean_direction, dtype=np.float64))
    pts = project_to_sphere(np.asarray(points, dtype=np.float64))
    return concentration * np.sum(pts * mu, axis=-1)
