"""Configuration dataclasses for MAR and MARS.

Defaults follow the paper's reported rule-of-thumb values: K = 3-4 facets,
λ_facet = 0.01, α = 0.1, β = 0.8, batch size scaled down from the paper's
1000 to suit CPU-sized presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.utils.validation import check_in_range, check_non_negative, check_positive_int


@dataclass
class MARConfig:
    """Hyperparameters of the Euclidean multi-facet recommender (MAR).

    Attributes
    ----------
    n_facets:
        Number of facet-specific metric spaces K.
    embedding_dim:
        Dimension D of the universal and facet-specific embeddings.
    learning_rate:
        Step size of the (stochastic) optimizer.
    n_epochs:
        Training epochs; each epoch sees roughly every interaction once.
    batch_size:
        Triplets per batch.
    lambda_pull, lambda_facet:
        Weights of the pulling regulariser (Eq. 9) and the facet-separating
        loss (Eq. 6).
    alpha:
        Scale of the facet-separating loss (paper default 0.1).
    beta:
        Exponent of the frequency-biased user sampling (Eq. 10, default 0.8).
    adaptive_margin:
        Use the per-user margins γ_u of Eq. 7; when ``False``, ``margin`` is
        used for every user.
    margin:
        Fixed margin used when ``adaptive_margin`` is disabled.
    min_margin:
        Lower clip for adaptive margins (avoids degenerate zero margins).
    projection_noise:
        Standard deviation of the noise added to the near-identity
        initialisation of the facet projection matrices.
    user_sampling:
        ``"frequency"`` (Eq. 10) or ``"uniform"``.
    n_negatives:
        Negatives sampled per positive.  The paper's objective uses 1;
        values > 1 train on ``(B, N)`` negative blocks, aggregated by
        ``negative_reduction``.
    negative_reduction:
        Push aggregation over a multi-negative block: ``"sum"`` adds every
        negative's hinge term, ``"hardest"`` keeps only the most violating
        negative per example.  Ignored when ``n_negatives = 1``.
    engine:
        Training-step implementation.  ``"fused"`` (default) evaluates the
        closed-form gradients of the combined objective in a handful of
        NumPy ``einsum``/BLAS calls (:mod:`repro.core.fused`) and applies
        sparse row-wise optimizer updates; ``"autograd"`` builds the
        reverse-mode computation graph of :mod:`repro.autograd` and walks it
        backward.  Both engines compute the same gradients up to
        floating-point rounding (~1e-10), so seeded training runs produce
        identical loss curves; the fused engine is several times faster per
        step.
    executor:
        Epoch execution strategy of the training runtime
        (:class:`~repro.training.loop.TrainingLoop`).  ``"serial"``
        (default) runs the classic single-threaded loop; ``"sharded"``
        partitions users into ``n_shards`` disjoint shards and runs their
        sub-epochs concurrently with lock-free Hogwild updates (fused
        engine only).  ``n_shards=1`` sharded is bit-identical to serial;
        ``n_shards>1`` matches serial loss curves statistically, not
        bitwise.
    n_shards:
        Number of disjoint user shards under ``executor="sharded"``;
        ignored by the serial executor.
    """

    n_facets: int = 3
    embedding_dim: int = 32
    learning_rate: float = 0.5
    n_epochs: int = 40
    batch_size: int = 256
    lambda_pull: float = 0.1
    lambda_facet: float = 0.01
    alpha: float = 0.1
    beta: float = 0.8
    adaptive_margin: bool = True
    margin: float = 0.5
    min_margin: float = 0.05
    projection_noise: float = 0.05
    user_sampling: str = "frequency"
    n_negatives: int = 1
    negative_reduction: str = "sum"
    engine: str = "fused"
    executor: str = "serial"
    n_shards: int = 1
    random_state: Optional[int] = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.n_facets, "n_facets")
        check_positive_int(self.embedding_dim, "embedding_dim")
        check_positive_int(self.n_epochs, "n_epochs")
        check_positive_int(self.batch_size, "batch_size")
        check_in_range(self.learning_rate, "learning_rate", 1e-8, 10.0)
        check_non_negative(self.lambda_pull, "lambda_pull")
        check_non_negative(self.lambda_facet, "lambda_facet")
        check_in_range(self.alpha, "alpha", 1e-6, 100.0)
        check_in_range(self.beta, "beta", 0.0, 10.0)
        check_non_negative(self.margin, "margin")
        check_in_range(self.min_margin, "min_margin", 0.0, 1.0)
        if self.user_sampling not in ("frequency", "uniform"):
            raise ValueError("user_sampling must be 'frequency' or 'uniform'")
        check_positive_int(self.n_negatives, "n_negatives")
        if self.negative_reduction not in ("sum", "hardest"):
            raise ValueError("negative_reduction must be 'sum' or 'hardest'")
        if self.engine not in ("fused", "autograd"):
            raise ValueError("engine must be 'fused' or 'autograd'")
        # Imported here: repro.core must be importable before the training
        # package finishes loading (and vice versa), so the shared executor
        # rule set is resolved at validation time.
        from repro.training.loop import validate_executor

        validate_executor(self.executor, self.n_shards, self.engine)


@dataclass
class MARSConfig(MARConfig):
    """Hyperparameters of MARS (spherical optimization variant).

    Additional attributes
    ---------------------
    calibrate:
        Use the calibrated Riemannian gradient (Eq. 21) rather than plain
        Riemannian SGD (Eq. 20).
    euclidean_learning_rate:
        Learning rate applied to the non-spherical parameters (projection
        matrices and facet-weight logits); defaults to ``learning_rate``.

    Notes
    -----
    The default learning rate is larger than MAR's because the loss is
    averaged over the batch and the cosine-based gradients are bounded by 1,
    so the per-row updates are small; the retraction keeps large steps safe.
    """

    learning_rate: float = 4.0
    n_epochs: int = 60
    calibrate: bool = True
    euclidean_learning_rate: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.euclidean_learning_rate is not None:
            check_in_range(self.euclidean_learning_rate,
                           "euclidean_learning_rate", 1e-8, 10.0)
