"""MAR — Multi-fAcet Recommender networks (paper Section III).

Users and items have universal embeddings projected into K facet-specific
Euclidean metric spaces; similarity is the user-weighted sum of per-facet
negative squared distances; training optimises the push/pull/facet-separating
objective of Eq. 11 with standard SGD and unit-ball censoring of embeddings.

Training runs on the fused closed-form engine by default
(``engine="fused"``, see :mod:`repro.core.fused`): analytic gradients plus
sparse row-wise SGD updates, several times faster per step.
``engine="autograd"`` selects the reverse-mode reference path; both produce
identical loss curves from the same seed up to float tolerance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.optim import Optimizer, SGD
from repro.core._multifacet import MultiFacetRecommender, _MultiFacetNetwork
from repro.core.config import MARConfig


class MAR(MultiFacetRecommender):
    """Multi-facet metric-learning recommender in Euclidean facet spaces.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.MARConfig`.  Alternatively pass keyword
        overrides (``MAR(n_facets=4, embedding_dim=64)``).

    Examples
    --------
    >>> from repro.data import load_benchmark
    >>> from repro.core import MAR
    >>> dataset = load_benchmark("delicious", random_state=0)
    >>> model = MAR(n_facets=2, embedding_dim=16, n_epochs=2).fit(dataset)
    >>> model.recommend(user=0, k=5).shape
    (5,)
    """

    name = "MAR"

    @staticmethod
    def _default_config(**overrides) -> MARConfig:
        return MARConfig(**overrides)

    def _spherical(self) -> bool:
        return False

    def _make_optimizer(self, network: _MultiFacetNetwork) -> Optimizer:
        return SGD(network.parameters(), lr=self.config.learning_rate)

    def _apply_constraints(self, network: _MultiFacetNetwork,
                           user_rows: Optional[np.ndarray] = None,
                           item_rows: Optional[np.ndarray] = None) -> None:
        # Eq. 11: keep embeddings inside the unit ball (CML-style censoring).
        # After the full clip at fit start, only the rows a step updated can
        # leave the ball, so the censoring is restricted to them when given.
        network.user_embeddings.clip_to_unit_ball(rows=user_rows)
        network.item_embeddings.clip_to_unit_ball(rows=item_rows)
