"""MAR — Multi-fAcet Recommender networks (paper Section III).

Users and items have universal embeddings projected into K facet-specific
Euclidean metric spaces; similarity is the user-weighted sum of per-facet
negative squared distances; training optimises the push/pull/facet-separating
objective of Eq. 11 with standard SGD and unit-ball censoring of embeddings.
"""

from __future__ import annotations

from repro.autograd.optim import Optimizer, SGD
from repro.core._multifacet import MultiFacetRecommender, _MultiFacetNetwork
from repro.core.config import MARConfig


class MAR(MultiFacetRecommender):
    """Multi-facet metric-learning recommender in Euclidean facet spaces.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.MARConfig`.  Alternatively pass keyword
        overrides (``MAR(n_facets=4, embedding_dim=64)``).

    Examples
    --------
    >>> from repro.data import load_benchmark
    >>> from repro.core import MAR
    >>> dataset = load_benchmark("delicious", random_state=0)
    >>> model = MAR(n_facets=2, embedding_dim=16, n_epochs=2).fit(dataset)
    >>> model.recommend(user=0, k=5).shape
    (5,)
    """

    name = "MAR"

    @staticmethod
    def _default_config(**overrides) -> MARConfig:
        return MARConfig(**overrides)

    def _spherical(self) -> bool:
        return False

    def _make_optimizer(self, network: _MultiFacetNetwork) -> Optimizer:
        return SGD(network.parameters(), lr=self.config.learning_rate)

    def _apply_constraints(self, network: _MultiFacetNetwork) -> None:
        # Eq. 11: keep all embeddings inside the unit ball (CML-style censoring).
        network.user_embeddings.clip_to_unit_ball()
        network.item_embeddings.clip_to_unit_ball()
