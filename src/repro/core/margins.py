"""Adaptive per-user margins (paper Eq. 7).

The margin of the push loss is personalised by each user's *adoption level*:
users whose interacted items are themselves popular (large two-hop
neighbourhoods) are deemed more likely to adopt new items and receive a
smaller margin, giving the optimizer more freedom to arrange the multiple
facet-specific spaces.
"""

from __future__ import annotations

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.utils.validation import check_in_range


def adaptive_margins(interactions: InteractionMatrix, min_margin: float = 0.05,
                     max_margin: float = 1.0) -> np.ndarray:
    """Compute γ_u = 1 − (Σ_{v∈V_u} |U_v|) / N for every user, clipped.

    Parameters
    ----------
    interactions:
        Training interaction matrix.
    min_margin, max_margin:
        Clipping range.  The paper's formula can produce zero or negative
        margins for extremely active users on dense datasets; clipping keeps
        the push loss meaningful while preserving the ordering (more adoption
        → smaller margin).

    Returns
    -------
    numpy.ndarray
        Per-user margins, shape ``(n_users,)``.
    """
    min_margin = check_in_range(min_margin, "min_margin", 0.0, 1.0)
    max_margin = check_in_range(max_margin, "max_margin", min_margin, 1.0)
    two_hop = interactions.two_hop_neighbourhood_sizes()
    margins = 1.0 - two_hop / float(interactions.n_users)
    return np.clip(margins, min_margin, max_margin)
