"""Multi-facet optimization objectives (paper Section III-C and IV-A).

* :func:`push_loss` — the relative large-margin objective with adaptive
  margins (Eq. 8 / Eq. 15);
* :func:`pull_loss` — the absolute pulling regulariser on positive pairs
  (Eq. 9 / Eq. 16);
* :func:`facet_separating_loss` — encourages the facet-specific embeddings of
  the same entity to spread out across spaces (Eq. 6 / Eq. 12).

All functions return scalar tensors and are shared by MAR (Euclidean mode)
and MARS (spherical mode).

Each objective also has a plain NumPy ``*_numpy`` variant that returns the
loss value *and* its analytic gradient in one pass.  These closed forms back
the fused training engine (:mod:`repro.core.fused`); they are tested for
~1e-10 agreement against the autograd path, and use the same epsilon
conventions as :mod:`repro.autograd.functional` so the two paths differ only
by floating-point rounding.
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F

_EPS = 1e-12


def push_loss(positive_similarity: Tensor, negative_similarity: Tensor,
              margins: Union[np.ndarray, float],
              reduction: str = "sum") -> Tensor:
    """Relative "pushing" objective ``[γ_u − g(u,v_p) + g(u,v_q)]₊`` (Eq. 8).

    Parameters
    ----------
    positive_similarity, negative_similarity:
        Cross-facet similarities of the positive and negative pairs in the
        batch.  Positives have shape ``(B,)``; negatives either ``(B,)``
        (classic single-negative triplets) or ``(B, N)`` for multi-negative
        blocks.
    margins:
        Scalar margin or per-example adaptive margins γ_u, shape ``(B,)``.
    reduction:
        How a ``(B, N)`` negative block collapses to one loss per example:
        ``"sum"`` adds every negative's hinge, ``"hardest"`` keeps only the
        most violating negative.  Ignored for ``(B,)`` negatives.
    """
    negative_similarity = F.as_tensor(negative_similarity)
    if negative_similarity.ndim == 1:
        return F.hinge_loss(positive_similarity, negative_similarity, margins)
    positive_similarity = F.as_tensor(positive_similarity)
    batch = positive_similarity.shape[0]
    margins_column = np.broadcast_to(
        np.asarray(margins, dtype=np.float64), (batch,)).reshape(batch, 1)
    violations = (Tensor(margins_column)
                  - positive_similarity.reshape(batch, 1)
                  + negative_similarity)
    return F.hinge_push(violations, reduction=reduction)


def pull_loss(positive_similarity: Tensor) -> Tensor:
    """Absolute "pulling" objective ``−g(u, v_p)`` averaged over the batch (Eq. 9)."""
    return (positive_similarity * -1.0).mean()


def facet_separating_loss(facet_embeddings: Union[Tensor, List[Tensor]],
                          alpha: float = 0.1, spherical: bool = False) -> Tensor:
    """Spread the facet-specific embeddings of each entity across spaces.

    Euclidean mode implements Eq. 6: for every pair of facets (i, j) the loss
    ``(1/α) log(1 + exp(−α ‖x_i − x_j‖²))`` decreases as the two facet
    embeddings of the same entity move apart.

    Spherical mode adapts the same idea to directions: the penalty
    ``(1/α) log(1 + exp(α cos(x_i, x_j)))`` decreases as the two facet
    embeddings point away from each other.  (Eq. 12 of the paper keeps the
    minus sign of the Euclidean formula, which would *reward* aligned facets;
    we flip the sign so the loss matches the paper's stated intent of
    encouraging diversity among facet spaces — see DESIGN.md.)

    All ``K·(K−1)/2`` facet pairs are evaluated on a single stacked
    ``(K, B, D)`` tensor — two gathers and one batched pairwise op — rather
    than ``K²`` separate graph branches, so the graph size is constant in K.

    Parameters
    ----------
    facet_embeddings:
        Stacked tensor of shape ``(K, B, D)``, or a list of K tensors of
        shape ``(B, D)`` — the same batch of entities projected into each
        facet space.
    alpha:
        Scale hyperparameter (paper default 0.1).
    spherical:
        Select the cosine-based variant.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if isinstance(facet_embeddings, Tensor):
        stacked = facet_embeddings
    else:
        if len(facet_embeddings) < 2:
            return Tensor(0.0)
        stacked = Tensor.stack(facet_embeddings, axis=0)
    n_facets = stacked.shape[0]
    if n_facets < 2:
        return Tensor(0.0)

    pair_i, pair_j = np.triu_indices(n_facets, k=1)
    left = stacked[pair_i]    # (P, B, D)
    right = stacked[pair_j]   # (P, B, D)
    if spherical:
        closeness = F.cosine_similarity(left, right, axis=-1)       # (P, B)
        pairwise = F.softplus(closeness * alpha) * (1.0 / alpha)
    else:
        distance = F.squared_euclidean(left, right, axis=-1)        # (P, B)
        pairwise = F.softplus(distance * -alpha) * (1.0 / alpha)
    # Mean over the batch, summed over facet pairs (matches the historical
    # per-pair ``mean()`` accumulation exactly).
    return pairwise.mean(axis=1).sum()


def combined_objective(positive_similarity: Tensor, negative_similarity: Tensor,
                       margins: Union[np.ndarray, float],
                       user_facets: List[Tensor], item_facets: List[Tensor],
                       lambda_pull: float, lambda_facet: float,
                       alpha: float = 0.1, spherical: bool = False,
                       reduction: str = "sum") -> Tensor:
    """Full training objective of Eq. 11 (MAR) / Eq. 17 (MARS) for a batch.

    ``negative_similarity`` may be a ``(B, N)`` multi-negative block, in
    which case ``reduction`` selects the push aggregation (see
    :func:`push_loss`); the pull and facet-separating terms always operate
    on the ``B`` positives.
    """
    loss = push_loss(positive_similarity, negative_similarity, margins,
                     reduction=reduction)
    if lambda_pull:
        loss = loss + pull_loss(positive_similarity) * lambda_pull
    if lambda_facet:
        separation = facet_separating_loss(user_facets, alpha=alpha, spherical=spherical)
        separation = separation + facet_separating_loss(
            item_facets, alpha=alpha, spherical=spherical
        )
        loss = loss + separation * lambda_facet
    return loss


# --------------------------------------------------------------------------- #
# closed-form (NumPy) variants used by the fused training engine
# --------------------------------------------------------------------------- #
def _softplus_numpy(x: np.ndarray) -> np.ndarray:
    """``log(1 + exp(x))`` with the same stabilisation as :func:`F.softplus`."""
    return np.maximum(x, 0.0) + np.log(1.0 + np.exp(-np.abs(x)))


def _sigmoid_numpy(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid — the exact derivative of :func:`_softplus_numpy`."""
    return 1.0 / (1.0 + np.exp(-x))


def push_loss_numpy(positive_similarity: np.ndarray, negative_similarity: np.ndarray,
                    margins: Union[np.ndarray, float],
                    reduction: str = "sum"
                    ) -> Tuple[float, np.ndarray, np.ndarray]:
    """:func:`push_loss` with its gradients wrt the two similarity arrays.

    ``negative_similarity`` is ``(B,)`` or a ``(B, N)`` multi-negative block;
    ``positive_similarity`` is always ``(B,)``.  Returns
    ``(loss, d loss/d positive, d loss/d negative)`` with the negative
    gradient matching the input's shape.  The hinge uses the same
    strict-inequality subgradient (zero at the kink) as the autograd
    :meth:`~repro.autograd.tensor.Tensor.clip_min` op; the ``"hardest"``
    reduction routes the whole gradient to the *first* maximal violation of
    each row at ties, matching :meth:`~repro.autograd.tensor.Tensor.max`.
    """
    if reduction not in ("sum", "hardest"):
        raise ValueError(f"reduction must be 'sum' or 'hardest', got {reduction!r}")
    batch = positive_similarity.shape[0]
    if negative_similarity.ndim == 1:
        violations = margins - positive_similarity + negative_similarity
        active = violations > 0
        loss = float(np.sum(violations * active) / batch)
        grad_negative = active / batch
        return loss, -grad_negative, grad_negative
    violations = ((margins - positive_similarity)[:, None]
                  + negative_similarity)                              # (B, N)
    if reduction == "hardest":
        hardest = np.argmax(violations, axis=1)
        selected = np.take_along_axis(violations, hardest[:, None], axis=1)[:, 0]
        active = selected > 0
        loss = float(np.sum(selected * active) / batch)
        grad_negative = np.zeros_like(violations)
        np.put_along_axis(grad_negative, hardest[:, None],
                          (active / batch)[:, None], axis=1)
    else:
        active = violations > 0
        loss = float(np.sum(violations * active) / batch)
        grad_negative = active / batch
    return loss, -grad_negative.sum(axis=1), grad_negative


def bpr_loss_numpy(positive_scores: np.ndarray, negative_scores: np.ndarray,
                   reduction: str = "sum"
                   ) -> Tuple[float, np.ndarray, np.ndarray]:
    """:func:`repro.autograd.functional.bpr_loss` with its analytic gradients.

    ``negative_scores`` is ``(B,)`` or a ``(B, N)`` multi-negative block;
    with ``reduction="sum"`` every negative's ``−log σ(pos − neg)`` term is
    summed per example (mean over the batch), with ``"hardest"`` only the
    highest-scoring negative of each example contributes.  Returns
    ``(loss, d loss/d positive, d loss/d negative)``.
    """
    if reduction not in ("sum", "hardest"):
        raise ValueError(f"reduction must be 'sum' or 'hardest', got {reduction!r}")
    batch = positive_scores.shape[0]
    if negative_scores.ndim == 1:
        diff = positive_scores - negative_scores
        loss = float(np.sum(_softplus_numpy(-diff)) / batch)
        grad_diff = -_sigmoid_numpy(-diff) / batch
        return loss, grad_diff, -grad_diff
    if reduction == "hardest":
        hardest = np.argmax(negative_scores, axis=1)
        selected = np.take_along_axis(negative_scores, hardest[:, None], axis=1)[:, 0]
        diff = positive_scores - selected
        loss = float(np.sum(_softplus_numpy(-diff)) / batch)
        grad_diff = -_sigmoid_numpy(-diff) / batch
        grad_negative = np.zeros_like(negative_scores)
        np.put_along_axis(grad_negative, hardest[:, None],
                          -grad_diff[:, None], axis=1)
        return loss, grad_diff, grad_negative
    diff = positive_scores[:, None] - negative_scores                 # (B, N)
    loss = float(np.sum(_softplus_numpy(-diff)) / batch)
    grad_diff = -_sigmoid_numpy(-diff) / batch
    return loss, grad_diff.sum(axis=1), -grad_diff


def pull_loss_numpy(positive_similarity: np.ndarray) -> Tuple[float, np.ndarray]:
    """:func:`pull_loss` with its gradient wrt the positive similarities."""
    batch = positive_similarity.shape[0]
    loss = float(-np.sum(positive_similarity) / batch)
    return loss, np.full(batch, -1.0 / batch)


def facet_separating_loss_numpy(stacked: np.ndarray, alpha: float = 0.1,
                                spherical: bool = False
                                ) -> Tuple[float, np.ndarray]:
    """:func:`facet_separating_loss` with its gradient, on a ``(K, B, D)`` stack.

    Works on the all-pairs Gram tensor ``G_{kj} = x_k · x_j`` instead of
    gathered facet pairs, so both the value and the gradient come out of two
    ``K²·B·D`` contractions plus cheap ``(K, K, B)`` elementwise algebra.

    Derivation (per facet pair ``(k, j)``, per batch row, mean over the batch
    of size B):

    * Euclidean — with ``d = ‖x_k − x_j‖² = G_kk + G_jj − 2 G_kj`` the
      pairwise term is ``softplus(−α d)/α``, so ``∂/∂d = −σ(−α d)`` and
      ``∂d/∂x_k = 2 (x_k − x_j)``; summing over partners j with the
      symmetric, zero-diagonal coefficients ``C_kj = −σ(−α d_kj)/B`` gives
      ``∂L/∂x_k = 2 (Σ_j C_kj) x_k − 2 Σ_j C_kj x_j``;
    * spherical — with ``c = cos(x_k, x_j) = G_kj/(n_k n_j)`` (ε-stabilised
      norms, matching :func:`F.cosine_similarity`) the term is
      ``softplus(α c)/α``, so ``∂/∂c = σ(α c)`` and
      ``∂c/∂x_k = x_j/(n_k n_j) − c·x_k/n_k²``, accumulated the same way.
    """
    n_facets, batch = stacked.shape[0], stacked.shape[1]
    grad = np.zeros_like(stacked)
    if n_facets < 2:
        return 0.0, grad
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")

    gram = np.einsum("kbd,jbd->kjb", stacked, stacked)              # (K, K, B)
    diagonal = np.arange(n_facets)
    squared = gram[diagonal, diagonal]                              # (K, B)
    pair_i, pair_j = np.triu_indices(n_facets, k=1)
    if spherical:
        squared = squared + _EPS
        inv_norms = 1.0 / np.sqrt(squared[:, None, :] * squared[None, :, :])
        closeness = gram * inv_norms                                # (K, K, B)
        loss = float(np.sum(_softplus_numpy(
            alpha * closeness[pair_i, pair_j])) / (alpha * batch))
        coef = _sigmoid_numpy(alpha * closeness) / batch
        coef[diagonal, diagonal] = 0.0
        grad = np.einsum("kjb,jbd->kbd", coef * inv_norms, stacked)
        grad -= (np.sum(coef * closeness, axis=1)
                 / squared)[..., None] * stacked
    else:
        distances = squared[:, None, :] + squared[None, :, :] - 2.0 * gram
        loss = float(np.sum(_softplus_numpy(
            -alpha * distances[pair_i, pair_j])) / (alpha * batch))
        coef = -_sigmoid_numpy(-alpha * distances) / batch
        coef[diagonal, diagonal] = 0.0
        grad = 2.0 * (np.sum(coef, axis=1)[..., None] * stacked
                      - np.einsum("kjb,jbd->kbd", coef, stacked))
    return loss, grad
