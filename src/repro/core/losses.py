"""Multi-facet optimization objectives (paper Section III-C and IV-A).

* :func:`push_loss` — the relative large-margin objective with adaptive
  margins (Eq. 8 / Eq. 15);
* :func:`pull_loss` — the absolute pulling regulariser on positive pairs
  (Eq. 9 / Eq. 16);
* :func:`facet_separating_loss` — encourages the facet-specific embeddings of
  the same entity to spread out across spaces (Eq. 6 / Eq. 12).

All functions return scalar tensors and are shared by MAR (Euclidean mode)
and MARS (spherical mode).
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F


def push_loss(positive_similarity: Tensor, negative_similarity: Tensor,
              margins: Union[np.ndarray, float]) -> Tensor:
    """Relative "pushing" objective ``[γ_u − g(u,v_p) + g(u,v_q)]₊`` (Eq. 8).

    Parameters
    ----------
    positive_similarity, negative_similarity:
        Cross-facet similarities of the positive and negative pairs in the
        batch, shape ``(B,)``.
    margins:
        Scalar margin or per-example adaptive margins γ_u, shape ``(B,)``.
    """
    return F.hinge_loss(positive_similarity, negative_similarity, margins)


def pull_loss(positive_similarity: Tensor) -> Tensor:
    """Absolute "pulling" objective ``−g(u, v_p)`` averaged over the batch (Eq. 9)."""
    return (positive_similarity * -1.0).mean()


def facet_separating_loss(facet_embeddings: List[Tensor], alpha: float = 0.1,
                          spherical: bool = False) -> Tensor:
    """Spread the facet-specific embeddings of each entity across spaces.

    Euclidean mode implements Eq. 6: for every pair of facets (i, j) the loss
    ``(1/α) log(1 + exp(−α ‖x_i − x_j‖²))`` decreases as the two facet
    embeddings of the same entity move apart.

    Spherical mode adapts the same idea to directions: the penalty
    ``(1/α) log(1 + exp(α cos(x_i, x_j)))`` decreases as the two facet
    embeddings point away from each other.  (Eq. 12 of the paper keeps the
    minus sign of the Euclidean formula, which would *reward* aligned facets;
    we flip the sign so the loss matches the paper's stated intent of
    encouraging diversity among facet spaces — see DESIGN.md.)

    Parameters
    ----------
    facet_embeddings:
        List of K tensors of shape ``(B, D)`` — the same batch of entities
        projected into each facet space.
    alpha:
        Scale hyperparameter (paper default 0.1).
    spherical:
        Select the cosine-based variant.
    """
    n_facets = len(facet_embeddings)
    if n_facets < 2:
        return Tensor(0.0)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")

    total = None
    for i in range(n_facets):
        for j in range(i + 1, n_facets):
            if spherical:
                closeness = F.cosine_similarity(
                    facet_embeddings[i], facet_embeddings[j], axis=-1
                )
                pairwise = F.softplus(closeness * alpha) * (1.0 / alpha)
            else:
                distance = F.squared_euclidean(
                    facet_embeddings[i], facet_embeddings[j], axis=-1
                )
                pairwise = F.softplus(distance * -alpha) * (1.0 / alpha)
            term = pairwise.mean()
            total = term if total is None else total + term
    return total


def combined_objective(positive_similarity: Tensor, negative_similarity: Tensor,
                       margins: Union[np.ndarray, float],
                       user_facets: List[Tensor], item_facets: List[Tensor],
                       lambda_pull: float, lambda_facet: float,
                       alpha: float = 0.1, spherical: bool = False) -> Tensor:
    """Full training objective of Eq. 11 (MAR) / Eq. 17 (MARS) for a batch."""
    loss = push_loss(positive_similarity, negative_similarity, margins)
    if lambda_pull:
        loss = loss + pull_loss(positive_similarity) * lambda_pull
    if lambda_facet:
        separation = facet_separating_loss(user_facets, alpha=alpha, spherical=spherical)
        separation = separation + facet_separating_loss(
            item_facets, alpha=alpha, spherical=spherical
        )
        loss = loss + separation * lambda_facet
    return loss
