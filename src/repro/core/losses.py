"""Multi-facet optimization objectives (paper Section III-C and IV-A).

* :func:`push_loss` — the relative large-margin objective with adaptive
  margins (Eq. 8 / Eq. 15);
* :func:`pull_loss` — the absolute pulling regulariser on positive pairs
  (Eq. 9 / Eq. 16);
* :func:`facet_separating_loss` — encourages the facet-specific embeddings of
  the same entity to spread out across spaces (Eq. 6 / Eq. 12).

All functions return scalar tensors and are shared by MAR (Euclidean mode)
and MARS (spherical mode).

Each objective also has a plain NumPy ``*_numpy`` variant that returns the
loss value *and* its analytic gradient in one pass.  These closed forms back
the fused training engine (:mod:`repro.core.fused`); they are tested for
~1e-10 agreement against the autograd path, and use the same epsilon
conventions as :mod:`repro.autograd.functional` so the two paths differ only
by floating-point rounding.
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F

_EPS = 1e-12


def push_loss(positive_similarity: Tensor, negative_similarity: Tensor,
              margins: Union[np.ndarray, float]) -> Tensor:
    """Relative "pushing" objective ``[γ_u − g(u,v_p) + g(u,v_q)]₊`` (Eq. 8).

    Parameters
    ----------
    positive_similarity, negative_similarity:
        Cross-facet similarities of the positive and negative pairs in the
        batch, shape ``(B,)``.
    margins:
        Scalar margin or per-example adaptive margins γ_u, shape ``(B,)``.
    """
    return F.hinge_loss(positive_similarity, negative_similarity, margins)


def pull_loss(positive_similarity: Tensor) -> Tensor:
    """Absolute "pulling" objective ``−g(u, v_p)`` averaged over the batch (Eq. 9)."""
    return (positive_similarity * -1.0).mean()


def facet_separating_loss(facet_embeddings: Union[Tensor, List[Tensor]],
                          alpha: float = 0.1, spherical: bool = False) -> Tensor:
    """Spread the facet-specific embeddings of each entity across spaces.

    Euclidean mode implements Eq. 6: for every pair of facets (i, j) the loss
    ``(1/α) log(1 + exp(−α ‖x_i − x_j‖²))`` decreases as the two facet
    embeddings of the same entity move apart.

    Spherical mode adapts the same idea to directions: the penalty
    ``(1/α) log(1 + exp(α cos(x_i, x_j)))`` decreases as the two facet
    embeddings point away from each other.  (Eq. 12 of the paper keeps the
    minus sign of the Euclidean formula, which would *reward* aligned facets;
    we flip the sign so the loss matches the paper's stated intent of
    encouraging diversity among facet spaces — see DESIGN.md.)

    All ``K·(K−1)/2`` facet pairs are evaluated on a single stacked
    ``(K, B, D)`` tensor — two gathers and one batched pairwise op — rather
    than ``K²`` separate graph branches, so the graph size is constant in K.

    Parameters
    ----------
    facet_embeddings:
        Stacked tensor of shape ``(K, B, D)``, or a list of K tensors of
        shape ``(B, D)`` — the same batch of entities projected into each
        facet space.
    alpha:
        Scale hyperparameter (paper default 0.1).
    spherical:
        Select the cosine-based variant.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if isinstance(facet_embeddings, Tensor):
        stacked = facet_embeddings
    else:
        if len(facet_embeddings) < 2:
            return Tensor(0.0)
        stacked = Tensor.stack(facet_embeddings, axis=0)
    n_facets = stacked.shape[0]
    if n_facets < 2:
        return Tensor(0.0)

    pair_i, pair_j = np.triu_indices(n_facets, k=1)
    left = stacked[pair_i]    # (P, B, D)
    right = stacked[pair_j]   # (P, B, D)
    if spherical:
        closeness = F.cosine_similarity(left, right, axis=-1)       # (P, B)
        pairwise = F.softplus(closeness * alpha) * (1.0 / alpha)
    else:
        distance = F.squared_euclidean(left, right, axis=-1)        # (P, B)
        pairwise = F.softplus(distance * -alpha) * (1.0 / alpha)
    # Mean over the batch, summed over facet pairs (matches the historical
    # per-pair ``mean()`` accumulation exactly).
    return pairwise.mean(axis=1).sum()


def combined_objective(positive_similarity: Tensor, negative_similarity: Tensor,
                       margins: Union[np.ndarray, float],
                       user_facets: List[Tensor], item_facets: List[Tensor],
                       lambda_pull: float, lambda_facet: float,
                       alpha: float = 0.1, spherical: bool = False) -> Tensor:
    """Full training objective of Eq. 11 (MAR) / Eq. 17 (MARS) for a batch."""
    loss = push_loss(positive_similarity, negative_similarity, margins)
    if lambda_pull:
        loss = loss + pull_loss(positive_similarity) * lambda_pull
    if lambda_facet:
        separation = facet_separating_loss(user_facets, alpha=alpha, spherical=spherical)
        separation = separation + facet_separating_loss(
            item_facets, alpha=alpha, spherical=spherical
        )
        loss = loss + separation * lambda_facet
    return loss


# --------------------------------------------------------------------------- #
# closed-form (NumPy) variants used by the fused training engine
# --------------------------------------------------------------------------- #
def _softplus_numpy(x: np.ndarray) -> np.ndarray:
    """``log(1 + exp(x))`` with the same stabilisation as :func:`F.softplus`."""
    return np.maximum(x, 0.0) + np.log(1.0 + np.exp(-np.abs(x)))


def _sigmoid_numpy(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid — the exact derivative of :func:`_softplus_numpy`."""
    return 1.0 / (1.0 + np.exp(-x))


def push_loss_numpy(positive_similarity: np.ndarray, negative_similarity: np.ndarray,
                    margins: Union[np.ndarray, float]
                    ) -> Tuple[float, np.ndarray, np.ndarray]:
    """:func:`push_loss` with its gradients wrt the two similarity vectors.

    Returns ``(loss, d loss/d positive, d loss/d negative)``; the hinge uses
    the same strict-inequality subgradient (zero at the kink) as the autograd
    :meth:`~repro.autograd.tensor.Tensor.clip_min` op.
    """
    violations = margins - positive_similarity + negative_similarity
    active = violations > 0
    batch = positive_similarity.shape[0]
    loss = float(np.sum(violations * active) / batch)
    grad_negative = active / batch
    return loss, -grad_negative, grad_negative


def pull_loss_numpy(positive_similarity: np.ndarray) -> Tuple[float, np.ndarray]:
    """:func:`pull_loss` with its gradient wrt the positive similarities."""
    batch = positive_similarity.shape[0]
    loss = float(-np.sum(positive_similarity) / batch)
    return loss, np.full(batch, -1.0 / batch)


def facet_separating_loss_numpy(stacked: np.ndarray, alpha: float = 0.1,
                                spherical: bool = False
                                ) -> Tuple[float, np.ndarray]:
    """:func:`facet_separating_loss` with its gradient, on a ``(K, B, D)`` stack.

    Works on the all-pairs Gram tensor ``G_{kj} = x_k · x_j`` instead of
    gathered facet pairs, so both the value and the gradient come out of two
    ``K²·B·D`` contractions plus cheap ``(K, K, B)`` elementwise algebra.

    Derivation (per facet pair ``(k, j)``, per batch row, mean over the batch
    of size B):

    * Euclidean — with ``d = ‖x_k − x_j‖² = G_kk + G_jj − 2 G_kj`` the
      pairwise term is ``softplus(−α d)/α``, so ``∂/∂d = −σ(−α d)`` and
      ``∂d/∂x_k = 2 (x_k − x_j)``; summing over partners j with the
      symmetric, zero-diagonal coefficients ``C_kj = −σ(−α d_kj)/B`` gives
      ``∂L/∂x_k = 2 (Σ_j C_kj) x_k − 2 Σ_j C_kj x_j``;
    * spherical — with ``c = cos(x_k, x_j) = G_kj/(n_k n_j)`` (ε-stabilised
      norms, matching :func:`F.cosine_similarity`) the term is
      ``softplus(α c)/α``, so ``∂/∂c = σ(α c)`` and
      ``∂c/∂x_k = x_j/(n_k n_j) − c·x_k/n_k²``, accumulated the same way.
    """
    n_facets, batch = stacked.shape[0], stacked.shape[1]
    grad = np.zeros_like(stacked)
    if n_facets < 2:
        return 0.0, grad
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")

    gram = np.einsum("kbd,jbd->kjb", stacked, stacked)              # (K, K, B)
    diagonal = np.arange(n_facets)
    squared = gram[diagonal, diagonal]                              # (K, B)
    pair_i, pair_j = np.triu_indices(n_facets, k=1)
    if spherical:
        squared = squared + _EPS
        inv_norms = 1.0 / np.sqrt(squared[:, None, :] * squared[None, :, :])
        closeness = gram * inv_norms                                # (K, K, B)
        loss = float(np.sum(_softplus_numpy(
            alpha * closeness[pair_i, pair_j])) / (alpha * batch))
        coef = _sigmoid_numpy(alpha * closeness) / batch
        coef[diagonal, diagonal] = 0.0
        grad = np.einsum("kjb,jbd->kbd", coef * inv_norms, stacked)
        grad -= (np.sum(coef * closeness, axis=1)
                 / squared)[..., None] * stacked
    else:
        distances = squared[:, None, :] + squared[None, :, :] - 2.0 * gram
        loss = float(np.sum(_softplus_numpy(
            -alpha * distances[pair_i, pair_j])) / (alpha * batch))
        coef = -_sigmoid_numpy(-alpha * distances) / batch
        coef[diagonal, diagonal] = 0.0
        grad = 2.0 * (np.sum(coef, axis=1)[..., None] * stacked
                      - np.einsum("kjb,jbd->kbd", coef, stacked))
    return loss, grad
