"""Fused closed-form training kernels for the triplet-trained models.

One :func:`fused_forward_backward` call evaluates the combined objective of
Eq. 11 (MAR) / Eq. 17 (MARS) — push + pull + facet-separating terms — *and*
its analytic gradients for every parameter touched by a triplet batch, in a
handful of ``einsum``/BLAS calls with no computation-graph construction.  It
is the default training path (``MARConfig.engine = "fused"``); the autograd
engine of :mod:`repro.autograd` is retained as the slow reference
implementation, and the two agree to ~1e-10 (see
``tests/test_fused_engine.py``).

Training engines
----------------
Every triplet-trained model in the repository exposes an ``engine`` knob
with the same contract:

* ``"autograd"`` is the *reference* implementation — the loss is built as a
  reverse-mode computation graph (:mod:`repro.autograd`) and walked
  backward.  It is the ground truth the tests certify against (ultimately
  via finite differences) but pays Python-level graph overhead per op.
* ``"fused"`` evaluates hand-derived analytic gradients of the same
  objective with a few large NumPy/BLAS calls, scatter-sums duplicate rows
  onto unique rows (:func:`scatter_rows`) and applies sparse row-wise
  optimizer updates (``Optimizer.step_rows`` / ``step_dense``).  Norm
  constraints are re-applied only to the rows a step touched.

The two engines must agree to ~1e-10 per step so that seeded training runs
produce identical loss curves up to float tolerance — that equivalence is
what lets the fused path be the default everywhere while the autograd path
stays the parity oracle.

To add a fused engine for a new model: (1) write its ``_batch_loss``
autograd reference first; (2) express the forward as gathers plus the
shared kernels below (:func:`hinge_distance_push` for hinge-of-distance
pushes, :func:`repro.core.losses.push_loss_numpy` /
:func:`repro.core.losses.bpr_loss_numpy` for score-level losses); (3)
scatter per-example gradients onto unique rows with :func:`scatter_rows`
and apply them through ``optimizer.step_rows``; (4) extend the parity
matrix in ``tests/test_fused_baselines.py`` with the new model.

Multi-negative batches: every kernel accepts negatives of shape ``(B,)``
(classic triplets) or ``(B, N)`` blocks drawn by
``TripletBatcher(n_negatives=N)``, reduced per example either by summing
all negatives' hinges (``reduction="sum"``) or by keeping only the most
violating one (``reduction="hardest"``, first-maximum subgradient at
ties).

Training runtime
----------------
The epoch loop around these kernels is owned by one shared runtime,
:class:`repro.training.loop.TrainingLoop`: models implement the
``TrainableModel`` protocol (``make_batcher`` / ``make_optimizer`` /
``train_step`` plus the ``_on_epoch_start`` hook) and delegate their whole
``_fit`` body to it.  The runtime's *executor* contract:

* ``executor="serial"`` — the classic single-threaded loop, loop-for-loop
  bit-identical to the pre-runtime per-model loops (same batcher streams,
  same step order over the current kernels);
* ``executor="sharded"`` — Hogwild-style parallel epochs: users are
  partitioned into ``n_shards`` disjoint degree-balanced shards, each
  shard trains its own ``TripletBatcher`` (restricted via ``user_subset``,
  seeded by an independent ``np.random.SeedSequence.spawn`` stream) on a
  thread pool, with **no locks** around parameter updates.

The Hogwild safety argument leans directly on this module's design: a
fused step applies row-restricted updates (``optimizer.step_rows`` after
:func:`scatter_rows`), user-side rows are owned by exactly one shard, and
item-row collisions between shards are rare, sparse and tolerated the way
Hogwild tolerates shared-coordinate races — while the BLAS-heavy kernels
release the GIL so the threads genuinely overlap.  The exception to
"rare" is the small *dense* shared parameters of the multifacet models —
the ``(K, D, D)`` projection stacks, updated by every shard on every step
via in-place ``optimizer.step_dense`` — which race elementwise at
constant contention; the updates are tiny relative to the tensors, lost
elements are bounded-staleness noise of the usual Hogwild kind, and the
4-shard statistical parity tests cover exactly this regime, but it is the
main reason ``n_shards>1`` is statistical rather than bitwise.  The
autograd engine does not satisfy any of this (dense shared ``.grad``
buffers, whole-table optimizer steps), so ``n_shards > 1`` requires
``engine="fused"``.

Determinism: ``n_shards=1`` sharded is bit-identical to serial (same root
stream, no subset restriction); ``n_shards>1`` reproduces serial loss
curves only statistically (a few percent on epoch means) and is not
run-to-run reproducible, because thread interleaving orders the item-row
updates.  Sharding pays off when per-epoch compute dominates — catalogue
scale tables, several CPU cores, big batches; at toy scale (or on a single
core) thread overhead eats the gain and serial remains the right default.

Two checkers certify this contract on every ordinary test run (see
``repro.analysis.static`` and the "Enforced invariants" section of
``ROADMAP.md``): the static ``HOGWILD-SAFETY`` rule proves the update
*shape* — fused-step/optimizer code never rebinds a parameter table and
never falls back to a whole-table dense pass — while the runtime
:class:`~repro.training.loop.HogwildWriteAuditor` (``audit=True`` /
``REPRO_AUDIT=1``) proves the row *traffic* — shards write pairwise
disjoint user rows.  ``DTYPE-DISCIPLINE`` additionally pins every
allocation in this module to an explicit dtype, the precondition for the
planned float32 kernel backend.

Forward recap for a batch of B triplets ``(u, v_p, v_q)`` with K facets of
dimension D:

* facet projections (Eq. 1-2): ``U_k = u Φ_k``, ``V_k = v Ψ_k``, computed as
  one ``(B, D) × (K, D, D) → (K, B, D)`` einsum per entity role;
* per-facet similarity: ``s_k = −‖U_k − V_k‖²`` (Eq. 3, MAR) or
  ``s_k = cos(U_k, V_k)`` (Eq. 13, MARS; ε-stabilised norms matching
  :func:`repro.autograd.functional.cosine_similarity`);
* cross-facet aggregation (Eq. 4 / Eq. 14): ``g = Σ_k softmax(Θ_u)_k s_k``;
* loss: ``mean[γ_u − g_p + g_q]₊ + λ_pull·mean(−g_p) + λ_facet·(sep(U) +
  sep(V_p))`` with the facet-separating term of Eq. 6 / Eq. 12.

Backward, derived by hand and evaluated in reverse:

* hinge mask ``m_b = 1[γ_b − g_p + g_q > 0]`` gives
  ``∂L/∂g_p = (−m_b − λ_pull)/B`` and ``∂L/∂g_q = m_b/B``;
* through the Θ-weighted sum: ``∂L/∂s_{kb} = w_{bk}·∂L/∂g_b`` and
  ``∂L/∂w_{bk} = s^p_{kb}·∂L/∂g_p + s^q_{kb}·∂L/∂g_q``, then the softmax
  Jacobian ``∂L/∂Θ = w ⊙ (∂L/∂w − ⟨∂L/∂w, w⟩)``;
* through the similarity: Euclidean ``∂s/∂U_k = −2(U_k − V_k)``; spherical
  ``∂c/∂U_k = V_k/(n_U n_V) − c·U_k/n_U²``;
* facet-separating gradients come from
  :func:`repro.core.losses.facet_separating_loss_numpy`;
* through the projections: ``∂L/∂u = Σ_k G_k Φ_kᵀ`` and ``∂L/∂Φ_k = uᵀ G_k``
  where ``G_k`` accumulates every term's gradient wrt ``U_k`` — two einsums
  per entity role.

Row gradients for duplicate users/items inside a batch are scatter-summed
onto unique rows, so optimizers can apply sparse row updates without ever
materialising full ``(n_users, D)`` gradient buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.losses import (
    facet_separating_loss_numpy,
    pull_loss_numpy,
    push_loss_numpy,
)
from repro.core.similarity import softmax_numpy

_EPS = 1e-12


@dataclass
class FusedStepResult:
    """Loss and per-parameter gradients of one fused forward+backward pass.

    Embedding and facet-logit gradients are reported per *unique* row
    (duplicates inside the batch already scatter-summed); the projection
    gradients are dense ``(K, D, D)`` stacks, which are tiny.
    """

    loss: float
    #: Unique user ids of the batch, ascending — rows of ``user_grad``
    #: (for the user-embedding table) and ``logit_grad`` (for Θ).
    user_rows: np.ndarray
    user_grad: np.ndarray
    logit_grad: np.ndarray
    #: Unique item ids among positives ∪ negatives — rows of ``item_grad``.
    item_rows: np.ndarray
    item_grad: np.ndarray
    user_projection_grad: np.ndarray
    item_projection_grad: np.ndarray


#: Above this many candidate rows (``indices.max() + 1``) the dense
#: span-space segment sum would zero-fill a buffer much larger than the
#: batch, so :func:`scatter_rows` switches to the compacted unique-row
#: strategy.  At the 240 × 300 delicious preset every scatter stays on the
#: dense path (~1.7x faster than the former ``argsort`` + ``reduceat``
#: sums that dominated its fused steps); catalogue-scale tables take the
#: compact path.
_DENSE_SCATTER_MAX_ROWS = 2048


def _segment_sum(keys: np.ndarray, grad: np.ndarray, n_segments: int) -> np.ndarray:
    """Sum per-example gradient blocks per segment key, in input order.

    One flattened ``np.bincount`` call per gradient block: element ``(b, j)``
    of ``grad`` accumulates into slot ``(keys[b], j)``.  ``bincount`` adds
    weights sequentially in input order, which makes the two strategies of
    :func:`scatter_rows` produce bitwise-identical sums.
    """
    flat = grad.reshape(keys.size, -1)
    cols = flat.shape[1]
    if cols == 1:
        dense = np.bincount(keys, weights=flat[:, 0], minlength=n_segments)
        return dense.reshape((n_segments,) + grad.shape[1:])
    slot_keys = keys[:, None] * cols + np.arange(cols, dtype=np.int64)
    dense = np.bincount(slot_keys.ravel(), weights=flat.ravel(),
                        minlength=n_segments * cols)
    return dense.reshape((n_segments,) + grad.shape[1:])


def scatter_rows(indices: np.ndarray, *grads: np.ndarray):
    """Sum per-example gradient blocks onto unique rows (embedding-lookup VJP).

    Returns ``(rows, summed_0, summed_1, ...)`` with ``rows`` ascending.
    Two strategies, chosen by the candidate-row span ``indices.max() + 1``:

    * **dense span space** (small tables, e.g. the delicious preset): one
      flattened ``np.bincount`` per gradient block over the whole span,
      then a gather of the occupied rows — no sort at all;
    * **compact unique space** (catalogue-scale tables): ``np.unique``
      compresses the batch onto its unique rows first, so the ``bincount``
      buffer is ``O(batch)`` instead of ``O(table)``.

    Both accumulate duplicate rows in batch order (``bincount`` semantics),
    so they agree *bitwise* — a training run whose batches straddle the
    span threshold never changes association order mid-run.
    """
    span = int(indices.max()) + 1
    if span <= _DENSE_SCATTER_MAX_ROWS:
        rows = np.flatnonzero(np.bincount(indices, minlength=span))
        return (rows, *(_segment_sum(indices, grad, span)[rows] for grad in grads))
    rows, inverse = np.unique(indices, return_inverse=True)
    return (rows, *(_segment_sum(inverse, grad, rows.size) for grad in grads))


# Backwards-compatible alias (pre-kernel-layer name).
_scatter_rows = scatter_rows


def negatives_matrix(negatives: np.ndarray) -> np.ndarray:
    """Normalise a negative-index array to a ``(B, N)`` block.

    ``TripletBatcher`` emits ``(B,)`` for ``n_negatives=1`` and ``(B, N)``
    blocks otherwise; the fused kernels always work on the 2-D view.
    """
    negatives = np.asarray(negatives, dtype=np.int64)
    if negatives.ndim == 1:
        return negatives[:, None]
    if negatives.ndim != 2:
        raise ValueError(f"negatives must be (B,) or (B, N), got shape "
                         f"{negatives.shape}")
    return negatives


def hinge_distance_push(pos_diff: np.ndarray, neg_diff: np.ndarray,
                        margins: Union[np.ndarray, float],
                        reduction: str = "sum"):
    """Hinge push on squared-Euclidean distances, differentiated to the diffs.

    The shared shape of CML / TransCF / SML / MetricF's ranking terms:
    ``red_n [margin + ‖pos_diff‖² − ‖neg_diff_n‖²]₊`` averaged over the
    batch, where ``pos_diff`` (shape ``(B, D)``) and ``neg_diff`` (shape
    ``(B, N, D)``) are whatever difference vectors the model's geometry
    produces (plain ``u − v`` for CML, translated ``u + r − v`` for
    TransCF, …).  Equivalent to :func:`repro.core.losses.push_loss_numpy`
    on the similarity scores ``−‖·‖²``.

    Returns ``(loss, grad_pos_diff, grad_neg_diff, grad_margin)`` — the
    gradients wrt the two diff blocks (same shapes) and wrt a per-example
    margin (shape ``(B,)``; zero-filled when the margin is a constant, used
    by SML's learnable margins).
    """
    pos_dist = np.einsum("bd,bd->b", pos_diff, pos_diff)
    neg_dist = np.einsum("bnd,bnd->bn", neg_diff, neg_diff)
    loss, grad_pos_score, grad_neg_score = push_loss_numpy(
        -pos_dist, -neg_dist, margins, reduction=reduction)
    # scores are −distances, and ∂‖x‖²/∂x = 2x.
    grad_pos_diff = (-2.0 * grad_pos_score)[:, None] * pos_diff
    grad_neg_diff = (-2.0 * grad_neg_score)[..., None] * neg_diff
    # ∂violation/∂margin = 1 wherever the hinge is active, i.e. −∂L/∂s_pos.
    return loss, grad_pos_diff, grad_neg_diff, -grad_pos_score


def fused_forward_backward(
    user_table: np.ndarray, item_table: np.ndarray,
    user_projections: np.ndarray, item_projections: np.ndarray,
    facet_logits: np.ndarray,
    users: np.ndarray, positives: np.ndarray, negatives: np.ndarray,
    margins: Union[np.ndarray, float],
    lambda_pull: float, lambda_facet: float, alpha: float, spherical: bool,
    reduction: str = "sum",
) -> FusedStepResult:
    """Loss and analytic gradients of Eq. 11 / Eq. 17 for one triplet batch.

    Parameters
    ----------
    user_table, item_table:
        Full embedding tables ``(n_users, D)`` / ``(n_items, D)``; only the
        batch rows are read.
    user_projections, item_projections:
        Facet projection stacks Φ and Ψ, shape ``(K, D, D)``.
    facet_logits:
        Facet-weight logits Θ, shape ``(n_users, K)``.
    users, positives:
        Triplet index arrays, shape ``(B,)``.
    negatives:
        Negative item ids, shape ``(B,)`` or a ``(B, N)`` multi-negative
        block.
    margins:
        Per-example margins γ_u (shape ``(B,)``) or a scalar margin.
    lambda_pull, lambda_facet, alpha, spherical:
        Objective hyperparameters (see :class:`~repro.core.config.MARConfig`).
    reduction:
        Push aggregation over a ``(B, N)`` negative block — ``"sum"`` or
        ``"hardest"`` (see :func:`repro.core.losses.push_loss_numpy`).
    """
    users = np.asarray(users, dtype=np.int64)
    positives = np.asarray(positives, dtype=np.int64)
    neg_matrix = negatives_matrix(negatives)                         # (B, N)
    batch = users.shape[0]
    n_negatives = neg_matrix.shape[1]
    slots = 1 + n_negatives

    user_emb = user_table[users]                                     # (B, D)
    # Positives and negatives share the Ψ projections, so the whole item
    # side runs through one stacked ((1+N)·B, D) block per BLAS call, laid
    # out slot-major: slot 0 holds the positives, slots 1..N one negative
    # column each.
    items_stacked = np.concatenate([positives, neg_matrix.T.reshape(-1)])
    item_emb = item_table[items_stacked]                             # ((1+N)B, D)

    # (1, B, D) × (K, D, D) → (K, B, D): one BLAS matmul per facet (the
    # broadcasted gufunc loop), much faster than the naive einsum kernel.
    user_facets = np.matmul(user_emb[None, :, :], user_projections)
    item_facets = np.matmul(item_emb[None, :, :], item_projections)  # (K, (1+N)B, D)

    weights = softmax_numpy(facet_logits[users], axis=-1)            # (B, K)

    # Per-facet similarities, with every item slot riding through each op as
    # one (K, 1+N, B) stack (t = 0 is the positive slot, t ≥ 1 the
    # negatives).  All (·, D) reductions go through contraction einsums, so
    # no (K, 1+N, B, D) products materialise on the spherical path.
    n_facets = user_projections.shape[0]
    dim = user_projections.shape[2]
    item_view = item_facets.reshape(n_facets, slots, batch, dim)
    dots = np.einsum("kbd,ktbd->ktb", user_facets, item_view)
    if spherical:
        user_sq = np.einsum("kbd,kbd->kb", user_facets, user_facets) + _EPS
        item_sq = np.einsum("ktbd,ktbd->ktb", item_view, item_view) + _EPS
        inv_norms = 1.0 / np.sqrt(user_sq[:, None, :] * item_sq)      # (K, 1+N, B)
        sims = dots * inv_norms
    else:
        diff = user_facets[:, None] - item_view                       # (K, 1+N, B, D)
        sims = -np.einsum("ktbd,ktbd->ktb", diff, diff)

    scores = np.einsum("ktb,bk->tb", sims, weights)                   # (1+N, B)
    pos_scores = scores[0]

    # ---------------------------------------------------------------- loss
    if n_negatives == 1:
        loss, grad_pos_scores, grad_neg = push_loss_numpy(
            pos_scores, scores[1], margins)
        grad_neg_slots = grad_neg[None]                               # (1, B)
    else:
        loss, grad_pos_scores, grad_neg = push_loss_numpy(
            pos_scores, scores[1:].T, margins, reduction=reduction)
        grad_neg_slots = grad_neg.T                                   # (N, B)
    if lambda_pull:
        pull_value, pull_grad = pull_loss_numpy(pos_scores)
        loss += lambda_pull * pull_value
        grad_pos_scores = grad_pos_scores + lambda_pull * pull_grad

    # ------------------------------------------------- backward: similarity
    # ∂L/∂s_{ktb} = w_{bk} · ∂L/∂g_{tb} for every similarity slot at once.
    grad_scores = np.concatenate(
        [grad_pos_scores[None], grad_neg_slots])                      # (1+N, B)
    grad_sims = weights.T[:, None, :] * grad_scores[None]             # (K, 1+N, B)

    if spherical:
        # ∂c/∂u = v/(‖u‖‖v‖) − c·u/‖u‖²; the u-side terms of every slot
        # are merged into one contraction over t plus a self term.
        coef_cross = grad_sims * inv_norms                            # (K, 1+N, B)
        coef_user = -np.einsum("ktb,ktb->kb", grad_sims, sims) / user_sq
        grad_user_facets = (np.einsum("ktb,ktbd->kbd", coef_cross, item_view)
                            + coef_user[..., None] * user_facets)     # (K, B, D)
        grad_item_view = (np.einsum("ktb,kbd->ktbd", coef_cross, user_facets)
                          - (grad_sims * sims / item_sq)[..., None] * item_view)
    else:
        # ∂(−‖u−v‖²)/∂u = −2(u−v), ∂/∂v = +2(u−v).
        grad_item_view = (2.0 * grad_sims)[..., None] * diff          # (K, 1+N, B, D)
        grad_user_facets = -grad_item_view.sum(axis=1)
    grad_item_facets = grad_item_view.reshape(n_facets, slots * batch, dim)

    # ------------------------------------------------ backward: Θ (softmax)
    grad_weights = np.einsum("ktb,tb->bk", sims, grad_scores)         # (B, K)
    grad_logits = weights * (
        grad_weights - np.sum(grad_weights * weights, axis=-1, keepdims=True)
    )

    # -------------------------------------- backward: facet separation term
    if lambda_facet and n_facets >= 2:
        # sep(U) + sep(V_p) in a single pass: the two stacks ride through one
        # (K, 2B, D) call whose batch mean divides by 2B instead of B, hence
        # the factor of two on the way out.
        sep_stack = np.concatenate([user_facets, item_facets[:, :batch]],
                                   axis=1)
        sep_value, sep_grad = facet_separating_loss_numpy(
            sep_stack, alpha=alpha, spherical=spherical)
        loss += (2.0 * lambda_facet) * sep_value
        grad_user_facets += (2.0 * lambda_facet) * sep_grad[:, :batch]
        grad_item_facets[:, :batch] += (2.0 * lambda_facet) * sep_grad[:, batch:]

    # ------------------------------------------------ backward: projections
    # U_k = u Φ_k  ⇒  ∂L/∂u = Σ_k G_k Φ_kᵀ, ∂L/∂Φ_k = uᵀ G_k — again two
    # broadcasted BLAS matmuls per entity role, with the item side stacked.
    grad_user_emb = np.matmul(grad_user_facets,
                              user_projections.swapaxes(1, 2)).sum(axis=0)
    grad_item_emb = np.matmul(grad_item_facets,
                              item_projections.swapaxes(1, 2)).sum(axis=0)
    user_projection_grad = np.matmul(user_emb.T[None, :, :], grad_user_facets)
    item_projection_grad = np.matmul(item_emb.T[None, :, :], grad_item_facets)

    # ------------------------------------------- scatter onto unique rows
    user_rows, user_grad, logit_grad = scatter_rows(
        users, grad_user_emb, grad_logits)
    item_rows, item_grad = scatter_rows(items_stacked, grad_item_emb)

    return FusedStepResult(
        loss=float(loss),
        user_rows=user_rows,
        user_grad=user_grad,
        logit_grad=logit_grad,
        item_rows=item_rows,
        item_grad=item_grad,
        user_projection_grad=user_projection_grad,
        item_projection_grad=item_projection_grad,
    )
