"""Shared implementation of the multi-facet recommender (MAR and MARS).

Both models share the parameterisation of Section III-A — universal user and
item embeddings, shared facet projection matrices Φ/Ψ and per-user facet
weights Θ — and the training loop over triplet batches.  They differ only in

* the per-facet similarity (negative squared Euclidean vs. cosine),
* the norm constraint (unit ball vs. unit sphere), and
* the optimizer (SGD with censoring vs. calibrated Riemannian SGD),

which the subclasses select through :meth:`_spherical`, :meth:`_make_optimizer`
and :meth:`_apply_constraints`.

Each training step runs on one of two engines (``config.engine``): the
default ``"fused"`` closed-form path of :mod:`repro.core.fused` — analytic
gradients plus sparse row-wise optimizer updates — or the ``"autograd"``
reverse-mode reference; they agree to ~1e-10 per step.

The epoch loop itself lives in the unified training runtime
(:class:`~repro.training.loop.TrainingLoop`); ``_fit`` builds the network
and delegates, which is also what provides ``executor="sharded"`` parallel
epochs and the resumable ``fit_more`` surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.autograd import Embedding, Module, Parameter, Tensor
from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.optim import Optimizer
from repro.core import losses
from repro.core.base import BaseRecommender
from repro.core.fused import fused_forward_backward
from repro.core.config import MARConfig
from repro.core.margins import adaptive_margins
from repro.core.similarity import (
    cross_facet_similarity,
    cross_facet_similarity_numpy,
    facet_candidate_scores,
    facet_similarities,
    facet_similarities_numpy,
    normalize_facets_numpy,
    project_facets,
    project_facets_numpy,
    softmax_numpy,
)
from repro.data.batching import TripletBatcher
from repro.data.interactions import InteractionMatrix
from repro.training.loop import RuntimeTrainedModel, TrainingLoop
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, ensure_rng

logger = get_logger("core.multifacet")


class _MultiFacetNetwork(Module):
    """Parameter container: universal embeddings, projections and facet weights."""

    def __init__(self, n_users: int, n_items: int, n_facets: int, dim: int,
                 spherical: bool, projection_noise: float, random_state) -> None:
        super().__init__()
        rng = ensure_rng(random_state)
        self.n_facets = n_facets
        self.user_embeddings = Embedding(n_users, dim, spherical=spherical,
                                         std=1.0 / np.sqrt(dim), random_state=rng)
        self.item_embeddings = Embedding(n_items, dim, spherical=spherical,
                                         std=1.0 / np.sqrt(dim), random_state=rng)
        self.user_projections = Parameter(
            init.identity_stack(n_facets, dim, noise=projection_noise, random_state=rng)
        )
        self.item_projections = Parameter(
            init.identity_stack(n_facets, dim, noise=projection_noise, random_state=rng)
        )
        # Facet-weight logits Θ_u; softmax-normalised per user at use time.
        self.facet_logits = Parameter(np.zeros((n_users, n_facets)))


class MultiFacetRecommender(RuntimeTrainedModel, BaseRecommender):
    """Common machinery of MAR and MARS (not exported directly)."""

    def __init__(self, config: Optional[MARConfig] = None, **overrides) -> None:
        super().__init__()
        if config is None:
            config = self._default_config(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.network: Optional[_MultiFacetNetwork] = None
        self.margins_: Optional[np.ndarray] = None
        self.loss_history_: List[float] = []

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #
    @staticmethod
    def _default_config(**overrides) -> MARConfig:  # pragma: no cover - interface
        raise NotImplementedError

    def _spherical(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def _make_optimizer(self, network: _MultiFacetNetwork) -> Optimizer:  # pragma: no cover
        raise NotImplementedError

    def _apply_constraints(self, network: _MultiFacetNetwork,
                           user_rows: Optional[np.ndarray] = None,
                           item_rows: Optional[np.ndarray] = None) -> None:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def _prepare_training(self, interactions: InteractionMatrix) -> None:
        """Build the network, margins and (unrun) runtime — ``_fit`` minus
        the epochs.  The checkpoint restore path calls this to reconstruct
        training state exactly as a fresh fit would, then overwrites
        parameters/optimizer/RNG streams from the checkpoint."""
        config = self.config
        self.network = _MultiFacetNetwork(
            n_users=interactions.n_users,
            n_items=interactions.n_items,
            n_facets=config.n_facets,
            dim=config.embedding_dim,
            spherical=self._spherical(),
            projection_noise=config.projection_noise,
            random_state=config.random_state,
        )
        # Enforce the norm constraint on the freshly initialised tables once:
        # training censors only the rows each batch touches, so rows that a
        # sparse run never samples must already satisfy Eq. 11 / Eq. 17
        # (Gaussian init can start outside the unit ball).
        self._apply_constraints(self.network)
        if config.adaptive_margin:
            self.margins_ = adaptive_margins(interactions, min_margin=config.min_margin)
        else:
            self.margins_ = np.full(interactions.n_users, config.margin)

        self.loss_history_ = []
        self.runtime_ = TrainingLoop(
            self, interactions,
            executor=config.executor,
            n_shards=config.n_shards,
            verbose=config.verbose,
            logger=logger,
        )

    def _fit(self, interactions: InteractionMatrix) -> None:
        self._prepare_training(interactions)
        self.runtime_.run(self.config.n_epochs)

    def _on_interactions_changed(self, old_n_users: int, n_users: int,
                                 old_n_items: int, n_items: int) -> None:
        """Streaming hook: extend per-id state living outside the network.

        The streaming trainer grows the embedding tables itself; this grows
        what it cannot see — the per-user margin vector, which is a plain
        array, not a parameter — and re-enforces the Eq. 11/17 norm
        constraint on the freshly grown rows, whose fold-in initialisation
        knows nothing about it.  Existing users keep their fit-time margins
        (a warm stream must not silently reshape the loss surface); new
        users get theirs from the current, already-appended matrix.
        """
        if self.margins_ is not None and n_users > self.margins_.shape[0]:
            old = int(self.margins_.shape[0])
            if self.config.adaptive_margin:
                grown = adaptive_margins(
                    self._train_interactions,
                    min_margin=self.config.min_margin)[old:n_users]
            else:
                grown = np.full(n_users - old, self.config.margin)
            self.margins_ = np.concatenate([self.margins_, grown])
        if self.network is not None and (n_users > old_n_users
                                         or n_items > old_n_items):
            empty = np.empty(0, dtype=np.int64)
            self._apply_constraints(
                self.network,
                user_rows=(np.arange(old_n_users, n_users)
                           if n_users > old_n_users else empty),
                item_rows=(np.arange(old_n_items, n_items)
                           if n_items > old_n_items else empty))

    # ------------------------------------------------------------------ #
    # TrainableModel protocol (consumed by the training runtime)
    # ------------------------------------------------------------------ #
    @property
    def random_state(self) -> RandomState:
        return self.config.random_state

    def make_batcher(self, interactions: InteractionMatrix, *,
                     user_subset: Optional[np.ndarray] = None,
                     random_state: RandomState = None) -> TripletBatcher:
        config = self.config
        return TripletBatcher(
            interactions,
            batch_size=config.batch_size,
            n_negatives=config.n_negatives,
            user_sampling=config.user_sampling,
            beta=config.beta,
            user_subset=user_subset,
            random_state=(config.random_state if random_state is None
                          else random_state),
        )

    def make_optimizer(self) -> Optimizer:
        return self._make_optimizer(self._require_network())

    def train_step(self, batch, optimizer: Optimizer) -> float:
        return self._train_step(batch, optimizer)

    def _on_epoch_start(self, epoch: int, interactions: InteractionMatrix) -> None:
        """Hook before each epoch (MAR/MARS need no per-epoch refresh)."""

    def _train_step(self, batch, optimizer: Optimizer) -> float:
        """One gradient step on a triplet batch; returns the batch loss.

        Dispatches on ``config.engine``: the default ``"fused"`` engine
        evaluates the closed-form gradients of :mod:`repro.core.fused` and
        applies sparse row-wise optimizer updates; ``"autograd"`` builds and
        walks the reverse-mode graph (the reference implementation).  The
        two agree to ~1e-10 per step, so seeded runs produce identical loss
        curves up to float tolerance.
        """
        if self.config.engine == "fused":
            return self._train_step_fused(batch, optimizer)
        return self._train_step_autograd(batch, optimizer)

    def _autograd_loss(self, batch) -> Tensor:
        """Build the autograd graph of the combined objective for a batch.

        Handles both classic ``(B,)`` negatives and ``(B, N)`` multi-negative
        blocks: the negative side is scored as ``B·N`` flattened triplets
        (users repeated per negative column) and reshaped back into a
        ``(B, N)`` score matrix for the reduction inside
        :func:`~repro.core.losses.combined_objective`.
        """
        network = self.network
        config = self.config

        user_emb = network.user_embeddings(batch.users)
        pos_emb = network.item_embeddings(batch.positives)

        user_facets = project_facets(user_emb, network.user_projections)
        pos_facets = project_facets(pos_emb, network.item_projections)

        weights = F.softmax(network.facet_logits.gather_rows(batch.users), axis=-1)
        spherical = self._spherical()

        pos_scores = cross_facet_similarity(
            facet_similarities(user_facets, pos_facets, spherical), weights
        )

        negatives = np.asarray(batch.negatives)
        if negatives.ndim == 1:
            neg_emb = network.item_embeddings(negatives)
            neg_facets = project_facets(neg_emb, network.item_projections)
            neg_scores = cross_facet_similarity(
                facet_similarities(user_facets, neg_facets, spherical), weights
            )
        else:
            batch_size, n_negatives = negatives.shape
            neg_users = np.repeat(np.asarray(batch.users), n_negatives)
            neg_user_facets = project_facets(
                network.user_embeddings(neg_users), network.user_projections)
            neg_emb = network.item_embeddings(negatives.reshape(-1))
            neg_facets = project_facets(neg_emb, network.item_projections)
            neg_weights = F.softmax(
                network.facet_logits.gather_rows(neg_users), axis=-1)
            neg_scores = cross_facet_similarity(
                facet_similarities(neg_user_facets, neg_facets, spherical),
                neg_weights,
            ).reshape(batch_size, n_negatives)

        margins = self.margins_[batch.users]
        return losses.combined_objective(
            pos_scores, neg_scores, margins,
            user_facets, pos_facets,
            lambda_pull=config.lambda_pull,
            lambda_facet=config.lambda_facet,
            alpha=config.alpha,
            spherical=spherical,
            reduction=config.negative_reduction,
        )

    def _train_step_autograd(self, batch, optimizer: Optimizer) -> float:
        """Reference engine: reverse-mode graph plus dense optimizer step."""
        loss = self._autograd_loss(batch)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        self._apply_constraints(
            self.network,
            user_rows=np.unique(batch.users),
            item_rows=np.unique(np.concatenate(
                [np.asarray(batch.positives).ravel(),
                 np.asarray(batch.negatives).ravel()])),
        )
        return float(loss.item())

    def _train_step_fused(self, batch, optimizer: Optimizer) -> float:
        """Fused engine: closed-form NumPy gradients, sparse row updates."""
        network = self.network
        config = self.config
        step = fused_forward_backward(
            network.user_embeddings.weight.data,
            network.item_embeddings.weight.data,
            network.user_projections.data,
            network.item_projections.data,
            network.facet_logits.data,
            batch.users, batch.positives, batch.negatives,
            self.margins_[batch.users],
            lambda_pull=config.lambda_pull,
            lambda_facet=config.lambda_facet,
            alpha=config.alpha,
            spherical=self._spherical(),
            reduction=config.negative_reduction,
        )
        optimizer.step_rows(network.user_embeddings.weight,
                            step.user_rows, step.user_grad)
        optimizer.step_rows(network.item_embeddings.weight,
                            step.item_rows, step.item_grad)
        optimizer.step_rows(network.facet_logits, step.user_rows, step.logit_grad)
        optimizer.step_dense(network.user_projections, step.user_projection_grad)
        optimizer.step_dense(network.item_projections, step.item_projection_grad)
        self._apply_constraints(network, user_rows=step.user_rows,
                                item_rows=step.item_rows)
        return step.loss

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def _require_network(self) -> _MultiFacetNetwork:
        if self.network is None:
            raise RuntimeError(f"{type(self).__name__} must be fitted before scoring")
        return self.network

    def _catalogue_size(self) -> int:
        # A loaded checkpoint carries the catalogue in its item table, so
        # full-catalogue ranking works without the training interactions.
        if self.network is not None:
            return self.network.item_embeddings.n_embeddings
        return super()._catalogue_size()

    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        """Cross-facet similarity of ``user`` to each candidate item."""
        network = self._require_network()
        items = np.asarray(items, dtype=np.int64)

        user_vector = network.user_embeddings.weight.data[user:user + 1]
        item_vectors = network.item_embeddings.weight.data[items]

        user_facets = project_facets_numpy(user_vector, network.user_projections.data)
        item_facets = project_facets_numpy(item_vectors, network.item_projections.data)
        # Broadcast the single user against all candidate items.
        user_facets = np.broadcast_to(user_facets, item_facets.shape)

        scores = facet_similarities_numpy(user_facets, item_facets, self._spherical())
        weights = softmax_numpy(network.facet_logits.data[user])
        return cross_facet_similarity_numpy(scores, weights[None, :])

    def _score_candidates(self, users, item_matrix) -> np.ndarray:
        """Vectorised cross-facet scoring of many users in one pass.

        Every distinct candidate item is projected into the ``K`` facet
        spaces exactly once (a ``(K, M, D)`` cache in the spirit of
        :meth:`facet_item_embeddings`), the whole user batch is projected
        with a single ``einsum``, and the Θ-weighted scores come from the
        shared memory-bounded engine
        :func:`~repro.core.similarity.facet_candidate_scores` — the same
        function an exported serving artifact scores through, which is what
        makes artifact-backed serving bitwise-identical.  Scores agree with
        :meth:`score_items` up to floating-point rounding (~1e-12), which
        leaves rankings — and therefore evaluation metrics — unchanged.
        """
        network = self._require_network()
        spherical = self._spherical()

        unique_items, inverse = np.unique(item_matrix, return_inverse=True)
        inverse = inverse.reshape(item_matrix.shape)
        item_facets = project_facets_numpy(
            network.item_embeddings.weight.data[unique_items],
            network.item_projections.data,
        )  # (K, M, D)
        user_facets = project_facets_numpy(
            network.user_embeddings.weight.data[users],
            network.user_projections.data,
        )  # (K, U, D)
        if spherical:
            # Normalising the unique-item cache and the user batch once is
            # far cheaper than normalising the gathered (K, U, C, D) view.
            item_facets = normalize_facets_numpy(item_facets)
            user_facets = normalize_facets_numpy(user_facets)
        weights = softmax_numpy(network.facet_logits.data[users], axis=-1)  # (U, K)
        return facet_candidate_scores(user_facets, item_facets, inverse,
                                      weights, spherical)

    def _serving_payload(self):
        """Export the pre-projected facet tables (family ``"multifacet"``).

        Serving needs neither the universal embeddings nor Φ/Ψ — only the
        projected (and, for MARS, normalised) facet tables and the softmaxed
        Θ weights, so the per-query projection einsums disappear from the
        read path.  Table rows are bitwise what :meth:`_score_candidates`
        projects per batch (``np.einsum`` computes each output row
        independently), so artifact scores match the live model exactly.
        """
        network = self._require_network()
        spherical = self._spherical()
        user_facets = project_facets_numpy(network.user_embeddings.weight.data,
                                           network.user_projections.data)
        item_facets = project_facets_numpy(network.item_embeddings.weight.data,
                                           network.item_projections.data)
        if spherical:
            user_facets = normalize_facets_numpy(user_facets)
            item_facets = normalize_facets_numpy(item_facets)
        tensors = {
            "user_facets": user_facets,
            "item_facets": item_facets,
            "facet_weights": softmax_numpy(network.facet_logits.data, axis=-1),
            "spherical": np.asarray(spherical),
        }
        return ("multifacet", tensors,
                network.user_embeddings.n_embeddings,
                network.item_embeddings.n_embeddings)

    def facet_weights(self, user: Optional[int] = None) -> np.ndarray:
        """Learned softmax facet weights Θ, for one user or all users."""
        network = self._require_network()
        logits = network.facet_logits.data
        if user is not None:
            return softmax_numpy(logits[user])
        return softmax_numpy(logits, axis=-1)

    def facet_item_embeddings(self) -> np.ndarray:
        """All item embeddings in every facet space, shape ``(K, n_items, D)``.

        Used by the Figure 7 / Table V case studies.
        """
        network = self._require_network()
        facets = project_facets_numpy(network.item_embeddings.weight.data,
                                      network.item_projections.data)
        if self._spherical():
            norms = np.linalg.norm(facets, axis=-1, keepdims=True)
            facets = facets / np.maximum(norms, 1e-12)
        return facets

    def facet_user_embeddings(self) -> np.ndarray:
        """All user embeddings in every facet space, shape ``(K, n_users, D)``."""
        network = self._require_network()
        facets = project_facets_numpy(network.user_embeddings.weight.data,
                                      network.user_projections.data)
        if self._spherical():
            norms = np.linalg.norm(facets, axis=-1, keepdims=True)
            facets = facets / np.maximum(norms, 1e-12)
        return facets

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def get_parameters(self) -> Dict[str, np.ndarray]:
        network = self._require_network()
        state = network.state_dict()
        state["margins"] = self.margins_ if self.margins_ is not None else np.array([])
        return state

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        parameters = dict(parameters)
        margins = parameters.pop("margins", None)
        if self.network is None:
            self.network = self._network_from_state(parameters)
        self.network.load_state_dict(parameters)
        if margins is not None and margins.size:
            self.margins_ = margins

    def _network_from_state(self, state: Dict[str, np.ndarray]) -> _MultiFacetNetwork:
        """Reconstruct an empty network whose shapes match a saved state dict.

        Allows ``MAR()/MARS().load(path)`` on a fresh, unfitted instance: the
        array shapes fully determine ``(n_users, n_items, n_facets, dim)``.
        """
        required = ("user_embeddings.weight", "item_embeddings.weight", "facet_logits")
        missing = [key for key in required if key not in state]
        if missing:
            raise KeyError(f"saved parameters are missing {missing}; "
                           "cannot reconstruct the network")
        n_users, dim = np.asarray(state["user_embeddings.weight"]).shape
        n_items = np.asarray(state["item_embeddings.weight"]).shape[0]
        n_facets = np.asarray(state["facet_logits"]).shape[1]
        return _MultiFacetNetwork(
            n_users=n_users,
            n_items=n_items,
            n_facets=n_facets,
            dim=dim,
            spherical=self._spherical(),
            projection_noise=self.config.projection_noise,
            random_state=self.config.random_state,
        )
