"""Shared implementation of the multi-facet recommender (MAR and MARS).

Both models share the parameterisation of Section III-A — universal user and
item embeddings, shared facet projection matrices Φ/Ψ and per-user facet
weights Θ — and the training loop over triplet batches.  They differ only in

* the per-facet similarity (negative squared Euclidean vs. cosine),
* the norm constraint (unit ball vs. unit sphere), and
* the optimizer (SGD with censoring vs. calibrated Riemannian SGD),

which the subclasses select through :meth:`_spherical`, :meth:`_make_optimizer`
and :meth:`_apply_constraints`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.autograd import Embedding, Module, Parameter, Tensor
from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.optim import Optimizer
from repro.core import losses
from repro.core.base import BaseRecommender
from repro.core.config import MARConfig
from repro.core.margins import adaptive_margins
from repro.core.similarity import (
    cross_facet_similarity,
    cross_facet_similarity_numpy,
    facet_similarities,
    facet_similarities_numpy,
    project_facets,
    project_facets_numpy,
    softmax_numpy,
)
from repro.data.batching import TripletBatcher
from repro.data.interactions import InteractionMatrix
from repro.utils.logging import get_logger
from repro.utils.rng import ensure_rng

logger = get_logger("core.multifacet")


class _MultiFacetNetwork(Module):
    """Parameter container: universal embeddings, projections and facet weights."""

    def __init__(self, n_users: int, n_items: int, n_facets: int, dim: int,
                 spherical: bool, projection_noise: float, random_state) -> None:
        super().__init__()
        rng = ensure_rng(random_state)
        self.n_facets = n_facets
        self.user_embeddings = Embedding(n_users, dim, spherical=spherical,
                                         std=1.0 / np.sqrt(dim), random_state=rng)
        self.item_embeddings = Embedding(n_items, dim, spherical=spherical,
                                         std=1.0 / np.sqrt(dim), random_state=rng)
        self.user_projections = Parameter(
            init.identity_stack(n_facets, dim, noise=projection_noise, random_state=rng)
        )
        self.item_projections = Parameter(
            init.identity_stack(n_facets, dim, noise=projection_noise, random_state=rng)
        )
        # Facet-weight logits Θ_u; softmax-normalised per user at use time.
        self.facet_logits = Parameter(np.zeros((n_users, n_facets)))


class MultiFacetRecommender(BaseRecommender):
    """Common machinery of MAR and MARS (not exported directly)."""

    def __init__(self, config: Optional[MARConfig] = None, **overrides) -> None:
        super().__init__()
        if config is None:
            config = self._default_config(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.network: Optional[_MultiFacetNetwork] = None
        self.margins_: Optional[np.ndarray] = None
        self.loss_history_: List[float] = []

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #
    @staticmethod
    def _default_config(**overrides) -> MARConfig:  # pragma: no cover - interface
        raise NotImplementedError

    def _spherical(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def _make_optimizer(self, network: _MultiFacetNetwork) -> Optimizer:  # pragma: no cover
        raise NotImplementedError

    def _apply_constraints(self, network: _MultiFacetNetwork) -> None:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def _fit(self, interactions: InteractionMatrix) -> None:
        config = self.config
        self.network = _MultiFacetNetwork(
            n_users=interactions.n_users,
            n_items=interactions.n_items,
            n_facets=config.n_facets,
            dim=config.embedding_dim,
            spherical=self._spherical(),
            projection_noise=config.projection_noise,
            random_state=config.random_state,
        )
        if config.adaptive_margin:
            self.margins_ = adaptive_margins(interactions, min_margin=config.min_margin)
        else:
            self.margins_ = np.full(interactions.n_users, config.margin)

        batcher = TripletBatcher(
            interactions,
            batch_size=config.batch_size,
            user_sampling=config.user_sampling,
            beta=config.beta,
            random_state=config.random_state,
        )
        optimizer = self._make_optimizer(self.network)
        self.loss_history_ = []

        for epoch in range(config.n_epochs):
            epoch_loss = 0.0
            n_batches = 0
            for batch in batcher.epoch():
                loss = self._train_step(batch, optimizer)
                epoch_loss += loss
                n_batches += 1
            mean_loss = epoch_loss / max(n_batches, 1)
            self.loss_history_.append(mean_loss)
            if config.verbose:
                logger.warning("%s epoch %d/%d loss %.4f",
                               self.name, epoch + 1, config.n_epochs, mean_loss)

    def _train_step(self, batch, optimizer: Optimizer) -> float:
        """One gradient step on a triplet batch; returns the batch loss."""
        network = self.network
        config = self.config

        user_emb = network.user_embeddings(batch.users)
        pos_emb = network.item_embeddings(batch.positives)
        neg_emb = network.item_embeddings(batch.negatives)

        user_facets = project_facets(user_emb, network.user_projections)
        pos_facets = project_facets(pos_emb, network.item_projections)
        neg_facets = project_facets(neg_emb, network.item_projections)

        weights = F.softmax(network.facet_logits.gather_rows(batch.users), axis=-1)
        spherical = self._spherical()

        pos_scores = cross_facet_similarity(
            facet_similarities(user_facets, pos_facets, spherical), weights
        )
        neg_scores = cross_facet_similarity(
            facet_similarities(user_facets, neg_facets, spherical), weights
        )

        margins = self.margins_[batch.users]
        loss = losses.combined_objective(
            pos_scores, neg_scores, margins,
            user_facets, pos_facets,
            lambda_pull=config.lambda_pull,
            lambda_facet=config.lambda_facet,
            alpha=config.alpha,
            spherical=spherical,
        )

        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        self._apply_constraints(network)
        return float(loss.item())

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def _require_network(self) -> _MultiFacetNetwork:
        if self.network is None:
            raise RuntimeError(f"{type(self).__name__} must be fitted before scoring")
        return self.network

    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        """Cross-facet similarity of ``user`` to each candidate item."""
        network = self._require_network()
        items = np.asarray(items, dtype=np.int64)

        user_vector = network.user_embeddings.weight.data[user:user + 1]
        item_vectors = network.item_embeddings.weight.data[items]

        user_facets = project_facets_numpy(user_vector, network.user_projections.data)
        item_facets = project_facets_numpy(item_vectors, network.item_projections.data)
        # Broadcast the single user against all candidate items.
        user_facets = np.broadcast_to(user_facets, item_facets.shape)

        scores = facet_similarities_numpy(user_facets, item_facets, self._spherical())
        weights = softmax_numpy(network.facet_logits.data[user])
        return cross_facet_similarity_numpy(scores, weights[None, :])

    def facet_weights(self, user: Optional[int] = None) -> np.ndarray:
        """Learned softmax facet weights Θ, for one user or all users."""
        network = self._require_network()
        logits = network.facet_logits.data
        if user is not None:
            return softmax_numpy(logits[user])
        return softmax_numpy(logits, axis=-1)

    def facet_item_embeddings(self) -> np.ndarray:
        """All item embeddings in every facet space, shape ``(K, n_items, D)``.

        Used by the Figure 7 / Table V case studies.
        """
        network = self._require_network()
        facets = project_facets_numpy(network.item_embeddings.weight.data,
                                      network.item_projections.data)
        if self._spherical():
            norms = np.linalg.norm(facets, axis=-1, keepdims=True)
            facets = facets / np.maximum(norms, 1e-12)
        return facets

    def facet_user_embeddings(self) -> np.ndarray:
        """All user embeddings in every facet space, shape ``(K, n_users, D)``."""
        network = self._require_network()
        facets = project_facets_numpy(network.user_embeddings.weight.data,
                                      network.user_projections.data)
        if self._spherical():
            norms = np.linalg.norm(facets, axis=-1, keepdims=True)
            facets = facets / np.maximum(norms, 1e-12)
        return facets

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def get_parameters(self) -> Dict[str, np.ndarray]:
        network = self._require_network()
        state = network.state_dict()
        state["margins"] = self.margins_ if self.margins_ is not None else np.array([])
        return state

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        parameters = dict(parameters)
        margins = parameters.pop("margins", None)
        if self.network is None:
            raise RuntimeError("fit (or construct the network) before loading parameters")
        self.network.load_state_dict(parameters)
        if margins is not None and margins.size:
            self.margins_ = margins
