"""MARS — MAR with Spherical optimization (paper Section IV).

The facet-specific similarity becomes cosine similarity, universal embeddings
are constrained exactly onto the unit hypersphere, and they are updated with
the calibrated Riemannian SGD of Eq. 21.  Projection matrices and facet
weights remain Euclidean parameters.

Training runs on the fused closed-form engine by default
(``engine="fused"``, see :mod:`repro.core.fused`): analytic gradients, with
the tangent projection + retraction of Eq. 21 applied row-wise to only the
embedding rows a batch touched.  ``engine="autograd"`` selects the
reverse-mode reference path; both produce identical loss curves from the
same seed up to float tolerance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.optim import Optimizer, RiemannianSGD
from repro.core._multifacet import MultiFacetRecommender, _MultiFacetNetwork
from repro.core.config import MARSConfig


class MARS(MultiFacetRecommender):
    """Multi-facet recommender with strict spherical constraints.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.MARSConfig`, or keyword overrides.

    Examples
    --------
    >>> from repro.data import load_benchmark
    >>> from repro.core import MARS
    >>> dataset = load_benchmark("ciao", random_state=0)
    >>> model = MARS(n_facets=3, embedding_dim=16, n_epochs=2).fit(dataset)
    >>> scores = model.score_items(user=0, items=[1, 2, 3])
    >>> scores.shape
    (3,)
    """

    name = "MARS"

    @staticmethod
    def _default_config(**overrides) -> MARSConfig:
        return MARSConfig(**overrides)

    def _spherical(self) -> bool:
        return True

    def _make_optimizer(self, network: _MultiFacetNetwork) -> Optimizer:
        config: MARSConfig = self.config  # type: ignore[assignment]
        calibrate = getattr(config, "calibrate", True)
        euclidean_lr = getattr(config, "euclidean_learning_rate", None)
        return RiemannianSGD(
            network.parameters(),
            lr=config.learning_rate,
            calibrate=calibrate,
            euclidean_lr=euclidean_lr,
        )

    def _apply_constraints(self, network: _MultiFacetNetwork,
                           user_rows: Optional[np.ndarray] = None,
                           item_rows: Optional[np.ndarray] = None) -> None:
        # Eq. 17: every embedding lies exactly on the unit sphere.  Riemannian
        # SGD already retracts onto the sphere; the explicit projection guards
        # against numerical drift.  Only the rows a step retracted can drift,
        # so the guard is restricted to them when given.
        network.user_embeddings.project_to_sphere(rows=user_rows)
        network.item_embeddings.project_to_sphere(rows=item_rows)
