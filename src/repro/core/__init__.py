"""The paper's contribution: multi-facet metric learning (MAR) and its
spherically optimized variant (MARS)."""

from repro.core.base import BaseRecommender
from repro.core.config import MARConfig, MARSConfig
from repro.core.margins import adaptive_margins
from repro.core.mar import MAR
from repro.core.mars import MARS
from repro.core import fused, losses, similarity, spherical

__all__ = [
    "BaseRecommender",
    "MARConfig",
    "MARSConfig",
    "adaptive_margins",
    "MAR",
    "MARS",
    "fused",
    "losses",
    "similarity",
    "spherical",
]
