"""Cross-facet similarity measurement (paper Section III-B and IV-A).

The three-step measurement:

1. project universal user/item embeddings into K facet-specific spaces with
   the shared projection matrices Φ and Ψ (Eq. 1-2);
2. compute the per-facet similarity — negative squared Euclidean distance in
   MAR (Eq. 3) or cosine similarity in MARS (Eq. 13);
3. aggregate across facets with the user-specific softmax weights Θ_u
   (Eq. 4 / Eq. 14).

Both a differentiable (autograd) path used during training and a plain NumPy
path used for fast inference/ranking are provided; the NumPy path is tested
against the autograd path for consistency.

The NumPy path comes in two flavours: the single-user helpers used by
:meth:`score_items`, and the batched helpers backing ``score_items_batch`` —
:func:`normalize_facets_numpy` (pre-normalise a ``(K, M, D)`` item cache
once) and :func:`cross_facet_scores_matrix_numpy` (BLAS-backed all-pairs
weighted scores).  The batched path agrees with the single-user path up to
floating-point rounding, which leaves rankings and metrics unchanged.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F


# --------------------------------------------------------------------------- #
# differentiable (training) path
# --------------------------------------------------------------------------- #
def project_facets(embeddings: Tensor, projections: Tensor) -> List[Tensor]:
    """Project a batch of universal embeddings into each facet space.

    Parameters
    ----------
    embeddings:
        Batch of universal embeddings, shape ``(B, D)``.
    projections:
        Stack of facet projection matrices, shape ``(K, D, D)``.

    Returns
    -------
    list of Tensor
        ``K`` tensors of shape ``(B, D)`` — the facet-specific embeddings.
    """
    n_facets = projections.shape[0]
    return [embeddings @ projections[k] for k in range(n_facets)]


def facet_similarities(user_facets: List[Tensor], item_facets: List[Tensor],
                       spherical: bool) -> Tensor:
    """Per-facet similarity scores, shape ``(B, K)``.

    Euclidean mode returns ``-‖u_k − v_k‖²`` (Eq. 3); spherical mode returns
    ``cos(u_k, v_k)`` (Eq. 13).
    """
    scores = []
    for user_k, item_k in zip(user_facets, item_facets):
        if spherical:
            scores.append(F.cosine_similarity(user_k, item_k, axis=-1))
        else:
            scores.append(F.squared_euclidean(user_k, item_k, axis=-1) * -1.0)
    return Tensor.stack(scores, axis=1)


def cross_facet_similarity(facet_scores: Tensor, facet_weights: Tensor) -> Tensor:
    """Aggregate per-facet scores with user-specific weights (Eq. 4 / Eq. 14).

    Parameters
    ----------
    facet_scores:
        Shape ``(B, K)``.
    facet_weights:
        Softmax-normalised weights Θ_u for the batch, shape ``(B, K)``.
    """
    return (facet_scores * facet_weights).sum(axis=1)


# --------------------------------------------------------------------------- #
# inference (NumPy) path
# --------------------------------------------------------------------------- #
def project_facets_numpy(embeddings: np.ndarray, projections: np.ndarray) -> np.ndarray:
    """Vectorised facet projection: ``(B, D) × (K, D, D) → (K, B, D)``."""
    return np.einsum("bd,kde->kbe", embeddings, projections)


def facet_similarities_numpy(user_facets: np.ndarray, item_facets: np.ndarray,
                             spherical: bool) -> np.ndarray:
    """Per-facet similarities for pre-projected embeddings.

    Parameters
    ----------
    user_facets, item_facets:
        Shape ``(K, B, D)`` (broadcastable against each other on the batch
        axis, e.g. a single user against many candidate items).
    spherical:
        Cosine similarity when true, negative squared Euclidean otherwise.

    Returns
    -------
    numpy.ndarray of shape ``(B, K)``
    """
    if spherical:
        user_norm = np.linalg.norm(user_facets, axis=-1, keepdims=True)
        item_norm = np.linalg.norm(item_facets, axis=-1, keepdims=True)
        user_unit = user_facets / np.maximum(user_norm, 1e-12)
        item_unit = item_facets / np.maximum(item_norm, 1e-12)
        scores = np.sum(user_unit * item_unit, axis=-1)
    else:
        diff = user_facets - item_facets
        scores = -np.sum(diff * diff, axis=-1)
    return scores.T  # (K, B) -> (B, K)


def softmax_numpy(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Plain NumPy softmax used for the inference path."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def cross_facet_similarity_numpy(facet_scores: np.ndarray,
                                 facet_weights: np.ndarray) -> np.ndarray:
    """NumPy counterpart of :func:`cross_facet_similarity`."""
    return np.sum(facet_scores * facet_weights, axis=-1)


# --------------------------------------------------------------------------- #
# batched inference (NumPy) path
# --------------------------------------------------------------------------- #
#: Cap on the number of scratch floats the batched scorer materialises at a
#: time (the all-pairs ``(K, chunk, M)`` block or the gathered
#: ``(K, chunk, C, D)`` item facets); keeps peak memory of
#: :func:`facet_candidate_scores` around a few hundred MB.
BATCH_SCORING_ELEMENT_BUDGET = 16_000_000

#: Use the BLAS all-pairs fast path while the unique-candidate pool M is at
#: most this many times the per-user candidate width C.  Beyond that (huge
#: catalogues, narrow candidate lists) scoring every user against every
#: unique item wastes ~M/C times the needed flops, so the gathered
#: per-candidate path wins despite its larger memory-traffic constant.
ALL_PAIRS_CANDIDATE_RATIO = 8


def normalize_facets_numpy(facets: np.ndarray) -> np.ndarray:
    """Unit-normalise facet embeddings along the last axis.

    Applies the same clamped normalisation as the spherical branch of
    :func:`facet_similarities_numpy`, so pre-normalising a ``(K, M, D)``
    item cache once and reusing it per batch yields bit-identical cosines.
    """
    norms = np.linalg.norm(facets, axis=-1, keepdims=True)
    return facets / np.maximum(norms, 1e-12)


def cross_facet_scores_matrix_numpy(user_facets: np.ndarray, item_facets: np.ndarray,
                                    facet_weights: np.ndarray,
                                    spherical: bool) -> np.ndarray:
    """Weighted cross-facet scores of every user against every item.

    The all-pairs form used by the batched inference hot path: one
    BLAS-backed ``(K, U, D) × (K, D, M)`` matmul per facet followed by the
    Θ-weighted sum over facets.  Euclidean similarities use the expansion
    ``-‖u − v‖² = 2·u·v − ‖u‖² − ‖v‖²``, which agrees with the elementwise
    difference form up to floating-point rounding (~1 ulp).

    Parameters
    ----------
    user_facets:
        Shape ``(K, U, D)``.  Must be pre-normalised with
        :func:`normalize_facets_numpy` in spherical mode.
    item_facets:
        Shape ``(K, M, D)``; same normalisation contract.
    facet_weights:
        Softmax-normalised weights Θ_u, shape ``(U, K)``.
    spherical:
        Cosine similarity when true, negative squared Euclidean otherwise.

    Returns
    -------
    numpy.ndarray of shape ``(U, M)``
    """
    dots = np.matmul(user_facets, np.swapaxes(item_facets, 1, 2))  # (K, U, M)
    if spherical:
        sims = dots
    else:
        user_sq = np.sum(user_facets * user_facets, axis=-1)[:, :, None]
        item_sq = np.sum(item_facets * item_facets, axis=-1)[:, None, :]
        sims = 2.0 * dots - user_sq - item_sq
    return np.einsum("kum,uk->um", sims, facet_weights)


def facet_candidate_scores(user_facets: np.ndarray, item_facets: np.ndarray,
                           inverse: np.ndarray, facet_weights: np.ndarray,
                           spherical: bool) -> np.ndarray:
    """Θ-weighted cross-facet scores of a user batch on a candidate matrix.

    The memory-bounded candidate-scoring engine shared by the live
    :meth:`MultiFacetRecommender.score_items_batch` path and the exported
    serving artifacts (:mod:`repro.serving.scorers`) — sharing it is what
    keeps artifact-backed serving bitwise-identical to the live model.

    Parameters
    ----------
    user_facets:
        Facet embeddings of the user batch, shape ``(K, U, D)``
        (pre-normalised with :func:`normalize_facets_numpy` in spherical
        mode).
    item_facets:
        Facet embeddings of the *unique* candidate pool, shape ``(K, M, D)``
        (same normalisation contract).
    inverse:
        ``(U, C)`` map from candidate-matrix positions into the unique pool
        (the ``return_inverse`` of ``np.unique`` over the candidate matrix).
    facet_weights:
        Softmax-normalised weights Θ_u of the batch, shape ``(U, K)``.
    spherical:
        Cosine similarity when true, negative squared Euclidean otherwise.

    Returns
    -------
    numpy.ndarray of shape ``(U, C)``
    """
    n_facets, n_unique, dim = item_facets.shape
    n_users = user_facets.shape[1]
    width = inverse.shape[1]
    scores = np.empty(inverse.shape, dtype=np.float64)
    if n_unique <= ALL_PAIRS_CANDIDATE_RATIO * width:
        # Dense candidate union (evaluation over a small catalogue,
        # recommend over all items): one BLAS matmul per facet against
        # the unique-item cache, then a single (u, C) gather.  Chunk
        # over users so the (K, chunk, M) block stays memory-bounded.
        chunk = max(1, BATCH_SCORING_ELEMENT_BUDGET // max(1, n_facets * n_unique))
        for start in range(0, n_users, chunk):
            stop = min(start + chunk, n_users)
            weighted = cross_facet_scores_matrix_numpy(
                user_facets[:, start:stop], item_facets,
                facet_weights[start:stop], spherical,
            )                                                    # (u, M)
            scores[start:stop] = np.take_along_axis(
                weighted, inverse[start:stop], axis=1
            )
    else:
        # Sparse candidate union (narrow candidate lists over a huge
        # catalogue): gather only each user's candidates so the flop
        # count stays K·u·C·D instead of K·u·M·D.
        chunk = max(1, BATCH_SCORING_ELEMENT_BUDGET // max(
            1, n_facets * width * dim
        ))
        for start in range(0, n_users, chunk):
            stop = min(start + chunk, n_users)
            chunk_items = item_facets[:, inverse[start:stop], :]  # (K, u, C, D)
            chunk_users = user_facets[:, start:stop, None, :]     # (K, u, 1, D)
            if spherical:
                facet_scores = np.sum(chunk_users * chunk_items, axis=-1)
            else:
                diff = chunk_users - chunk_items
                facet_scores = -np.sum(diff * diff, axis=-1)      # (K, u, C)
            scores[start:stop] = np.einsum(
                "kuc,uk->uc", facet_scores, facet_weights[start:stop]
            )
    return scores
