"""The recommender interface shared by MAR, MARS and every baseline.

All models consume an :class:`~repro.data.dataset.ImplicitFeedbackDataset`
(or a raw :class:`~repro.data.interactions.InteractionMatrix`) through
:meth:`fit`, and expose scoring/ranking through :meth:`score_items` and
:meth:`recommend`.  The evaluation protocol only relies on this interface,
which is what makes the Table II comparison a like-for-like one.

Batch inference
---------------
:meth:`score_items_batch` scores a whole batch of users against per-user
candidate lists in one call and :meth:`recommend_batch` ranks top-N for many
users at once.  The base class provides a per-user fallback so every model
supports the batch API; models with a vectorised scorer (MAR/MARS and the
embedding baselines) override the batch path to avoid the Python-level loop,
which is what makes sampled leave-one-out evaluation run at full NumPy speed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.dataset import ImplicitFeedbackDataset
from repro.data.interactions import InteractionMatrix
from repro.utils.io import load_arrays, save_arrays

#: Cap on the number of score-matrix elements a single recommend_batch chunk
#: asks the scorer for.  The vectorised baselines materialise intermediates
#: ~D times this size, so 500k elements keeps peak scratch memory in the
#: low hundreds of MB even for dim-64 models.
_RECOMMEND_BATCH_ELEMENT_BUDGET = 500_000


class BaseRecommender:
    """Abstract base class for top-N recommenders trained on implicit feedback."""

    #: Human-readable model name used in experiment reports.
    name: str = "base"

    def __init__(self) -> None:
        self._train_interactions: Optional[InteractionMatrix] = None

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, data: Union[ImplicitFeedbackDataset, InteractionMatrix]) -> "BaseRecommender":
        """Train the model and return ``self``."""
        interactions = self._unwrap(data)
        self._train_interactions = interactions
        self._fit(interactions)
        return self

    def _fit(self, interactions: InteractionMatrix) -> None:  # pragma: no cover
        raise NotImplementedError

    @staticmethod
    def _unwrap(data: Union[ImplicitFeedbackDataset, InteractionMatrix]) -> InteractionMatrix:
        if isinstance(data, ImplicitFeedbackDataset):
            return data.train
        if isinstance(data, InteractionMatrix):
            return data
        raise TypeError(
            "fit expects an ImplicitFeedbackDataset or InteractionMatrix, "
            f"got {type(data).__name__}"
        )

    def _require_fitted(self) -> InteractionMatrix:
        if self._train_interactions is None:
            raise RuntimeError(f"{type(self).__name__} must be fitted before use")
        return self._train_interactions

    @property
    def is_fitted(self) -> bool:
        return self._train_interactions is not None

    def _catalogue_size(self) -> int:
        """Number of items the model can score.

        Defaults to the training matrix; models whose parameters encode the
        catalogue (e.g. loaded MAR/MARS checkpoints) override this so the
        full-catalogue ranking paths work without the training interactions.
        """
        return self._require_fitted().n_items

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        """Scores of ``items`` for ``user`` (higher means more recommended)."""
        raise NotImplementedError

    def score_all_items(self, user: int) -> np.ndarray:
        """Scores of every item for ``user``."""
        return self.score_items(user, np.arange(self._catalogue_size()))

    @staticmethod
    def _broadcast_candidates(users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        """Normalise ``item_matrix`` to shape ``(len(users), C)``."""
        item_matrix = np.asarray(item_matrix, dtype=np.int64)
        if item_matrix.ndim == 1:
            item_matrix = np.broadcast_to(item_matrix, (users.size, item_matrix.size))
        if item_matrix.ndim != 2 or item_matrix.shape[0] != users.size:
            raise ValueError(
                f"item_matrix must have shape ({users.size}, C) or (C,), "
                f"got {item_matrix.shape}"
            )
        return item_matrix

    def score_items_batch(self, users: Sequence[int],
                          item_matrix: np.ndarray) -> np.ndarray:
        """Scores for a batch of users against per-user candidate lists.

        Parameters
        ----------
        users:
            User ids, shape ``(U,)``.
        item_matrix:
            Candidate item ids, shape ``(U, C)`` (row ``i`` holds the
            candidates of ``users[i]``) or ``(C,)`` for a candidate list
            shared by every user.

        Returns
        -------
        numpy.ndarray of shape ``(U, C)``
            ``out[i, j]`` is the score of ``item_matrix[i, j]`` for
            ``users[i]``.  The generic implementation loops over
            :meth:`score_items`; vectorised models override it.
        """
        users = np.asarray(users, dtype=np.int64)
        item_matrix = self._broadcast_candidates(users, item_matrix)
        scores = np.empty(item_matrix.shape, dtype=np.float64)
        for row, user in enumerate(users):
            scores[row] = np.asarray(
                self.score_items(int(user), item_matrix[row]), dtype=np.float64
            )
        return scores

    def recommend(self, user: int, k: int = 10,
                  exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for ``user``, best first.

        Parameters
        ----------
        user:
            User id.
        k:
            Number of recommendations.
        exclude_seen:
            Whether to filter out items the user interacted with in training.
            Requires the training interactions; a model restored with
            :meth:`load` on a fresh instance can rank with
            ``exclude_seen=False``.
        """
        scores = np.asarray(self.score_all_items(user), dtype=np.float64).copy()
        if exclude_seen:
            seen = self._require_fitted().items_of_user(user)
            scores[seen] = -np.inf
        k = min(k, len(scores))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        return top[np.argsort(-scores[top], kind="stable")]

    def recommend_batch(self, users: Sequence[int], k: int = 10,
                        exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for a batch of users, shape ``(U, k)``.

        Vectorised counterpart of :meth:`recommend`: users are scored
        against the full item catalogue through :meth:`score_items_batch`
        in memory-bounded chunks, then ranked with one partial sort per row.
        Like :meth:`recommend`, ``exclude_seen=True`` needs the training
        interactions; freshly loaded models can rank with
        ``exclude_seen=False``.
        """
        interactions = self._require_fitted() if exclude_seen else None
        users = np.asarray(users, dtype=np.int64)
        n_items = self._catalogue_size()
        all_items = np.arange(n_items)
        k = min(k, n_items)
        top = np.empty((users.size, k), dtype=np.int64)
        # Bound the (chunk, n_items[, D]) scratch arrays the vectorised
        # scorers materialise; catalogue-sized batches stream through.
        chunk = max(1, _RECOMMEND_BATCH_ELEMENT_BUDGET // max(1, n_items))
        for start in range(0, users.size, chunk):
            stop = min(start + chunk, users.size)
            scores = np.asarray(
                self.score_items_batch(users[start:stop], all_items),
                dtype=np.float64,
            ).copy()
            if exclude_seen:
                for row, user in enumerate(users[start:stop]):
                    scores[row, interactions.items_of_user(int(user))] = -np.inf
            part = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
            part_scores = np.take_along_axis(scores, part, axis=1)
            order = np.argsort(-part_scores, axis=1, kind="stable")
            top[start:stop] = np.take_along_axis(part, order, axis=1)
        return top

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def get_parameters(self) -> Dict[str, np.ndarray]:
        """Return the learned parameters (models override when they have any)."""
        return {}

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        """Load learned parameters produced by :meth:`get_parameters`."""
        if parameters:
            raise NotImplementedError(
                f"{type(self).__name__} does not support parameter loading"
            )

    def save(self, path: Union[str, Path]) -> Path:
        """Persist learned parameters to an ``.npz`` file."""
        return save_arrays(path, self.get_parameters())

    def load(self, path: Union[str, Path]) -> "BaseRecommender":
        """Restore learned parameters from :meth:`save` output."""
        self.set_parameters(load_arrays(path))
        return self
