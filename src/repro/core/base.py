"""The recommender interface shared by MAR, MARS and every baseline.

All models consume an :class:`~repro.data.dataset.ImplicitFeedbackDataset`
(or a raw :class:`~repro.data.interactions.InteractionMatrix`) through
:meth:`fit`, and expose scoring/ranking through :meth:`score_items` and
:meth:`recommend`.  The evaluation protocol only relies on this interface,
which is what makes the Table II comparison a like-for-like one.

Batch inference
---------------
:meth:`score_items_batch` scores a whole batch of users against per-user
candidate lists in one call and :meth:`recommend_batch` ranks top-N for many
users at once.  The base class provides a per-user fallback so every model
supports the batch API; models with a vectorised scorer (MAR/MARS and the
embedding baselines) override :meth:`_score_candidates` to avoid the
Python-level loop, which is what makes sampled leave-one-out evaluation run
at full NumPy speed.

Serving
-------
The read path is built on the unified Query API of :mod:`repro.serving`:
:meth:`recommend`, :meth:`recommend_batch` and :meth:`score_items_batch` are
thin shims that build a :class:`~repro.serving.query.Query` and delegate to
the shared blockwise top-k kernel (:func:`~repro.serving.kernel.run_query`),
and :meth:`query` exposes the full Query surface (per-user candidate lists,
item blocklists) directly.  :meth:`export_serving` freezes a fitted model
into a :class:`~repro.serving.artifact.ServingArtifact` — the read-only
tensors of its scoring family plus the train-set seen-items CSR — which
answers the same queries bitwise-identically without any training state
(batchers, interaction matrix, autograd network) and feeds the hot-swap
:class:`~repro.serving.service.RecommenderService`.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.dataset import ImplicitFeedbackDataset
from repro.data.interactions import InteractionMatrix
from repro.serving.kernel import RECOMMEND_ELEMENT_BUDGET, broadcast_candidates, run_query
from repro.serving.query import Query, QueryResult
from repro.utils.io import load_arrays, save_arrays

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.serving.artifact import ServingArtifact

#: Cap on the number of score-matrix elements a single recommend_batch chunk
#: asks the scorer for (see :data:`repro.serving.kernel.RECOMMEND_ELEMENT_BUDGET`).
#: Kept as a module attribute so tests can shrink it to force chunking.
_RECOMMEND_BATCH_ELEMENT_BUDGET = RECOMMEND_ELEMENT_BUDGET


class BaseRecommender:
    """Abstract base class for top-N recommenders trained on implicit feedback."""

    #: Human-readable model name used in experiment reports.
    name: str = "base"

    def __init__(self) -> None:
        self._train_interactions: Optional[InteractionMatrix] = None

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, data: Union[ImplicitFeedbackDataset, InteractionMatrix]) -> "BaseRecommender":
        """Train the model and return ``self``."""
        interactions = self._unwrap(data)
        self._train_interactions = interactions
        self._fit(interactions)
        return self

    def _fit(self, interactions: InteractionMatrix) -> None:  # pragma: no cover
        raise NotImplementedError

    @staticmethod
    def _unwrap(data: Union[ImplicitFeedbackDataset, InteractionMatrix]) -> InteractionMatrix:
        if isinstance(data, ImplicitFeedbackDataset):
            return data.train
        if isinstance(data, InteractionMatrix):
            return data
        raise TypeError(
            "fit expects an ImplicitFeedbackDataset or InteractionMatrix, "
            f"got {type(data).__name__}"
        )

    def _require_fitted(self) -> InteractionMatrix:
        if self._train_interactions is None:
            raise RuntimeError(f"{type(self).__name__} must be fitted before use")
        return self._train_interactions

    @property
    def is_fitted(self) -> bool:
        return self._train_interactions is not None

    def _catalogue_size(self) -> int:
        """Number of items the model can score.

        Defaults to the training matrix; models whose parameters encode the
        catalogue (e.g. loaded MAR/MARS checkpoints) override this so the
        full-catalogue ranking paths work without the training interactions.
        """
        return self._require_fitted().n_items

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        """Scores of ``items`` for ``user`` (higher means more recommended)."""
        raise NotImplementedError

    def score_all_items(self, user: int) -> np.ndarray:
        """Scores of every item for ``user``."""
        return self.score_items(user, np.arange(self._catalogue_size()))

    @staticmethod
    def _broadcast_candidates(users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
        """Normalise ``item_matrix`` to shape ``(len(users), C)``."""
        return broadcast_candidates(users, item_matrix)

    def _score_candidates(self, users: np.ndarray,
                          item_matrix: np.ndarray) -> np.ndarray:
        """Score a ``(U,)`` user batch against a ``(U, C)`` candidate matrix.

        The scoring primitive behind every read path (:meth:`query` and the
        :meth:`recommend` / :meth:`recommend_batch` /
        :meth:`score_items_batch` shims).  Inputs are already validated and
        broadcast.  The generic implementation loops over
        :meth:`score_items`; vectorised models override it.
        """
        scores = np.empty(item_matrix.shape, dtype=np.float64)
        for row, user in enumerate(users):
            scores[row] = np.asarray(
                self.score_items(int(user), item_matrix[row]), dtype=np.float64
            )
        return scores

    def _seen_csr(self):
        """``(indptr, indices)`` of the training CSR for seen-item masking."""
        csr = self._require_fitted().csr()
        return (csr.indptr, csr.indices)

    def query(self, query: Query) -> QueryResult:
        """Execute a :class:`~repro.serving.query.Query` against this model.

        The unified read-path entry point: full-catalogue or per-user
        candidate ranking, vectorised seen-item masking, optional item
        blocklist — all through the shared blockwise top-k kernel, which an
        exported :class:`~repro.serving.artifact.ServingArtifact` answers
        bitwise-identically.
        """
        n_items = self._catalogue_size()
        seen = seen_keys = None
        if query.exclude_seen:
            interactions = self._require_fitted()
            seen = self._seen_csr()
            if (query.candidates is not None
                    and interactions.n_items == n_items):
                # Candidate membership tests reuse the sorted pair-key index
                # already cached on the interaction matrix (the samplers'
                # index) instead of rebuilding O(nnz) keys per query.
                seen_keys = interactions.encoded_positive_keys()
        return run_query(query, self._score_candidates, n_items,
                         seen=seen, seen_keys=seen_keys,
                         element_budget=_RECOMMEND_BATCH_ELEMENT_BUDGET)

    def score_items_batch(self, users: Sequence[int],
                          item_matrix: np.ndarray) -> np.ndarray:
        """Scores for a batch of users against per-user candidate lists.

        Thin shim: builds a score-mode :class:`~repro.serving.query.Query`
        over the candidate lists and delegates to the shared kernel (which
        calls straight back into :meth:`_score_candidates`).

        Parameters
        ----------
        users:
            User ids, shape ``(U,)``.
        item_matrix:
            Candidate item ids, shape ``(U, C)`` (row ``i`` holds the
            candidates of ``users[i]``) or ``(C,)`` for a candidate list
            shared by every user.

        Returns
        -------
        numpy.ndarray of shape ``(U, C)``
            ``out[i, j]`` is the score of ``item_matrix[i, j]`` for
            ``users[i]``.
        """
        query = Query(users=users, candidates=item_matrix, k=None,
                      exclude_seen=False)
        return run_query(query, self._score_candidates, n_items=0).scores

    def recommend(self, user: int, k: int = 10,
                  exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for ``user``, best first.

        Thin shim over the kernel with a single-user query.  Scoring goes
        through the per-user :meth:`score_all_items` path (not the batched
        scorer), preserving this method's historical outputs bitwise.

        Parameters
        ----------
        user:
            User id.
        k:
            Number of recommendations; ``k <= 0`` returns an empty array.
        exclude_seen:
            Whether to filter out items the user interacted with in training.
            Requires the training interactions; a model restored with
            :meth:`load` on a fresh instance can rank with
            ``exclude_seen=False``.
        """
        def scorer(users: np.ndarray, item_matrix: np.ndarray) -> np.ndarray:
            return np.asarray(self.score_all_items(int(users[0])),
                              dtype=np.float64)[None, :]

        query = Query(users=[user], k=k, exclude_seen=exclude_seen)
        seen = self._seen_csr() if exclude_seen else None
        return run_query(query, scorer, self._catalogue_size(), seen=seen,
                         element_budget=_RECOMMEND_BATCH_ELEMENT_BUDGET).items[0]

    def recommend_batch(self, users: Sequence[int], k: int = 10,
                        exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for a batch of users, shape ``(U, k)``.

        Vectorised counterpart of :meth:`recommend` and a thin shim over
        the shared kernel: users are scored against the full catalogue
        through :meth:`_score_candidates` in memory-bounded chunks, seen
        items are masked with one vectorised CSR scatter per chunk, and
        each chunk is ranked with one partial sort per row.  ``k <= 0``
        returns an empty ``(U, 0)`` array.  Like :meth:`recommend`,
        ``exclude_seen=True`` needs the training interactions; freshly
        loaded models can rank with ``exclude_seen=False``.
        """
        return self.query(Query(users=users, k=k,
                                exclude_seen=exclude_seen)).items

    # ------------------------------------------------------------------ #
    # serving export
    # ------------------------------------------------------------------ #
    def _serving_payload(self):
        """``(family, tensors, n_users, n_items)`` backing :meth:`export_serving`.

        The generic fallback materialises the model's full score matrix at
        export time (family ``"precomputed"``) — exact but ``O(U × I)``
        memory, so it only suits small catalogues (ItemKNN, NMF, custom
        models).  Models with a compact read-only parameterisation override
        this with their scoring family's tensors.
        """
        interactions = self._require_fitted()
        users = np.arange(interactions.n_users, dtype=np.int64)
        n_items = self._catalogue_size()
        scores = np.asarray(
            self.score_items_batch(users, np.arange(n_items, dtype=np.int64)),
            dtype=np.float64,
        )
        return "precomputed", {"scores": scores}, interactions.n_users, n_items

    def export_serving(self, model_name: Optional[str] = None) -> "ServingArtifact":
        """Freeze this fitted model into a :class:`ServingArtifact`.

        The artifact bundles the read-only tensors of the model's scoring
        family plus the train-set seen-items CSR (when the training
        interactions are available — a checkpoint-restored model exports
        without it and must be queried with ``exclude_seen=False``), and
        answers :meth:`recommend_batch`-style queries bitwise-identically
        to this live model in any process, with no training state.
        """
        from repro.serving.artifact import ServingArtifact

        family, tensors, n_users, n_items = self._serving_payload()
        seen = (self._seen_csr() if self._train_interactions is not None
                else None)
        return ServingArtifact(family=family, tensors=tensors,
                               n_users=n_users, n_items=n_items, seen=seen,
                               model_name=model_name or self.name)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def get_parameters(self) -> Dict[str, np.ndarray]:
        """Return the learned parameters (models override when they have any)."""
        return {}

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        """Load learned parameters produced by :meth:`get_parameters`."""
        if parameters:
            raise NotImplementedError(
                f"{type(self).__name__} does not support parameter loading"
            )

    def save(self, path: Union[str, Path]) -> Path:
        """Persist learned parameters to an ``.npz`` file."""
        return save_arrays(path, self.get_parameters())

    def load(self, path: Union[str, Path]) -> "BaseRecommender":
        """Restore learned parameters from :meth:`save` output."""
        self.set_parameters(load_arrays(path))
        return self
