"""The recommender interface shared by MAR, MARS and every baseline.

All models consume an :class:`~repro.data.dataset.ImplicitFeedbackDataset`
(or a raw :class:`~repro.data.interactions.InteractionMatrix`) through
:meth:`fit`, and expose scoring/ranking through :meth:`score_items` and
:meth:`recommend`.  The evaluation protocol only relies on this interface,
which is what makes the Table II comparison a like-for-like one.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.dataset import ImplicitFeedbackDataset
from repro.data.interactions import InteractionMatrix
from repro.utils.io import load_arrays, save_arrays


class BaseRecommender:
    """Abstract base class for top-N recommenders trained on implicit feedback."""

    #: Human-readable model name used in experiment reports.
    name: str = "base"

    def __init__(self) -> None:
        self._train_interactions: Optional[InteractionMatrix] = None

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, data: Union[ImplicitFeedbackDataset, InteractionMatrix]) -> "BaseRecommender":
        """Train the model and return ``self``."""
        interactions = self._unwrap(data)
        self._train_interactions = interactions
        self._fit(interactions)
        return self

    def _fit(self, interactions: InteractionMatrix) -> None:  # pragma: no cover
        raise NotImplementedError

    @staticmethod
    def _unwrap(data: Union[ImplicitFeedbackDataset, InteractionMatrix]) -> InteractionMatrix:
        if isinstance(data, ImplicitFeedbackDataset):
            return data.train
        if isinstance(data, InteractionMatrix):
            return data
        raise TypeError(
            "fit expects an ImplicitFeedbackDataset or InteractionMatrix, "
            f"got {type(data).__name__}"
        )

    def _require_fitted(self) -> InteractionMatrix:
        if self._train_interactions is None:
            raise RuntimeError(f"{type(self).__name__} must be fitted before use")
        return self._train_interactions

    @property
    def is_fitted(self) -> bool:
        return self._train_interactions is not None

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def score_items(self, user: int, items: Sequence[int]) -> np.ndarray:
        """Scores of ``items`` for ``user`` (higher means more recommended)."""
        raise NotImplementedError

    def score_all_items(self, user: int) -> np.ndarray:
        """Scores of every item for ``user``."""
        interactions = self._require_fitted()
        return self.score_items(user, np.arange(interactions.n_items))

    def recommend(self, user: int, k: int = 10,
                  exclude_seen: bool = True) -> np.ndarray:
        """Top-``k`` item ids for ``user``, best first.

        Parameters
        ----------
        user:
            User id.
        k:
            Number of recommendations.
        exclude_seen:
            Whether to filter out items the user interacted with in training.
        """
        interactions = self._require_fitted()
        scores = np.asarray(self.score_all_items(user), dtype=np.float64).copy()
        if exclude_seen:
            seen = interactions.items_of_user(user)
            scores[seen] = -np.inf
        k = min(k, len(scores))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        return top[np.argsort(-scores[top], kind="stable")]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def get_parameters(self) -> Dict[str, np.ndarray]:
        """Return the learned parameters (models override when they have any)."""
        return {}

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        """Load learned parameters produced by :meth:`get_parameters`."""
        if parameters:
            raise NotImplementedError(
                f"{type(self).__name__} does not support parameter loading"
            )

    def save(self, path: Union[str, Path]) -> Path:
        """Persist learned parameters to an ``.npz`` file."""
        return save_arrays(path, self.get_parameters())

    def load(self, path: Union[str, Path]) -> "BaseRecommender":
        """Restore learned parameters from :meth:`save` output."""
        self.set_parameters(load_arrays(path))
        return self
