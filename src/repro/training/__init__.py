"""Training harness: unified runtime, validation-driven trainer, callbacks,
grid search and crash-safe checkpoints."""

from repro.training.checkpoint import CHECKPOINT_FORMAT_VERSION, CheckpointManager
from repro.training.loop import (
    EpochReport,
    HogwildAuditError,
    HogwildWriteAuditor,
    RuntimeTrainedModel,
    TrainableModel,
    TrainingLoop,
    partition_users,
    validate_executor,
)
from repro.training.trainer import Trainer, TrainingReport
from repro.training.callbacks import Callback, EarlyStopping, History
from repro.training.grid_search import GridSearch, GridSearchResult

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointManager",
    "EpochReport",
    "HogwildAuditError",
    "HogwildWriteAuditor",
    "RuntimeTrainedModel",
    "TrainableModel",
    "TrainingLoop",
    "partition_users",
    "validate_executor",
    "Trainer",
    "TrainingReport",
    "Callback",
    "EarlyStopping",
    "History",
    "GridSearch",
    "GridSearchResult",
]
