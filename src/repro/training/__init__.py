"""Training harness: validation-driven trainer, callbacks and grid search."""

from repro.training.trainer import Trainer, TrainingReport
from repro.training.callbacks import Callback, EarlyStopping, History
from repro.training.grid_search import GridSearch, GridSearchResult

__all__ = [
    "Trainer",
    "TrainingReport",
    "Callback",
    "EarlyStopping",
    "History",
    "GridSearch",
    "GridSearchResult",
]
