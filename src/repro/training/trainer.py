"""Round-based trainer with validation monitoring.

Models in this library own their inner epoch loop (``model.fit``).  The
trainer splits the epoch budget into *rounds*, trains the model for a few
epochs per round, evaluates on the validation split after each round, and
lets callbacks (e.g. early stopping) cut training short.  The best-validated
parameters are restored at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.base import BaseRecommender
from repro.data.dataset import ImplicitFeedbackDataset
from repro.eval.protocol import LeaveOneOutEvaluator
from repro.training.callbacks import Callback, History
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive_int

logger = get_logger("training")


@dataclass
class TrainingReport:
    """Outcome of a :meth:`Trainer.train` call."""

    model: BaseRecommender
    best_round: int
    best_metrics: Dict[str, float]
    history: List[Dict[str, float]] = field(default_factory=list)
    stopped_early: bool = False

    def validation_curve(self, key: str = "ndcg@10") -> List[float]:
        """Per-round values of one validation metric."""
        return [metrics[key] for metrics in self.history]


class Trainer:
    """Train a recommender in rounds with validation-based model selection.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh, unfitted model configured
        for ``epochs_per_round`` epochs (its ``n_epochs`` attribute is set by
        the trainer when present).
    dataset:
        Split dataset; validation items drive model selection.
    n_rounds, epochs_per_round:
        Total budget = ``n_rounds × epochs_per_round`` epochs.
    monitor:
        Metric used to select the best round.
    retrain_from_scratch:
        By default each round *warm-starts* from the previous one through
        the training runtime's resumable state (``model.fit_more``), so the
        total budget really is ``n_rounds × epochs_per_round`` epochs — and
        for seeded serial models the per-round states are identical to the
        from-scratch schedule's, since resuming continues the same batcher
        and optimizer streams.  ``True`` restores the old behaviour of
        building a fresh model each round and retraining it for
        ``epochs_per_round × (round + 1)`` epochs from scratch (a quadratic
        ``n_rounds (n_rounds + 1) / 2 × epochs_per_round`` total), which is
        also the automatic fallback for models without a resumable runtime
        (e.g. NMF's ALS loop or the heuristic baselines).
    """

    def __init__(self, model_factory: Callable[[], BaseRecommender],
                 dataset: ImplicitFeedbackDataset, n_rounds: int = 5,
                 epochs_per_round: int = 10, monitor: str = "ndcg@10",
                 n_negatives: int = 100, random_state: int = 0,
                 callbacks: Optional[Sequence[Callback]] = None,
                 retrain_from_scratch: bool = False) -> None:
        self.model_factory = model_factory
        self.dataset = dataset
        self.n_rounds = check_positive_int(n_rounds, "n_rounds")
        self.epochs_per_round = check_positive_int(epochs_per_round, "epochs_per_round")
        self.monitor = monitor
        self.retrain_from_scratch = retrain_from_scratch
        self.callbacks: List[Callback] = list(callbacks or [])
        self._history = History()
        self.callbacks.append(self._history)
        self.evaluator = LeaveOneOutEvaluator(
            dataset, n_negatives=n_negatives, split="validation",
            random_state=random_state,
        )

    # ------------------------------------------------------------------ #
    def _resumable(self, model: BaseRecommender) -> bool:
        """Whether ``model`` can warm-start the next round via ``fit_more``."""
        return (not self.retrain_from_scratch
                and getattr(model, "runtime_", None) is not None
                and hasattr(model, "fit_more"))

    def train(self) -> TrainingReport:
        """Run the round loop and return the report with the best model."""
        best_metrics: Optional[Dict[str, float]] = None
        best_round = -1
        best_state: Optional[Dict] = None
        stopped_early = False

        model: Optional[BaseRecommender] = None
        for round_index in range(self.n_rounds):
            if round_index > 0 and self._resumable(model):
                model.fit_more(self.epochs_per_round)
            else:
                model = self.model_factory()
                total_epochs = self.epochs_per_round * (round_index + 1)
                self._set_epochs(model, total_epochs)
                model.fit(self.dataset)
            metrics = self.evaluator.evaluate(model).metrics

            if best_metrics is None or metrics[self.monitor] > best_metrics[self.monitor]:
                best_metrics = metrics
                best_round = round_index
                best_state = model.get_parameters()

            stop_requests = [callback.on_round_end(round_index, metrics)
                             for callback in self.callbacks]
            if any(stop_requests):
                stopped_early = True
                break

        assert model is not None and best_metrics is not None
        if best_state:
            try:
                model.set_parameters(best_state)
            except (NotImplementedError, KeyError, ValueError):
                logger.warning("could not restore best parameters; "
                               "returning the last trained model")
            else:
                if best_round != round_index and getattr(model, "runtime_", None):
                    # The restored parameters no longer match the loop's
                    # optimizer accumulators and sample-stream positions, so
                    # resuming would train the best round's weights with a
                    # later round's state; drop the resumable surface
                    # (fit_more then fails loudly) instead.
                    model.runtime_.release()
                    model.runtime_ = None
        return TrainingReport(
            model=model,
            best_round=best_round,
            best_metrics=best_metrics,
            history=self._history.rounds,
            stopped_early=stopped_early,
        )

    @staticmethod
    def _set_epochs(model: BaseRecommender, n_epochs: int) -> None:
        """Point the model's epoch budget at ``n_epochs`` when configurable."""
        if hasattr(model, "config") and hasattr(model.config, "n_epochs"):
            model.config.n_epochs = n_epochs
        elif hasattr(model, "n_epochs"):
            model.n_epochs = n_epochs
