"""Crash-safe training checkpoints with resume-from-last-good.

A :class:`CheckpointManager` attached to a model (``model.checkpoint = ...``
before ``fit``) makes :class:`~repro.training.loop.TrainingLoop` persist a
checkpoint every ``every_n_epochs`` completed epochs, keeping the newest
``retain`` files.  Each checkpoint is one atomic, digest-verified ``.npz``
(written through :func:`repro.utils.io.save_arrays` with ``digests=True``),
so a crash — even mid-write — can never leave a checkpoint that restores to
garbage: a torn or bit-flipped file fails verification and
:meth:`CheckpointManager.latest_good` falls back to the previous one.

A checkpoint captures everything the training loop's determinism rests on:

* the model's learned parameters (``model.get_parameters()``),
* the optimizer's durable state (``Optimizer.state_dict``: Adagrad
  accumulators, SGD velocities, Adam moments),
* the exact bit-generator state of every batcher's RNG stream,
* the completed-epoch count and loss history.

Restoring into a *fresh* model instance (:meth:`CheckpointManager.restore`)
and continuing with ``fit_more`` therefore reproduces an uninterrupted
seeded serial run **bitwise** — the property the kill-mid-epoch test in
``tests/test_reliability.py`` certifies.  Sharded (``n_shards > 1``) runs
restore the same way but inherit the executor's statistical-only
reproducibility (thread interleaving; see :mod:`repro.training.loop`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.reliability.errors import ArtifactIntegrityError, CheckpointError
from repro.reliability.faults import fire as _fire
from repro.utils.io import (
    PathLike,
    load_arrays,
    pack_scalar,
    save_arrays,
    unpack_scalar,
)
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive_int

logger = get_logger("training.checkpoint")

#: On-disk checkpoint layout version (see :class:`CheckpointManager`).
CHECKPOINT_FORMAT_VERSION = 1

_META_PREFIX = "meta."
_PARAM_PREFIX = "param."
_LOOP_PREFIX = "loop."


class CheckpointManager:
    """Periodic atomic checkpoints for a :class:`TrainingLoop`.

    Parameters
    ----------
    directory:
        Where checkpoint files (``ckpt_epoch_NNNNNN.npz``) live.  Created
        on first save.
    every_n_epochs:
        Save after every this-many completed epochs.
    retain:
        Keep the newest this-many checkpoint files; older ones are pruned
        after each successful save.

    Usage
    -----
    >>> model = CML(n_epochs=20, random_state=0)
    >>> model.checkpoint = CheckpointManager("ckpts", every_n_epochs=5)
    >>> model.fit(dataset)                    # saves at epochs 5, 10, 15, 20
    ...                                       # ... process dies mid-epoch ...
    >>> fresh = CML(n_epochs=20, random_state=0)
    >>> done = CheckpointManager("ckpts").restore(fresh, dataset)
    >>> fresh.fit_more(20 - done)             # bitwise == uninterrupted run
    """

    def __init__(self, directory: PathLike, every_n_epochs: int = 1,
                 retain: int = 3) -> None:
        self.directory = Path(directory)
        self.every_n_epochs = check_positive_int(every_n_epochs,
                                                 "every_n_epochs")
        self.retain = check_positive_int(retain, "retain")

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def due(self, completed_epochs: int) -> bool:
        """Whether a checkpoint should be written after this many epochs."""
        return completed_epochs > 0 \
            and completed_epochs % self.every_n_epochs == 0

    def save(self, loop) -> Path:
        """Persist one checkpoint of ``loop`` (atomic, digest-verified).

        Fault-injection site ``training.checkpoint`` fires first, and the
        underlying write runs through :func:`repro.utils.io.atomic_write`
        (sites ``io.atomic_write`` / ``io.atomic_replace``), so both a
        corrupted flush and a crash mid-publish are testable.
        """
        _fire("training.checkpoint")
        model = loop.model
        arrays: Dict[str, np.ndarray] = {
            _META_PREFIX + "format_version":
                pack_scalar(CHECKPOINT_FORMAT_VERSION),
            _META_PREFIX + "model_class": pack_scalar(type(model).__name__),
            _META_PREFIX + "executor": pack_scalar(loop.executor),
            _META_PREFIX + "n_shards": pack_scalar(loop.n_shards),
            _META_PREFIX + "epoch": pack_scalar(loop.epoch_),
        }
        for name, value in model.get_parameters().items():
            arrays[_PARAM_PREFIX + name] = np.asarray(value)
        for name, value in loop.capture_state().items():
            arrays[_LOOP_PREFIX + name] = np.asarray(value)
        path = self.directory / f"ckpt_epoch_{loop.epoch_:06d}.npz"
        saved = save_arrays(path, arrays, digests=True)
        self._prune()
        return saved

    def _prune(self) -> None:
        paths = self.paths()
        for stale in paths[:-self.retain]:
            try:
                stale.unlink()
            except OSError:  # a reader may hold it; pruning is best-effort
                pass

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def paths(self) -> List[Path]:
        """Existing checkpoint files, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("ckpt_epoch_*.npz"))

    def load(self, path: PathLike) -> Dict[str, np.ndarray]:
        """Load and fully verify one checkpoint file.

        Every entry must carry a matching digest; torn, bit-flipped or
        wrong-version files raise :class:`ArtifactIntegrityError`.
        """
        arrays = load_arrays(path, digests="require")
        version_entry = arrays.get(_META_PREFIX + "format_version")
        version = (unpack_scalar(version_entry)
                   if version_entry is not None else None)
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ArtifactIntegrityError(
                f"{path} has checkpoint format version {version!r}; this "
                f"build reads version {CHECKPOINT_FORMAT_VERSION}")
        return arrays

    def latest_good(self) -> Tuple[Path, Dict[str, np.ndarray]]:
        """Newest checkpoint that passes verification.

        Corrupt files are skipped (with a warning) in favour of the next
        older one — the resume-from-last-good contract.  Raises
        :class:`CheckpointError` when no checkpoint survives.
        """
        paths = self.paths()
        for path in reversed(paths):
            try:
                return path, self.load(path)
            except ArtifactIntegrityError as error:
                logger.warning("skipping corrupt checkpoint %s: %s",
                               path, error)
        raise CheckpointError(
            f"no usable checkpoint under {self.directory} "
            f"({len(paths)} file(s) present, all corrupt or unreadable)")

    def restore(self, model, data) -> int:
        """Restore ``model`` (a fresh, unfitted instance) from the newest
        good checkpoint; returns the number of completed epochs.

        Rebuilds the model's network and training runtime exactly as
        ``fit`` would (same seeds, same batcher construction), then
        overwrites parameters, optimizer state and RNG streams from the
        checkpoint — after which ``model.fit_more(remaining)`` continues
        the run.  The restored model keeps this manager on
        ``model.checkpoint`` so continued training keeps checkpointing.
        """
        path, arrays = self.latest_good()
        model_class = unpack_scalar(arrays[_META_PREFIX + "model_class"])
        if model_class != type(model).__name__:
            raise CheckpointError(
                f"{path} checkpoints a {model_class}; cannot restore into "
                f"a {type(model).__name__}")
        interactions = model._unwrap(data)
        model.checkpoint = self
        model._train_interactions = interactions
        model._prepare_training(interactions)
        loop = model.runtime_
        executor = unpack_scalar(arrays[_META_PREFIX + "executor"])
        n_shards = int(unpack_scalar(arrays[_META_PREFIX + "n_shards"]))
        if (loop.executor, loop.n_shards) != (executor, n_shards):
            raise CheckpointError(
                f"{path} was written by executor={executor!r} "
                f"n_shards={n_shards}, but the model is configured for "
                f"executor={loop.executor!r} n_shards={loop.n_shards}")
        model.set_parameters(
            {name[len(_PARAM_PREFIX):]: value
             for name, value in arrays.items()
             if name.startswith(_PARAM_PREFIX)})
        loop.restore_state(
            {name[len(_LOOP_PREFIX):]: value
             for name, value in arrays.items()
             if name.startswith(_LOOP_PREFIX)})
        return int(unpack_scalar(arrays[_META_PREFIX + "epoch"]))
