"""Unified training runtime shared by every triplet-trained model.

Historically :class:`~repro.core._multifacet.MultiFacetRecommender` and
:class:`~repro.baselines._embedding_base.EmbeddingRecommender` each owned a
private copy of the same epoch loop — batcher construction, the epoch/batch
iteration, loss accumulation, verbose logging and ``loss_history_``.  This
module hoists that loop into one place, :class:`TrainingLoop`, behind the
small :class:`TrainableModel` protocol (``make_batcher``, ``make_optimizer``,
``train_step`` plus the ``_on_epoch_start`` epoch hook), and adds the layer
the duplicated loops could never host: a pluggable *executor*.

Executors
---------
``executor="serial"`` (default)
    One batcher, one thread, batches consumed in order.  Loop-for-loop
    bit-identical to the pre-runtime hand-rolled loops: the batcher is
    built with the same arguments, draws from the same stream, and the
    steps are applied in the same order (certified in
    ``tests/test_training_runtime.py`` against reference reimplementations
    of the old loops).  Note the *kernels* under the loop may still evolve
    between releases — the same PR that introduced the runtime also changed
    :func:`~repro.core.fused.scatter_rows`' summation order by ~1e-15 per
    element — so seeded outputs are pinned within a release, not across
    releases.

``executor="sharded"``
    Hogwild-style lock-free parallel epochs.  The active users are
    partitioned into ``n_shards`` disjoint, degree-balanced shards
    (:func:`partition_users`); each shard gets its own
    :class:`~repro.data.batching.TripletBatcher` restricted to its users
    (``user_subset``) with an independent spawned RNG stream
    (:func:`repro.utils.rng.spawn_generators`, built on
    ``np.random.SeedSequence.spawn``), and every epoch runs the shard
    sub-epochs concurrently on a ``ThreadPoolExecutor``.  No locks are
    taken around parameter updates.

Why lock-free updates are safe here (the Hogwild argument):

* user-side state (user embedding rows, facet-weight logit rows, the
  per-user Adagrad accumulator rows) is only ever written by the shard that
  owns the user, because shards are disjoint and every fused kernel applies
  row-restricted updates (``optimizer.step_rows``) to exactly the batch's
  user rows;
* item rows are shared, so two shards can race on an item row the way the
  original Hogwild scheme races on shared coordinates — updates are sparse
  row writes, collisions are rare at catalogue scale, and a lost or torn
  item update perturbs a trajectory that SGD noise perturbs far more;
* the multifacet models additionally share small *dense* parameters (the
  ``(K, D, D)`` projection stacks), which every shard updates in place on
  every step — constant elementwise contention rather than rare row
  collisions, tolerated because each update is tiny relative to the
  tensor; this is the main source of the statistical (not bitwise)
  equivalence of ``n_shards > 1`` runs;
* the heavy lifting of a fused step is NumPy/BLAS code that releases the
  GIL, which is what lets threads actually overlap.

The determinism contract follows from the construction: ``n_shards=1``
builds the one batcher exactly like the serial executor (root stream, no
``user_subset``) and is therefore bit-identical to it, while ``n_shards>1``
is only statistically equivalent — loss curves agree to a few percent and
evaluation metrics to noise level, but thread interleaving makes individual
runs non-reproducible.  Sharded execution therefore requires the fused
engine; the autograd engine's dense ``.grad`` buffers and full-table
optimizer steps would race destructively rather than Hogwild-tolerably.

The loop is *resumable*: ``run(n)`` may be called repeatedly and continues
the same batcher streams and optimizer state, which is what lets
:class:`~repro.training.trainer.Trainer` warm-start validation rounds
instead of retraining from scratch every round.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, runtime_checkable

import numpy as np

from repro.autograd.optim import Optimizer
from repro.data.batching import TripletBatch, TripletBatcher
from repro.data.interactions import InteractionMatrix
from repro.reliability.faults import fire as _fire
from repro.utils.io import pack_scalar, unpack_scalar
from repro.utils.logging import get_logger, scoped_info
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import check_positive_int

#: Executor names accepted by :class:`TrainingLoop` (and the ``executor``
#: knobs on :class:`~repro.core.config.MARConfig` and
#: :class:`~repro.baselines._embedding_base.EmbeddingRecommender`).
EXECUTORS = ("serial", "sharded")


def validate_executor(executor: str, n_shards: int,
                      engine: Optional[str] = None) -> None:
    """Validate an executor configuration (the one shared rule set).

    Used by :class:`TrainingLoop`, the model configs and the checkpoint
    restore path, so the executor whitelist and the sharding/engine
    compatibility rule live in exactly one place.  ``engine=None`` skips
    the engine compatibility check (for callers that have no engine knob).
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    check_positive_int(n_shards, "n_shards")
    if engine is not None and executor == "sharded" and n_shards > 1 \
            and engine != "fused":
        # The autograd engine accumulates into shared dense .grad buffers
        # and steps whole tables, which races destructively across shard
        # threads; only fused row-sparse updates satisfy the Hogwild
        # safety argument.
        raise ValueError("executor='sharded' with n_shards > 1 requires "
                         "engine='fused'")


@runtime_checkable
class TrainableModel(Protocol):
    """What a model must expose to train under :class:`TrainingLoop`.

    Both model families implement this by delegating to the hooks they
    already had (``_train_step``, ``_make_optimizer``, ``_on_epoch_start``);
    the protocol only fixes the names the runtime calls.
    """

    #: Human-readable name used in verbose epoch logs.
    name: str
    #: Per-epoch mean losses; the runtime appends one entry per epoch.
    loss_history_: List[float]
    #: Seed the sharded executor spawns per-shard streams from.
    random_state: RandomState

    def make_batcher(self, interactions: InteractionMatrix, *,
                     user_subset: Optional[np.ndarray] = None,
                     random_state: RandomState = None) -> TripletBatcher:
        """Batcher over ``interactions`` with the model's sampling settings.

        ``random_state=None`` means the model's own configured seed (the
        serial executor's choice); the sharded executor passes an explicit
        spawned generator per shard.
        """
        ...

    def make_optimizer(self) -> Optimizer:
        """Fresh optimizer over the model's (already built) parameters."""
        ...

    def train_step(self, batch: TripletBatch, optimizer: Optimizer) -> float:
        """One gradient step on a triplet batch; returns the batch loss."""
        ...

    def _on_epoch_start(self, epoch: int, interactions: InteractionMatrix) -> None:
        """Hook before each epoch (e.g. refresh cached neighbourhoods)."""
        ...


@dataclass
class EpochReport:
    """Outcome of one epoch under the runtime."""

    #: Zero-based global epoch index (monotonic across resumed runs).
    epoch: int
    #: Batch-mean loss over every shard's batches.
    mean_loss: float
    #: Total batches consumed this epoch (summed over shards).
    n_batches: int
    #: Wall-clock seconds the epoch took.
    duration: float
    #: Per-shard batch-mean losses (``None`` under a single batcher).
    shard_losses: Optional[List[float]] = None
    #: Per-table write-audit summary (``None`` unless the loop runs with
    #: ``audit=True`` / ``REPRO_AUDIT=1``); see :class:`HogwildWriteAuditor`.
    audit: Optional[Dict[str, dict]] = None


def partition_users(interactions: InteractionMatrix,
                    n_shards: int) -> List[np.ndarray]:
    """Split the active users into disjoint, degree-balanced shards.

    Users with at least one interaction are sorted by interaction count
    (descending, ties by id for determinism) and dealt round-robin, so every
    shard carries roughly the same number of training interactions — the
    quantity that sets a shard's epoch length.  The shards are pairwise
    disjoint and their union is exactly the active-user set, which is the
    property the Hogwild safety argument rests on.
    """
    check_positive_int(n_shards, "n_shards")
    degrees = interactions.user_degrees()
    active = np.flatnonzero(degrees > 0)
    if active.size < n_shards:
        raise ValueError(
            f"cannot split {active.size} active users into {n_shards} shards")
    order = active[np.argsort(-degrees[active], kind="stable")]
    return [np.sort(order[shard::n_shards]) for shard in range(n_shards)]


class HogwildAuditError(AssertionError):
    """A shard wrote a user-partitioned parameter row owned by another shard.

    Raised at epoch end by :class:`HogwildWriteAuditor` — the runtime
    counterpart of the static ``HOGWILD-SAFETY`` rule.  The static rule can
    prove updates are *in place*; only observing the actual row traffic can
    prove they are *shard-disjoint*, which is the other half of the Hogwild
    safety argument in the module docstring.
    """


class HogwildWriteAuditor:
    """Records which rows each shard writes per parameter table.

    Enabled via ``TrainingLoop(..., audit=True)`` (or ``REPRO_AUDIT=1``).
    The loop wraps its optimizer in :class:`_AuditingOptimizer`, binds each
    shard's worker thread to its shard index at sub-epoch start (a pool
    thread can run two shards sequentially, so raw thread identity is not
    the right key), and at epoch end calls :meth:`finish_epoch`, which

    * classifies each table as *user-partitioned* (first axis length equals
      ``n_users``) or *shared* (item tables, dense projection stacks);
    * asserts that the per-shard written row-sets of every user-partitioned
      table are pairwise disjoint, raising :class:`HogwildAuditError`
      otherwise — user rows are exactly what the sharded executor promises
      never to race on;
    * reports (but tolerates) cross-shard collisions on shared tables and
      counts whole-table :meth:`Optimizer.step_dense` updates, which are
      expected for the small dense parameters;
    * returns the per-table summary that lands on ``EpochReport.audit``.

    When ``n_users == n_items`` an item table is indistinguishable from a
    user table by shape and would be audited strictly; no shipped preset
    has square interaction matrices, and the strict direction only
    over-reports, never under-reports.
    """

    def __init__(self, optimizer: Optimizer, n_shards: int, n_users: int,
                 table_names: Optional[Dict[int, str]] = None) -> None:
        self.n_shards = n_shards
        self.n_users = n_users
        self._names = dict(table_names or {})
        self._parameters = {id(p): p for p in optimizer.parameters}
        self._local = threading.local()
        self._lock = threading.Lock()
        # table id -> shard index -> set of written row indices
        self._rows: Dict[int, List[set]] = {}
        # table id -> shard index -> dense update count
        self._dense: Dict[int, List[int]] = {}

    # -- thread binding ------------------------------------------------- #
    def bind_shard(self, shard_index: int) -> None:
        """Attribute subsequent writes on this thread to ``shard_index``."""
        self._local.shard = shard_index

    @property
    def _shard(self) -> int:
        return getattr(self._local, "shard", 0)

    # -- recording (called from shard threads via _AuditingOptimizer) --- #
    def _slots(self, table: Dict[int, list], parameter, empty) -> list:
        key = id(parameter)
        slots = table.get(key)
        if slots is None:
            with self._lock:
                slots = table.setdefault(
                    key, [empty() for _ in range(self.n_shards)])
        return slots

    def record_rows(self, parameter, rows: np.ndarray) -> None:
        slots = self._slots(self._rows, parameter, set)
        slots[self._shard].update(np.asarray(rows).ravel().tolist())

    def record_dense(self, parameter) -> None:
        slots = self._slots(self._dense, parameter, int)
        # int slots are per-shard, so the unlocked increment is race-free.
        slots[self._shard] += 1

    # -- epoch-end verdict ---------------------------------------------- #
    def _name(self, key: int) -> str:
        parameter = self._parameters.get(key)
        shape = getattr(getattr(parameter, "data", None), "shape", ())
        return self._names.get(key, f"param{key % 10000}{list(shape)}")

    def _is_user_table(self, key: int) -> bool:
        parameter = self._parameters.get(key)
        data = getattr(parameter, "data", None)
        return data is not None and data.ndim >= 1 \
            and data.shape[0] == self.n_users

    def finish_epoch(self) -> Dict[str, dict]:
        """Summarise and reset the epoch's writes; raise on unsafe races."""
        summary: Dict[str, dict] = {}
        errors: List[str] = []
        keys = set(self._rows) | set(self._dense)
        for key in sorted(keys, key=self._name):
            name = self._name(key)
            shard_sets = self._rows.get(key, [])
            written = set().union(*shard_sets) if shard_sets else set()
            collisions = 0
            for i in range(len(shard_sets)):
                for j in range(i + 1, len(shard_sets)):
                    collisions += len(shard_sets[i] & shard_sets[j])
            kind = "user" if self._is_user_table(key) else "shared"
            if kind == "user" and collisions:
                errors.append(f"{name}: {collisions} cross-shard row "
                              "collision(s)")
            summary[name] = {
                "kind": kind,
                "rows_written": len(written),
                "cross_shard_collisions": collisions,
                "dense_updates": sum(self._dense.get(key, [])),
            }
        self._rows.clear()
        self._dense.clear()
        if errors:
            raise HogwildAuditError(
                "shards wrote overlapping rows of user-partitioned tables "
                "(the sharded executor's disjointness contract): "
                + "; ".join(errors))
        return summary


class _AuditingOptimizer:
    """Transparent optimizer proxy that reports row writes to an auditor.

    Only the two out-of-band entry points are intercepted — they are the
    sole write path of the fused engine, the only engine the sharded
    executor admits.  Everything else (``lr``, ``parameters``, ``step``,
    ``zero_grad``, optimizer state) is delegated untouched, so training
    numerics are bit-identical with auditing on.
    """

    def __init__(self, optimizer: Optimizer, auditor: HogwildWriteAuditor) -> None:
        self._optimizer = optimizer
        self._auditor = auditor

    def __getattr__(self, name):
        return getattr(self._optimizer, name)

    def step_rows(self, parameter, rows, row_grads) -> None:
        self._auditor.record_rows(parameter, rows)
        self._optimizer.step_rows(parameter, rows, row_grads)

    def step_dense(self, parameter, grad) -> None:
        self._auditor.record_dense(parameter)
        self._optimizer.step_dense(parameter, grad)


def _audit_from_env() -> bool:
    """The ``REPRO_AUDIT`` escape hatch: audit any run without code changes."""
    return os.environ.get("REPRO_AUDIT", "").strip().lower() \
        in {"1", "true", "yes", "on"}


class TrainingLoop:
    """The shared epoch/batch loop with pluggable executors.

    Parameters
    ----------
    model:
        A :class:`TrainableModel` whose parameters are already built (the
        model's ``_fit`` constructs its network *before* handing over).
    interactions:
        Training interaction matrix.
    executor:
        ``"serial"`` or ``"sharded"`` (see the module docstring).
    n_shards:
        Number of disjoint user shards under the sharded executor; ignored
        by the serial one.  ``n_shards=1`` is bit-identical to serial.
    verbose:
        Log one INFO line per epoch.  The level change is scoped to
        :meth:`run` (restored on exit), so a verbose fit does not leave the
        logger chatty for later models.
    logger:
        Logger the epoch lines go to; defaults to ``repro.training.loop``.
        Models pass their own module logger so log namespaces stay stable.
    audit:
        Enable the :class:`HogwildWriteAuditor`: record per-shard written
        row-sets per parameter table, assert shard-disjointness of
        user-partitioned tables at every epoch end (raising
        :class:`HogwildAuditError` on a violation) and surface the
        per-table counts on ``EpochReport.audit``.  ``None`` (the default)
        defers to the ``REPRO_AUDIT`` environment variable, so any run can
        be audited without touching code.  Auditing does not change
        training numerics — the proxy only observes the update calls.
    checkpoint:
        A :class:`~repro.training.checkpoint.CheckpointManager`: after every
        epoch it deems ``due``, the loop persists parameters, optimizer
        state and batcher RNG streams atomically, so a killed run resumes
        from its last good checkpoint (bitwise-identically under the serial
        executor).  ``None`` (the default) falls back to
        ``model.checkpoint`` when the model carries one, else disables
        checkpointing.

    Notes
    -----
    The loop owns the batcher(s) and the optimizer and keeps them across
    :meth:`run` calls, so repeated calls *resume* training — same sample
    streams, same optimizer state — rather than restart it.  ``reports``
    accumulates one :class:`EpochReport` per epoch ever run.  Resumability
    has a memory cost: the optimizer state (for Adagrad a full
    table-shaped accumulator) and the per-shard samplers stay referenced
    by the fitted model; call :meth:`release` when a model will only be
    served.
    """

    def __init__(self, model: TrainableModel, interactions: InteractionMatrix,
                 *, executor: str = "serial", n_shards: int = 1,
                 verbose: bool = False, logger=None,
                 audit: Optional[bool] = None, checkpoint=None) -> None:
        validate_executor(executor, n_shards)
        self.model = model
        self.interactions = interactions
        self.executor = executor
        self.n_shards = n_shards if executor == "sharded" else 1
        self.verbose = verbose
        self.audit = _audit_from_env() if audit is None else bool(audit)
        self._checkpoint = (checkpoint if checkpoint is not None
                            else getattr(model, "checkpoint", None))
        self._logger = logger if logger is not None else get_logger("training.loop")
        self.reports: List[EpochReport] = []
        self.epoch_ = 0
        self.shards_: Optional[List[np.ndarray]] = None
        self._optimizer: Optional[Optimizer] = None
        self._batchers: Optional[List[TripletBatcher]] = None
        self._auditor: Optional[HogwildWriteAuditor] = None

    # ------------------------------------------------------------------ #
    @property
    def optimizer(self) -> Optimizer:
        """The loop's optimizer (created on first :meth:`run`)."""
        self._ensure_state()
        return self._optimizer

    def release(self) -> None:
        """Drop the batchers and optimizer to free their memory.

        A resumable loop pins the training interactions, one negative
        sampler per shard and the optimizer state for the fitted model's
        lifetime; serving-only deployments that will never call
        :meth:`run` / ``fit_more`` again can release it.  A released loop
        refuses further :meth:`run` calls rather than silently restarting
        the sample streams.
        """
        self._released = True
        self._optimizer = None
        self._batchers = None
        self._auditor = None

    def _ensure_state(self) -> None:
        if getattr(self, "_released", False):
            raise RuntimeError(
                "this training loop was released; fit the model again to "
                "continue training")
        if self._optimizer is not None:
            return
        self._optimizer = self.model.make_optimizer()
        if self.audit:
            names: Dict[int, str] = {}
            network = getattr(self.model, "network", None)
            if network is not None and hasattr(network, "named_parameters"):
                names = {id(parameter): name
                         for name, parameter in network.named_parameters()}
            self._auditor = HogwildWriteAuditor(
                self._optimizer, self.n_shards, self.interactions.n_users,
                table_names=names)
            self._optimizer = _AuditingOptimizer(self._optimizer, self._auditor)
        if self.n_shards > 1:
            self.shards_ = partition_users(self.interactions, self.n_shards)
            streams = spawn_generators(self.model.random_state, self.n_shards)
            self._batchers = [
                self.model.make_batcher(self.interactions, user_subset=shard,
                                        random_state=stream)
                for shard, stream in zip(self.shards_, streams)
            ]
        else:
            # Serial — and sharded with a single shard, which is required to
            # be bit-identical to serial: one batcher over the full user
            # population on the model's root stream, no subset restriction.
            self._batchers = [self.model.make_batcher(self.interactions)]

    # ------------------------------------------------------------------ #
    def refresh_data(self, random_state: RandomState = None) -> None:
        """Re-sync the loop after its interaction matrix mutated in place.

        Streaming ingestion appends interactions (possibly growing the
        user/item population) to the same :class:`InteractionMatrix` this
        loop trains on.  This hook makes the already-built training state
        catch up:

        * optimizer state is row-padded to any grown parameter tables
          (:meth:`~repro.autograd.optim.Optimizer.grow_state`);
        * under the sharded executor, users are re-partitioned (new users
          must belong to exactly one shard for the Hogwild disjointness
          argument) and each shard's batcher is rebuilt on a fresh spawned
          stream from ``random_state`` (the model's root seed when
          ``None``);
        * under the serial executor the single batcher re-snapshots itself
          lazily off the matrix's version counter, so it is only rebuilt —
          on a fresh stream — when an explicit ``random_state`` is given
          (what :class:`~repro.streaming.online.StreamingTrainer` passes
          per refresh, keeping RNG-DISCIPLINE: one spawned stream per
          refresh instead of a reused root stream).

        A loop that has never run (no optimizer yet) needs no catch-up: its
        first :meth:`run` builds everything against the current matrix.
        """
        if getattr(self, "_released", False):
            raise RuntimeError(
                "this training loop was released; fit the model again to "
                "continue training")
        if self._optimizer is None:
            return
        self._optimizer.grow_state()
        if self._auditor is not None:
            self._auditor.n_users = self.interactions.n_users
        if self.n_shards > 1:
            self.shards_ = partition_users(self.interactions, self.n_shards)
            streams = spawn_generators(
                self.model.random_state if random_state is None else random_state,
                self.n_shards)
            self._batchers = [
                self.model.make_batcher(self.interactions, user_subset=shard,
                                        random_state=stream)
                for shard, stream in zip(self.shards_, streams)
            ]
        elif random_state is not None:
            self._batchers = [
                self.model.make_batcher(self.interactions,
                                        random_state=random_state)]

    # ------------------------------------------------------------------ #
    def run(self, n_epochs: int) -> List[EpochReport]:
        """Train for ``n_epochs`` more epochs; returns their reports.

        Appends one batch-mean loss per epoch to ``model.loss_history_``
        (the contract every pre-runtime loop honoured) and logs one INFO
        line per epoch when ``verbose``.
        """
        check_positive_int(n_epochs, "n_epochs")
        self._ensure_state()
        target = self.epoch_ + n_epochs
        new_reports: List[EpochReport] = []
        scope = scoped_info(self._logger) if self.verbose else nullcontext()
        with scope:
            for _ in range(n_epochs):
                report = self._run_epoch(self.epoch_)
                self.epoch_ += 1
                self.reports.append(report)
                new_reports.append(report)
                self.model.loss_history_.append(report.mean_loss)
                if self._checkpoint is not None \
                        and self._checkpoint.due(self.epoch_):
                    self._checkpoint.save(self)
                if self.verbose:
                    self._logger.info("%s epoch %d/%d loss %.4f",
                                      self.model.name, report.epoch + 1,
                                      target, report.mean_loss)
        return new_reports

    def _run_epoch(self, epoch: int) -> EpochReport:
        self.model._on_epoch_start(epoch, self.interactions)
        start = time.perf_counter()
        if len(self._batchers) == 1:
            shard_totals = [self._shard_epoch(self._batchers[0], 0)]
        else:
            with ThreadPoolExecutor(max_workers=len(self._batchers)) as pool:
                futures = [pool.submit(self._shard_epoch, batcher, shard)
                           for shard, batcher in enumerate(self._batchers)]
                shard_totals = [future.result() for future in futures]
        duration = time.perf_counter() - start
        audit = self._auditor.finish_epoch() if self._auditor is not None else None
        n_batches = sum(count for _, count in shard_totals)
        total_loss = sum(loss for loss, _ in shard_totals)
        shard_losses = None
        if len(shard_totals) > 1:
            shard_losses = [loss / max(count, 1) for loss, count in shard_totals]
        return EpochReport(
            epoch=epoch,
            mean_loss=total_loss / max(n_batches, 1),
            n_batches=n_batches,
            duration=duration,
            shard_losses=shard_losses,
            audit=audit,
        )

    def _shard_epoch(self, batcher: TripletBatcher, shard: int):
        """One shard's sub-epoch; returns ``(loss_sum, n_batches)``.

        The worker thread is (re)bound to its shard index up front: pool
        threads are reused, so a thread that ran shard 0 last epoch may run
        shard 2 this epoch, and the auditor must attribute writes to the
        *shard*, not the thread.
        """
        if self._auditor is not None:
            self._auditor.bind_shard(shard)
        total, count = 0.0, 0
        for batch in batcher.epoch():
            _fire("training.step")
            total += self.model.train_step(batch, self._optimizer)
            count += 1
        return total, count

    # ------------------------------------------------------------------ #
    # checkpoint state (consumed by training.checkpoint.CheckpointManager)
    # ------------------------------------------------------------------ #
    def capture_state(self) -> Dict[str, np.ndarray]:
        """The loop's durable training state as named pickle-free arrays.

        Covers everything :meth:`run` consumes beyond the model parameters:
        optimizer state (``optimizer.*``), each batcher stream's exact
        bit-generator state (``rng.<shard>``, JSON-encoded — one stream
        also drives that batcher's negative/user samplers, because
        :class:`~repro.data.batching.TripletBatcher` shares its generator
        with them), the completed-epoch count and the loss history.
        """
        self._ensure_state()
        state: Dict[str, np.ndarray] = {
            "epoch": pack_scalar(self.epoch_),
            "loss_history": np.asarray(self.model.loss_history_,
                                       dtype=np.float64),
        }
        for name, value in self._optimizer.state_dict().items():
            state[f"optimizer.{name}"] = value
        for shard, batcher in enumerate(self._batchers):
            state[f"rng.{shard}"] = pack_scalar(
                json.dumps(batcher._rng.bit_generator.state))
        return state

    def restore_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`capture_state` output into a freshly built loop.

        Call order matters: the model's parameters must already be loaded
        (``set_parameters`` rebinds ``parameter.data``, and the optimizer
        state restored here is validated against the live parameter
        shapes), and the loop must not have run yet.
        """
        self._ensure_state()
        rng_keys = [name for name in state if name.startswith("rng.")]
        if len(rng_keys) != len(self._batchers):
            raise ValueError(
                f"checkpoint carries {len(rng_keys)} batcher stream(s) but "
                f"this loop has {len(self._batchers)} — executor/n_shards "
                "mismatch")
        self._optimizer.load_state_dict(
            {name[len("optimizer."):]: value
             for name, value in state.items()
             if name.startswith("optimizer.")})
        for shard, batcher in enumerate(self._batchers):
            batcher._rng.bit_generator.state = json.loads(
                unpack_scalar(state[f"rng.{shard}"]))
        self.epoch_ = int(unpack_scalar(state["epoch"]))
        self.model.loss_history_[:] = [
            float(loss) for loss in np.asarray(state["loss_history"]).ravel()]


class RuntimeTrainedModel:
    """Mixin for models whose ``_fit`` delegates to :class:`TrainingLoop`.

    Provides the resumable-training surface: after :meth:`fit` the loop is
    kept on ``runtime_``, and :meth:`fit_more` continues it — same batcher
    streams, same optimizer state — which is what
    :class:`~repro.training.trainer.Trainer` warm-starts rounds with.
    Serving-only deployments can call ``model.runtime_.release()`` after
    fitting to drop the loop's batchers and optimizer state.
    """

    #: The loop of the latest ``fit`` call (``None`` before fitting, and on
    #: models restored from a checkpoint without retraining).
    runtime_: Optional[TrainingLoop] = None

    def fit_more(self, n_epochs: int):
        """Resume training for ``n_epochs`` additional epochs.

        Continuing a seeded serial run for ``k`` epochs produces exactly the
        state a fresh fit with ``n_epochs + k`` epochs would have reached:
        the loop keeps its batcher streams and optimizer state, so nothing
        restarts.
        """
        if self.runtime_ is None:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before fit_more "
                "(a loaded checkpoint carries no resumable training state)")
        self.runtime_.run(n_epochs)
        return self
